#!/usr/bin/env python
"""Execute every fenced ``python`` block in the docs — so they cannot rot.

The documentation under ``docs/`` is a contract: every fenced code block
tagged ``python`` must run, unmodified, against the current code.  This
extractor walks the given markdown files (default: every ``*.md`` under
``docs/``), pulls the fenced blocks out, and executes them top to bottom.

Execution model:

- blocks within one file share a namespace, in document order — a recipe
  can build on the previous one exactly as a reader would in a REPL;
- each file starts from a fresh namespace and runs inside its own
  temporary working directory, so snippets may write files ("bundles/",
  "deployments/") without littering the repository;
- a block tagged ``python no-run`` is skipped (illustrative fragments);
  everything else tagged ``python`` runs;
- the first failing block aborts with the file, the markdown line number
  of the fence, and the traceback — exit status 1 (0 when everything
  passes).

Usage::

    python tools/run_doc_snippets.py              # docs/*.md
    python tools/run_doc_snippets.py docs/cookbook.md README.md

CI runs this headless in the ``docs-smoke`` job.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
import time
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _display(path: Path) -> str:
    """Repo-relative when possible, absolute otherwise (files elsewhere)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)

#: ```python [marker...]\n ... \n``` — tolerates indentation inside lists.
_FENCE = re.compile(
    r"^(?P<indent>[ \t]*)```python(?P<info>[^\n`]*)\n"
    r"(?P<body>.*?)"
    r"^(?P=indent)```[ \t]*$",
    re.DOTALL | re.MULTILINE,
)


def extract_blocks(text: str) -> list[tuple[int, str, str]]:
    """``(fence_line_number, info_string, source)`` per ``python`` block."""
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        indent = match.group("indent")
        body = match.group("body")
        if indent:  # de-indent blocks nested in markdown lists
            body = re.sub(rf"^{indent}", "", body, flags=re.MULTILINE)
        blocks.append((line, match.group("info").strip(), body))
    return blocks


def run_file(path: Path, verbose: bool = True) -> tuple[int, int]:
    """Execute one markdown file's blocks; returns (run, skipped).

    Raises:
        SnippetError: when a block fails (carries the report already
            printed).
    """
    text = path.read_text(encoding="utf-8")
    blocks = extract_blocks(text)
    namespace: dict = {"__name__": f"doc_snippet_{path.stem}"}
    run = skipped = 0
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix=f"docs-{path.stem}-") as workdir:
        os.chdir(workdir)
        try:
            for line, info, source in blocks:
                if "no-run" in info.split():
                    skipped += 1
                    continue
                label = f"{_display(path)}:{line}"
                started = time.perf_counter()
                try:
                    code = compile(source, str(label), "exec")
                    exec(code, namespace)  # noqa: S102 — the whole point
                # SystemExit included: a block calling sys.exit() —
                # even with status 0 — would otherwise terminate the
                # runner green and silently skip every remaining block.
                except (Exception, SystemExit):
                    print(f"FAIL {label}")
                    print("----- block -----")
                    print(source.rstrip())
                    print("----- traceback -----")
                    traceback.print_exc()
                    raise SnippetError(label) from None
                run += 1
                if verbose:
                    print(
                        f"  ok {label} ({time.perf_counter() - started:.1f}s)"
                    )
        finally:
            os.chdir(cwd)
    return run, skipped


class SnippetError(Exception):
    """A documentation block failed to execute."""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="execute every fenced python block in the given "
        "markdown files (default: docs/*.md)"
    )
    parser.add_argument(
        "paths", nargs="*",
        help="markdown files or directories (default: docs/)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only report failures and the summary",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    roots = [Path(p) for p in args.paths] or [REPO_ROOT / "docs"]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.exists():
            files.append(root)
        else:
            print(f"error: {root} does not exist", file=sys.stderr)
            return 1
    if not files:
        print("error: no markdown files found", file=sys.stderr)
        return 1

    total_run = total_skipped = 0
    for path in files:
        path = path.resolve()
        if not args.quiet:
            print(f"{_display(path)}:")
        try:
            run, skipped = run_file(path, verbose=not args.quiet)
        except SnippetError:
            return 1
        total_run += run
        total_skipped += skipped
    print(
        f"{total_run} block(s) executed, {total_skipped} skipped, "
        f"across {len(files)} file(s): all green"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
