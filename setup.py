"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks the ``wheel`` package required
by PEP 660 editable builds (falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
