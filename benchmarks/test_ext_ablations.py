"""Extension benchmarks: row-wise sharding and cost-model feature
ablation.

Not in the paper's evaluation — these exercise the future-work
extension (Section 6) and quantify the design choice behind the
featurization (Section 2.1's four cost factors).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    bench_train,
    once,
    record_result,
)
from repro.baselines import GreedySharder
from repro.config import CollectionConfig, TrainConfig
from repro.costmodel import ComputeCostModel, collect_compute_data
from repro.costmodel.pretrain import fit_standardized
from repro.data import ShardingTask
from repro.evaluation import format_text_table
from repro.extensions import AblatedFeaturizer, RowWisePreprocessor, RowWiseSharder
from repro.hardware.memory import MemoryModel
from repro.nn import Trainer


def test_ext_rowwise_unlocks_dim4_giants(benchmark, pool856, cluster4):
    """Row-wise sharding places dim-4 giants that column sharding cannot
    touch (the dimension floor), and balances better than leaving them
    whole."""
    # The biggest dim-4 tables in the pool: row-heavy, column-unsplittable.
    giants = sorted(pool856.tables, key=lambda t: -t.hash_size)[:5]
    giants = [t.with_dim(4) for t in giants]
    # Budget: 1.2x the largest giant per device.  5 giants on 4 devices
    # force one device to hold a pair; even the two smallest giants
    # together exceed the budget, so whole tables cannot be placed — but
    # half-row shards can.  Aggregate capacity still covers all 5.
    memory_bytes = int(
        1.2 * max(MemoryModel(1).table_bytes(t) for t in giants)
    )
    task = ShardingTask(
        tables=tuple(giants), num_devices=4, memory_bytes=memory_bytes
    )

    def run():
        base = GreedySharder("Lookup-based")
        whole = base.shard(task)
        whole_cost = np.nan
        if whole is not None:
            per_device = whole.per_device_tables(task.tables)
            if cluster4.memory.placement_fits(per_device):
                whole_cost = cluster4.evaluate_plan(per_device).max_cost_ms
        rowwise = RowWiseSharder(base, RowWisePreprocessor(max_fraction=0.45))
        plan, decision = rowwise.shard_with_tables(task)
        assert plan is not None
        per_device = plan.per_device_tables(decision.tables)
        row_cost = cluster4.evaluate_plan(per_device).max_cost_ms
        return whole_cost, row_cost, decision.num_splits

    whole_cost, row_cost, splits = once(benchmark, run)
    record_result(
        "ext_rowwise",
        format_text_table(
            ["variant", "max-device cost (ms)", "row splits"],
            [
                ["tables left whole (greedy)", whole_cost, 0],
                ["row-wise + greedy", row_cost, splits],
            ],
            title="Extension: row-wise sharding of dim-4 giant tables "
            "(paper Section 6 future work)",
        ),
    )
    assert splits >= 1
    # Either the whole-table plan is infeasible, or row-wise beats it.
    assert np.isnan(whole_cost) or row_cost < whole_cost * 1.02


def test_ext_feature_ablation(benchmark, pool856, cluster4):
    """Which table features earn their place in the cost model?"""
    collection = CollectionConfig(num_compute_samples=4000)
    train = TrainConfig(epochs=300, batch_size=128)
    variants = [
        ("full featurization", ()),
        ("w/o distribution features", ("distribution",)),
        # The interaction feature (dim x pooling) leaks both groups, so
        # each workload ablation removes it too.
        ("w/o pooling features", ("pooling", "interaction")),
        ("w/o dimension features", ("dimension", "interaction")),
    ]

    def run():
        rows = []
        for name, drops in variants:
            featurizer = AblatedFeaturizer(cluster4.batch_size, drops)
            data = collect_compute_data(
                cluster4, pool856, featurizer, collection, seed=6
            )
            model = ComputeCostModel(
                num_features=featurizer.num_features,
                rng=np.random.default_rng(0),
            )
            result = fit_standardized(
                model,
                data,
                Trainer(train),
                train.train_frac,
                train.valid_frac,
                np.random.default_rng(1),
                7,
            )
            rows.append([name, result.test_mse])
        return rows

    rows = once(benchmark, run)
    record_result(
        "ext_feature_ablation",
        format_text_table(
            ["featurization", "test MSE (ms^2)"],
            rows,
            precision=3,
            title="Extension: computation-cost-model feature ablation "
            "(4000 samples, 300 epochs)",
        ),
    )
    full = rows[0][1]
    # Pooling (lookup workload) is the dominant factor from Section 2.1:
    # dropping it must hurt badly; the other ablations must not *help*
    # beyond training noise.
    by_name = {name: mse for name, mse in rows}
    assert by_name["w/o pooling features"] > 1.5 * full
    for name, mse in rows[1:]:
        assert mse > full * 0.7, name
