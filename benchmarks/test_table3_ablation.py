"""Tables 3 and 7: ablation of beam search, grid search, and caching.

For the hardest setting (max dimension 128), each mechanism is removed
in turn:

- **w/o beam search** — no column-wise sharding: success rate drops
  below 100% (oversized tables cannot be placed) so the cost column
  shows "-" under the paper's all-tasks-must-succeed convention;
- **w/o greedy grid search** — no max-device-dimension constraint: cost
  rises (communication imbalance is no longer controlled);
- **w/o caching** — identical plans, hit rate 0, sharding time blows up.

Table 3 is the 4-GPU variant, Table 7 (appendix) the 8-GPU one.
"""

from __future__ import annotations

import math

from benchmarks.conftest import (
    BENCH_TASKS,
    SEARCH_4GPU,
    SEARCH_8GPU,
    once,
    record_result,
)
from repro.config import TaskConfig
from repro.core import NeuroShard
from repro.data import generate_tasks
from repro.evaluation import format_text_table


def _run_variant(bundle, tasks, search):
    sharder = NeuroShard(bundle, search=search, lifelong_cache=False)
    successes, costs, times, hit_rates = 0, [], [], []
    for task in tasks:
        result = sharder.shard(task)
        times.append(result.sharding_time_s)
        hit_rates.append(result.cache_hit_rate)
        if result.feasible:
            successes += 1
            costs.append(result.simulated_cost_ms)
    return {
        "cost": (sum(costs) / len(costs)) if successes == len(tasks) else math.nan,
        "success": successes / len(tasks) * 100.0,
        "time": sum(times) / len(times),
        "hit_rate": sum(hit_rates) / len(hit_rates) * 100.0,
    }


def _run_ablation(pool, bundle, num_devices, base_search, seed):
    lo, hi = (10, 60) if num_devices == 4 else (20, 120)
    cfg = TaskConfig(
        num_devices=num_devices, max_dim=128, min_tables=lo, max_tables=hi
    )
    tasks = generate_tasks(pool, cfg, count=BENCH_TASKS, seed=seed)
    variants = {
        "w/o beam search": base_search.with_ablation("beam_search"),
        "w/o greedy grid search": base_search.with_ablation("grid_search"),
        "w/o caching": base_search.with_ablation("caching"),
        "Full NeuroShard": base_search,
    }
    return {name: _run_variant(bundle, tasks, cfg_) for name, cfg_ in variants.items()}


def _render(rows, table_name, num_devices):
    return format_text_table(
        ["variant", "cost (ms)", "success rate (%)", "sharding time (s)",
         "cache hit rate (%)"],
        [
            [name, r["cost"], r["success"], r["time"], r["hit_rate"]]
            for name, r in rows.items()
        ],
        title=(
            f"{table_name} ({num_devices} GPUs, max dimension 128, "
            f"{BENCH_TASKS} tasks): search ablations"
        ),
    )


def _check_shape(rows):
    full = rows["Full NeuroShard"]
    no_beam = rows["w/o beam search"]
    no_grid = rows["w/o greedy grid search"]
    no_cache = rows["w/o caching"]
    # Beam search is what guarantees feasibility on oversized tables.
    assert full["success"] == 100.0
    assert no_beam["success"] < 100.0
    # Dropping the grid raises (simulated) cost; never lowers it.
    assert math.isnan(no_grid["cost"]) or no_grid["cost"] >= full["cost"] - 1e-6
    # The cache is what makes search fast: >70% hit rate in the full
    # system (paper: >95% with 100-task lifelong reuse), 0 without, and
    # a large slowdown without it.
    assert full["hit_rate"] > 70.0
    assert no_cache["hit_rate"] == 0.0
    assert no_cache["time"] > 2.0 * full["time"]
    # Caching must not change the result materially.  (Bit-identity is
    # not guaranteed: cached and uncached paths batch different row sets
    # through BLAS, whose summation order can differ in the last float
    # bits and flip greedy near-ties.)
    assert math.isclose(no_cache["cost"], full["cost"], rel_tol=0.02)


def test_table3_ablation_4gpus(benchmark, pool856, bundle4):
    rows = once(
        benchmark,
        lambda: _run_ablation(pool856, bundle4, 4, SEARCH_4GPU, seed=31),
    )
    record_result("table3_4gpus", _render(rows, "Table 3", 4))
    _check_shape(rows)


def test_table7_ablation_8gpus(benchmark, pool856, bundle8):
    rows = once(
        benchmark,
        lambda: _run_ablation(pool856, bundle8, 8, SEARCH_8GPU, seed=37),
    )
    record_result("table7_8gpus", _render(rows, "Table 7", 8))
    _check_shape(rows)
