"""Extension benchmark: policy-guided search (Appendix H, closing idea).

Quantifies what a learned meta-policy buys when *combined with* search
rather than replacing it: the policy shortlists devices, the cost model
verifies only the shortlist, so the dominant cost of the online search —
computation-cost predictions — shrinks by roughly ``D / top_k``.

Compared on 4 GPUs, max dim 64:

- unguided greedy grid search (the paper's inner loop, Algorithm 2);
- guided, top-2 of 4 devices verified;
- guided, top-1 (pure policy with cost-model bookkeeping).

Expected shape: evaluations drop monotonically with ``top_k`` while the
real sharding cost degrades only gently — the meta-policy accelerates
the search it was distilled from.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import BENCH_TASKS, once, record_result
from repro.baselines import GreedySharder, RandomSharder
from repro.config import SearchConfig, TaskConfig
from repro.core.cache import CostCache
from repro.core.greedy_grid import greedy_grid_search
from repro.core.simulator import NeuroShardSimulator
from repro.data import generate_tasks
from repro.evaluation import execute_plan, format_text_table
from repro.extensions import OfflineRLSharder, PolicyGuidedSharder
from repro.baselines.base import assignment_to_plan
from repro.hardware.memory import MemoryModel

MAX_DIM = 64
GRID_POINTS = 5


def test_ext_guided_search(benchmark, pool856, cluster4, bundle4):
    cfg = TaskConfig(num_devices=4, max_dim=MAX_DIM, min_tables=10, max_tables=60)
    train_tasks = generate_tasks(pool856, cfg, count=8, seed=707)
    eval_tasks = generate_tasks(pool856, cfg, count=BENCH_TASKS, seed=808)

    def run():
        policy = OfflineRLSharder(bundle4, seed=4)
        policy.fit_from_log(
            train_tasks,
            [
                GreedySharder("Dim-based"),
                GreedySharder("Lookup-based"),
                GreedySharder("Size-lookup-based"),
                RandomSharder(seed=5),
            ],
            epochs=60,
        )

        rows = {}
        # Unguided baseline: Algorithm 2 at the same grid resolution.
        costs, evals = [], []
        for task in eval_tasks:
            cache = CostCache()
            simulator = NeuroShardSimulator(bundle4, cache)
            result = greedy_grid_search(
                list(task.tables),
                task.num_devices,
                simulator,
                MemoryModel(task.memory_bytes),
                SearchConfig(grid_points=GRID_POINTS),
            )
            if not result.feasible:
                continue
            plan = assignment_to_plan(result.assignment, task.num_devices)
            execution = execute_plan(plan, task, cluster4)
            if execution is not None:
                costs.append(execution.max_cost_ms)
                evals.append(cache.misses)
        rows["unguided greedy grid"] = (
            float(np.mean(costs)),
            float(np.mean(evals)),
            float("nan"),
        )

        for top_k in (2, 1):
            sharder = PolicyGuidedSharder(
                bundle4, policy, device_top_k=top_k, grid_points=GRID_POINTS
            )
            costs, evals, agreements = [], [], []
            for task in eval_tasks:
                result = sharder.shard_with_stats(task)
                if result.plan is None:
                    continue
                execution = execute_plan(result.plan, task, cluster4)
                if execution is not None:
                    costs.append(execution.max_cost_ms)
                    evals.append(result.evaluations)
                    agreements.append(result.policy_agreement)
            rows[f"guided top-{top_k} of 4"] = (
                float(np.mean(costs)),
                float(np.mean(evals)),
                float(np.mean(agreements)),
            )
        return rows

    rows = once(benchmark, run)

    headers = [
        "inner loop",
        "real cost (ms)",
        "cost-model evals / task",
        "policy agreement",
    ]
    table_rows = [[name, *vals] for name, vals in rows.items()]
    record_result(
        "ext_guided_search",
        format_text_table(
            headers,
            table_rows,
            title=(
                f"Extension — policy-guided search (4 GPUs, max dim {MAX_DIM}, "
                f"{BENCH_TASKS} tasks, grid M={GRID_POINTS})"
            ),
        ),
    )

    unguided_cost, unguided_evals, _ = rows["unguided greedy grid"]
    top2_cost, top2_evals, _ = rows["guided top-2 of 4"]
    top1_cost, top1_evals, _ = rows["guided top-1 of 4"]
    # Guidance reduces cost-model work monotonically...
    assert top1_evals < top2_evals < unguided_evals
    # ...at a bounded quality premium.
    assert top2_cost <= unguided_cost * 1.10
    assert top1_cost <= unguided_cost * 1.25
