"""Table 6: dataset statistics — synthesized DLRM pool vs public sets."""

from __future__ import annotations

from benchmarks.conftest import once, record_result
from repro.data import pool_statistics, public_dataset_statistics
from repro.evaluation import format_text_table


def test_table6_dataset_statistics(benchmark, pool856):
    def build():
        return pool_statistics(pool856.tables), public_dataset_statistics()

    stats, public = once(benchmark, build)

    rows = [
        [r["dataset"], r["num_tables"], r["avg_hash_size"], r["avg_pooling_factor"]]
        for r in public
    ]
    row = stats.as_row()
    rows.append(
        [row["dataset"], row["num_tables"], row["avg_hash_size"],
         row["avg_pooling_factor"]]
    )
    record_result(
        "table6",
        format_text_table(
            ["dataset", "# tables", "avg hash size", "avg pooling factor"],
            rows,
            title="Table 6: public datasets vs the industrial-scale DLRM pool",
        ),
    )
    # The paper's quantitative claims: >=30x tables and >=200x hash size
    # over Criteo, ~15x pooling factor.
    criteo = public[0]
    assert stats.num_tables >= 30 * criteo["num_tables"]
    assert stats.mean_hash_size >= 100 * criteo["avg_hash_size"]
    assert stats.mean_pooling_factor >= 8 * criteo["avg_pooling_factor"]
