"""Figure 3 + Figure 10 + Observation 1/2 benchmarks.

Figure 3 (left): computation cost of one table across dimensions
{128, 64, 32, 16, 8, 4} — each half-dimension shard costs more than half
its parent (Observation 1).  Figure 10 repeats the sweep for more tables.

Figure 3 (right): for 50 random 10-table subsets, the actual fused
multi-table cost versus the sum of single-table costs — sub-additive and
non-linear (Observation 2).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, record_result
from repro.evaluation import format_text_table

BATCH = 65536
DIM_SWEEP = (128, 64, 32, 16, 8, 4)


def test_fig3_left_dimension_sweep(benchmark, pool856, cluster4):
    """Cost vs dimension for a representative heavy table."""
    kernel = cluster4.kernel
    # Pick a table with a production-like pooling factor (close to the
    # pool mean) so the dimension effect is visible, as in the paper.
    table = min(
        pool856.tables, key=lambda t: abs(t.pooling_factor - 15.0)
    )

    def sweep():
        return [
            kernel.single_table_ms(table.with_dim(d), BATCH, noisy=False)
            for d in DIM_SWEEP
        ]

    costs = once(benchmark, sweep)

    rows = []
    for (dim, cost), prev in zip(
        zip(DIM_SWEEP, costs), [None] + list(costs)
    ):
        half_check = "-" if prev is None else ("yes" if cost > prev / 2 else "NO")
        rows.append([dim, cost, half_check])
    record_result(
        "fig3_left",
        format_text_table(
            ["dimension", "computation cost (ms)", "> half of parent?"],
            rows,
            precision=3,
            title=f"Figure 3 (left): cost vs dimension, table {table.table_id} "
            f"(pooling={table.pooling_factor:.1f})",
        ),
    )
    # Observation 1 must hold at every halving step.
    for larger, smaller in zip(costs, costs[1:]):
        assert smaller > larger / 2
    # And cost must increase with dimension.
    assert costs == sorted(costs, reverse=True)


def test_fig10_more_tables(benchmark, pool856, cluster4):
    """The appendix's five additional dimension sweeps."""
    kernel = cluster4.kernel
    rng = np.random.default_rng(10)
    tables = [pool856.tables[i] for i in rng.choice(856, size=5, replace=False)]

    def sweep_all():
        return {
            t.table_id: [
                kernel.single_table_ms(t.with_dim(d), BATCH, noisy=False)
                for d in DIM_SWEEP
            ]
            for t in tables
        }

    sweeps = once(benchmark, sweep_all)

    rows = [
        [tid, *costs] for tid, costs in sweeps.items()
    ]
    record_result(
        "fig10",
        format_text_table(
            ["table", *(f"dim {d}" for d in DIM_SWEEP)],
            rows,
            precision=3,
            title="Figure 10: cost (ms) vs dimension for 5 random tables",
        ),
    )
    for costs in sweeps.values():
        for larger, smaller in zip(costs, costs[1:]):
            assert smaller > larger / 2  # Observation 1, every table


def test_fig3_right_multi_table_nonlinearity(benchmark, pool856, cluster4):
    """Fused cost vs sum of single-table costs over 50 random subsets."""
    kernel = cluster4.kernel
    rng = np.random.default_rng(3)
    subsets = [
        [pool856.tables[i] for i in rng.choice(856, size=10, replace=False)]
        for _ in range(50)
    ]

    def measure():
        sums, fused = [], []
        for subset in subsets:
            sums.append(kernel.sum_of_single_table_ms(subset, BATCH, noisy=False))
            fused.append(kernel.total_ms(subset, BATCH, noisy=False))
        return np.array(sums), np.array(fused)

    sums, fused = once(benchmark, measure)

    ratio = fused / sums
    rows = [
        [f"{s:.1f}", f"{f:.1f}", f"{r:.3f}"]
        for s, f, r in zip(sums[:10], fused[:10], ratio[:10])
    ]
    summary = (
        f"50 subsets of 10 tables: fused/sum ratio min={ratio.min():.3f} "
        f"max={ratio.max():.3f} (sub-additive, non-constant => non-linear)"
    )
    record_result(
        "fig3_right",
        format_text_table(
            ["sum of single-table costs", "actual multi-table cost", "ratio"],
            rows,
            title="Figure 3 (right), first 10 of 50 points\n" + summary,
        ),
    )
    # Observation 2: strictly sub-additive everywhere...
    assert np.all(fused < sums)
    # ...and not explainable by one linear factor.
    assert ratio.max() - ratio.min() > 0.02
