"""Figure 9: hyperparameter sensitivity of the online search.

Sweeps each of the four search hyperparameters — L (beam steps), K (beam
width), N (candidate tables), M (grid points) — around the paper's
defaults on max-dimension-128 / 4-GPU tasks, reporting simulated
embedding cost and sharding time.  Shape: larger values never hurt cost
(more search) but increase sharding time — the optimality/efficiency
trade-off the paper tunes.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import once, record_result
from repro.config import SearchConfig, TaskConfig
from repro.core import NeuroShard
from repro.data import generate_tasks
from repro.evaluation import format_text_table

#: (display name, config field, sweep values) — paper defaults are
#: N=10, K=3, L=10, M=11.
SWEEPS = [
    ("L (beam steps)", "max_steps", (2, 5, 10, 20)),
    ("K (beam width)", "beam_width", (1, 2, 3, 6)),
    ("N (candidates)", "top_n", (2, 5, 10, 20)),
    ("M (grid points)", "grid_points", (2, 5, 11, 21)),
]

BASE = SearchConfig()


def _run_sweep(pool856, bundle4, tasks, field, values):
    rows = []
    for value in values:
        search = replace(BASE, **{field: value})
        sharder = NeuroShard(bundle4, search=search, lifelong_cache=False)
        costs, times = [], []
        for task in tasks:
            result = sharder.shard(task)
            assert result.feasible
            costs.append(result.simulated_cost_ms)
            times.append(result.sharding_time_s)
        rows.append(
            [value, sum(costs) / len(costs), sum(times) / len(times)]
        )
    return rows


def test_fig9_hyperparameters(benchmark, pool856, bundle4):
    cfg = TaskConfig(num_devices=4, max_dim=128, min_tables=10, max_tables=40)
    tasks = generate_tasks(pool856, cfg, count=3, seed=91)

    def run():
        return {
            name: _run_sweep(pool856, bundle4, tasks, field, values)
            for name, field, values in SWEEPS
        }

    all_rows = once(benchmark, run)

    blocks = []
    for name, field, values in SWEEPS:
        rows = all_rows[name]
        blocks.append(
            format_text_table(
                [name, "embedding cost (ms)", "sharding time (s)"],
                rows,
                title=f"Figure 9 sweep: {name}",
            )
        )
    record_result("fig9", "\n\n".join(blocks))

    for name, field, values in SWEEPS:
        rows = all_rows[name]
        costs = [r[1] for r in rows]
        times = [r[2] for r in rows]
        # More search never hurts the (simulated) objective materially...
        assert costs[-1] <= costs[0] * 1.02, name
        # ...and costs time: the largest setting is slower than the
        # smallest.
        assert times[-1] > times[0], name
