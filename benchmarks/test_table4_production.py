"""Table 4: production-scale deployment.

The paper shards a production DLRM (nearly a thousand multi-terabyte
tables) onto 128 GPUs and reports per-method embedding cost plus
end-to-end training-throughput improvement over random sharding.  Here
the experiment is scaled to a 16-GPU simulated cluster with 80
large-dimension tables under a deliberately tight memory budget (so
column-wise sharding is mandatory, as in production); see EXPERIMENTS.md
for the substitution notes.

Shape to reproduce: every informed method beats Random; learned-cost
methods beat heuristic greedy; NeuroShard is best on both columns.
"""

from __future__ import annotations

import math

from benchmarks.conftest import (
    bench_collection,
    bench_train,
    once,
    record_result,
)
from repro.config import SearchConfig
from repro.evaluation import format_text_table, run_production_experiment

NUM_DEVICES = 16
NUM_TABLES = 80
MEMORY_BYTES = 2 * 1024**3


def test_table4_production(benchmark, pool856):
    def run():
        return run_production_experiment(
            pool856,
            num_devices=NUM_DEVICES,
            num_tables=NUM_TABLES,
            memory_bytes=MEMORY_BYTES,
            collection=bench_collection(NUM_DEVICES),
            train=bench_train(),
            search=SearchConfig(top_n=6, beam_width=2, max_steps=8, grid_points=7),
            rl_episodes=12,
            seed=4,
        )

    rows = once(benchmark, run)

    record_result(
        "table4",
        format_text_table(
            ["method", "embedding cost (ms)", "throughput improvement (%)"],
            [
                [r.method, r.embedding_cost_ms, r.throughput_improvement_pct]
                for r in rows
            ],
            title=(
                f"Table 4 (scaled): production-style task, {NUM_TABLES} "
                f"large tables on {NUM_DEVICES} GPUs, "
                f"{MEMORY_BYTES // 1024**3} GB/GPU"
            ),
        ),
    )

    by_name = {r.method: r for r in rows}
    ns = by_name["NeuroShard"]
    random_row = by_name["Random"]
    # NeuroShard has the lowest embedding cost of all methods.
    for r in rows:
        if not math.isnan(r.embedding_cost_ms):
            assert ns.embedding_cost_ms <= r.embedding_cost_ms + 1e-9
    # ... which translates into the largest throughput improvement.
    assert ns.throughput_improvement_pct > 0
    assert ns.embedding_cost_ms < random_row.embedding_cost_ms
    # DreamShard (full-cost objective) beats AutoShard (balance only).
    if not math.isnan(by_name["DreamShard"].embedding_cost_ms) and not math.isnan(
        by_name["AutoShard"].embedding_cost_ms
    ):
        assert (
            by_name["DreamShard"].embedding_cost_ms
            <= by_name["AutoShard"].embedding_cost_ms * 1.1
        )
