"""Serving-plane performance benchmark: sustained mixed-traffic throughput.

Measures the HTTP serving plane end to end — client threads firing a
seeded, deterministic mix of ``plan`` / ``apply`` / ``reshard`` /
``rollback`` requests at a :class:`~repro.api.server.ShardingHTTPServer`
over several store-backed deployments — in two configurations:

- **single-worker**: every search runs in-process, on the server's own
  interpreter (the pre-PR serving plane, GIL-bound to one core);
- **multi-worker**: the same traffic with a shared
  :class:`~repro.api.workers.WorkerPool` of shared-nothing worker
  processes behind every deployment's engine.

Reported per configuration: sustained requests/sec over the timed phase
(warm-up excluded) and p50/p99 per-request latency.  Before any timing,
the harness pins the serving contract that makes the comparison
meaningful: pool execution must be **bit-identical** to in-process
execution (``deterministic_dict``), and after the storm every
deployment must sweep clean under ``validate_deployment``.

Gates:

- **scaling** (armed only on a >=4-core machine with >=2 pool workers —
  a single-core box physically cannot demonstrate parallel speedup):
  multi-worker throughput must be >=``REPRO_SERVICE_MIN_SCALING``x the
  single-worker run at comparable p99
  (``p99_multi <= p99_single * REPRO_SERVICE_P99_FACTOR``).
- **regression**: multi-worker requests/sec must stay within
  ``REPRO_PERF_REGRESSION_FACTOR`` of the **median** of the committed
  runs in ``benchmarks/BENCH_service.json`` measured with the same
  configuration on the same OS family, architecture, and cpu count
  (throughput is machine-dependent; the cpu count is part of the
  machine identity here because the whole point of the pool is to use
  the cores).  Runs are appended to the log only after every gate
  passed, and the log is bounded to the last 50 runs.

Scale knobs (environment):

- ``REPRO_SERVICE_PERF_CLIENTS``     — client threads (default 6).
- ``REPRO_SERVICE_PERF_REQUESTS``    — timed requests per client (default 4).
- ``REPRO_SERVICE_PERF_DEPLOYMENTS`` — deployments served (default 2).
- ``REPRO_SERVICE_PERF_WORKERS``     — pool size of the multi-worker
  configuration (default: min(4, cpu count)).
- ``REPRO_SERVICE_MIN_SCALING``      — required multi/single throughput
  ratio when the scaling gate is armed (default 3.0).
- ``REPRO_SERVICE_P99_FACTOR``       — tolerated p99 inflation of the
  multi-worker run vs. single-worker (default 1.25).
- ``REPRO_PERF_REGRESSION_FACTOR``   — tolerated throughput regression
  vs. the committed median (default 2.0).
"""

from __future__ import annotations

import json
import os
import platform
import random
import statistics
import threading
import time
import urllib.error
import urllib.request

import pytest

from benchmarks.conftest import (
    BENCH_DIR,
    SEARCH_4GPU,
    TASK_MEMORY_BYTES,
    bundle_cache_path,
    make_cluster,
    record_result,
)
from repro.api import (
    EngineSpec,
    PlanStore,
    ShardingEngine,
    ShardingHTTPServer,
    ShardingRequest,
    ShardingService,
    WorkerPool,
)
from repro.config import ClusterConfig, TaskConfig
from repro.data import generate_tasks
from repro.data.io import table_to_dict
from repro.evaluation import format_text_table

pytestmark = pytest.mark.perf

BENCH_JSON = BENCH_DIR / "BENCH_service.json"

CLIENTS = int(os.environ.get("REPRO_SERVICE_PERF_CLIENTS", "6"))
REQUESTS = int(os.environ.get("REPRO_SERVICE_PERF_REQUESTS", "4"))
DEPLOYMENTS = int(os.environ.get("REPRO_SERVICE_PERF_DEPLOYMENTS", "2"))
#: At least 2 even on a single-core machine: the multi-worker run must
#: measure the *process-pool* serving plane (scaling is gated
#: separately), never silently fall back to the in-process path.
POOL_WORKERS = int(
    os.environ.get(
        "REPRO_SERVICE_PERF_WORKERS",
        str(min(4, max(2, os.cpu_count() or 1))),
    )
)
MIN_SCALING = float(os.environ.get("REPRO_SERVICE_MIN_SCALING", "3.0"))
P99_FACTOR = float(os.environ.get("REPRO_SERVICE_P99_FACTOR", "1.25"))
REGRESSION_FACTOR = float(
    os.environ.get("REPRO_PERF_REGRESSION_FACTOR", "2.0")
)
PERF_SEED = 4242

#: The scaling gate needs cores to scale onto and a real pool to do it
#: with; a 1-core container running this benchmark still measures and
#: logs, it just cannot assert a parallel speedup it cannot produce.
SCALING_GATE_ARMED = (os.cpu_count() or 1) >= 4 and POOL_WORKERS >= 2

#: The traffic mix, deterministic per client thread (seeded schedule):
#: search-heavy, with enough lifecycle churn to exercise the store.
_OPS = ("plan", "plan", "plan", "apply", "reshard", "rollback")
_STRATEGIES = ("beam", "dim_greedy", "lookup_greedy")


def _post(base: str, path: str, body: dict) -> int:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=600) as resp:
            resp.read()
            return resp.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code


def _client_schedule(client_id: int, count: int, spare_tables):
    """The deterministic request list of one client thread."""
    rng = random.Random(PERF_SEED + client_id)
    schedule = []
    for i in range(count):
        op = _OPS[rng.randrange(len(_OPS))]
        name = f"dep{(client_id + i) % DEPLOYMENTS}"
        if op == "plan":
            body = {"strategy": _STRATEGIES[rng.randrange(len(_STRATEGIES))]}
        elif op == "apply":
            body = {}
        elif op == "reshard":
            table = spare_tables[rng.randrange(len(spare_tables))]
            body = {
                "delta": {
                    "add_tables": [
                        dict(
                            table_to_dict(table),
                            table_id=500_000
                            + 1_000 * client_id
                            + i,
                        )
                    ]
                },
                "strategy": "dim_greedy",
            }
        else:
            body = {}
        schedule.append((op, name, body))
    return schedule


def _run_config(bundle, spec: EngineSpec, tasks, workers: int, store_root):
    """Serve the seeded storm with ``workers`` processes; measure it."""
    pool = WorkerPool(spec, max_workers=workers) if workers > 1 else None
    store = PlanStore(store_root)
    service = ShardingService(store)
    engines = []
    for index in range(DEPLOYMENTS):
        engine = ShardingEngine(
            make_cluster(4), bundle, search=SEARCH_4GPU, worker_pool=pool
        )
        engines.append(engine)
        service.create_deployment(
            f"dep{index}", engine, tables=tasks[index].tables
        )
    server = ShardingHTTPServer(
        service, engines[0], port=0, max_batch=8, batch_wait_s=0.005
    )
    server.start()
    base = f"http://127.0.0.1:{server.port}"
    spare_tables = tasks[DEPLOYMENTS].tables

    try:
        # Warm-up (untimed): one plan+apply per deployment primes every
        # worker's engine and gives apply/rollback a feasible record.
        for index in range(DEPLOYMENTS):
            assert _post(
                base,
                f"/v1/deployments/dep{index}/plan",
                {"strategy": "dim_greedy"},
            ) == 200
            assert _post(
                base, f"/v1/deployments/dep{index}/apply", {}
            ) == 200

        latencies: list[float] = []
        failures: list[str] = []
        lock = threading.Lock()

        def client(client_id: int) -> None:
            mine = []
            for op, name, body in _client_schedule(
                client_id, REQUESTS, spare_tables
            ):
                started = time.perf_counter()
                status = _post(base, f"/v1/deployments/{name}/{op}", body)
                elapsed = time.perf_counter() - started
                mine.append(elapsed)
                # 400s are legitimate lifecycle races (rollback with an
                # empty stack); anything else is a serving failure.
                if status not in (200, 400):
                    with lock:
                        failures.append(f"{op} {name} -> {status}")
            with lock:
                latencies.extend(mine)

        threads = [
            threading.Thread(target=client, args=(c,))
            for c in range(CLIENTS)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - started
        assert failures == [], failures

        # Every deployment produced under the storm validates clean.
        for index in range(DEPLOYMENTS):
            report = service.validate_deployment(f"dep{index}")
            assert report.ok, report.errors

        latencies.sort()
        total = len(latencies)
        return {
            "workers": workers,
            "requests": total,
            "wall_s": round(wall_s, 4),
            "requests_per_sec": round(total / wall_s, 3),
            "p50_ms": round(1000 * latencies[total // 2], 3),
            "p99_ms": round(
                1000 * latencies[min(total - 1, int(total * 0.99))], 3
            ),
        }
    finally:
        server.close()
        for engine in engines:
            engine.close()
        if pool is not None:
            pool.close()


def test_perf_service_throughput(pool856, bundle4, tmp_path):
    config = {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS,
        "deployments": DEPLOYMENTS,
        "pool_workers": POOL_WORKERS,
        "num_devices": 4,
        "seed": PERF_SEED,
        "search": "paper N=10 K=3 L=10 M=11",
    }
    task_cfg = TaskConfig(
        num_devices=4,
        max_dim=64,
        min_tables=10,
        max_tables=20,
        memory_bytes=TASK_MEMORY_BYTES,
    )
    tasks = generate_tasks(
        pool856, task_cfg, count=DEPLOYMENTS + 1, seed=PERF_SEED
    )
    spec = EngineSpec(
        cluster=ClusterConfig(
            num_devices=4, memory_bytes=TASK_MEMORY_BYTES
        ),
        bundle_path=str(bundle_cache_path(4)),
        search=SEARCH_4GPU,
    )

    # Contract before timing: pool execution is bit-identical to
    # in-process execution — otherwise the throughput comparison would
    # be comparing different answers, not different serving planes.
    local = ShardingEngine(make_cluster(4), bundle4, search=SEARCH_4GPU)
    with WorkerPool(spec, max_workers=2) as probe_pool:
        for strategy in _STRATEGIES:
            request = ShardingRequest(tasks[0], strategy=strategy)
            want = local.shard(request).deterministic_dict()
            got = probe_pool.shard(request).deterministic_dict()
            want["request_id"] = got["request_id"]
            assert got == want, f"pool diverged from in-process: {strategy}"

    single = _run_config(bundle4, spec, tasks, 1, tmp_path / "w1")
    multi = _run_config(
        bundle4, spec, tasks, POOL_WORKERS, tmp_path / "wN"
    )
    scaling = multi["requests_per_sec"] / single["requests_per_sec"]

    record_result(
        "perf_service",
        format_text_table(
            ["configuration", "requests", "wall (s)", "req/s",
             "p50 (ms)", "p99 (ms)"],
            [
                ["1 worker (in-process)", single["requests"],
                 single["wall_s"], single["requests_per_sec"],
                 single["p50_ms"], single["p99_ms"]],
                [f"{POOL_WORKERS} workers (process pool)",
                 multi["requests"], multi["wall_s"],
                 multi["requests_per_sec"], multi["p50_ms"],
                 multi["p99_ms"]],
            ],
            title=(
                f"Serving plane under mixed plan/apply/reshard traffic "
                f"({CLIENTS} clients x {REQUESTS} requests, "
                f"{DEPLOYMENTS} deployments, {os.cpu_count()} cpus): "
                f"{scaling:.2f}x scaling, gate "
                f"{'armed' if SCALING_GATE_ARMED else 'disarmed'}"
            ),
        ),
    )

    baseline_rps = None
    baseline_runs = 0
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
        # Same-config, same OS family/architecture/cpu-count runs only:
        # the pool's throughput is a function of the cores it can
        # spread onto, so a 16-core run must never become the floor a
        # 1-core container is gated against.  Median, not latest — one
        # fast outlier must not ratchet the floor upward.
        system, machine = platform.system(), platform.machine()
        cpus = os.cpu_count()
        matching = [
            entry["multi"]["requests_per_sec"]
            for entry in history
            if entry.get("config") == config
            and entry.get("machine", {}).get("cpus") == cpus
            and (
                entry_platform := entry.get("machine", {}).get(
                    "platform", ""
                )
            ).startswith(system)
            and machine in entry_platform
        ]
        if matching:
            baseline_rps = statistics.median(matching)
            baseline_runs = len(matching)
    else:
        history = []

    entry = {
        "config": config,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "single": single,
        "multi": multi,
        "scaling": round(scaling, 3),
        "scaling_gate_armed": SCALING_GATE_ARMED,
    }

    if SCALING_GATE_ARMED:
        assert scaling >= MIN_SCALING, (
            f"{POOL_WORKERS}-worker throughput scaled only "
            f"{scaling:.2f}x over single-worker "
            f"(required {MIN_SCALING}x on this {os.cpu_count()}-core "
            f"machine)"
        )
        assert multi["p99_ms"] <= single["p99_ms"] * P99_FACTOR, (
            f"multi-worker p99 {multi['p99_ms']:.1f} ms exceeds "
            f"{P99_FACTOR}x the single-worker p99 "
            f"{single['p99_ms']:.1f} ms — throughput bought with "
            f"latency is not scaling"
        )
    if baseline_rps is not None:
        floor = baseline_rps / REGRESSION_FACTOR
        assert multi["requests_per_sec"] >= floor, (
            f"sustained throughput regressed more than "
            f"{REGRESSION_FACTOR}x: {multi['requests_per_sec']:.2f} "
            f"req/s vs the median {baseline_rps:.2f} req/s of "
            f"{baseline_runs} committed same-config/machine runs"
        )

    # Record the run only after every gate passed: failing runs must not
    # enter the history, or repeated failing reruns would drag the
    # median floor down until the regression legitimizes itself.
    history.append(entry)
    history = history[-50:]  # bound the trajectory file
    BENCH_JSON.write_text(json.dumps(history, indent=1) + "\n")
