"""Table 2: testing MSE of the neural cost models.

The paper reports small test MSEs for all three cost models on the
4-GPU and 8-GPU DLRM settings (0.02-0.26 ms² on their hardware's cost
scale).  Absolute MSEs depend on the latency scale of the (simulated)
hardware; the shape to reproduce is: all three models are far more
accurate than a constant predictor, and the communication models are the
most accurate (their function is nearly linear).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    load_or_pretrain_bundle,
    once,
    record_result,
)
from repro.evaluation import format_text_table


def test_table2_test_mse(benchmark, pool856, cluster4, cluster8):
    def build():
        _, mse4 = load_or_pretrain_bundle(pool856, cluster4)
        _, mse8 = load_or_pretrain_bundle(pool856, cluster8)
        return mse4, mse8

    mse4, mse8 = once(benchmark, build)

    rows = [
        [model, mse4[model], mse8[model]]
        for model in ("Computation", "Forward Communication", "Backward Communication")
    ]
    record_result(
        "table2",
        format_text_table(
            ["model", "DLRM (4 GPUs)", "DLRM (8 GPUs)"],
            rows,
            precision=3,
            title="Table 2: testing MSE (ms^2) of the neural cost models",
        ),
    )
    for mses in (mse4, mse8):
        assert all(v > 0 for v in mses.values())
    # On the 4-GPU setting the communication models are the most
    # accurate, as in the paper; the 8-GPU models face a 2x wider input
    # and stay within the same order of magnitude.
    assert mse4["Forward Communication"] < mse4["Computation"]
    assert mse8["Forward Communication"] < 3 * mse8["Computation"]
    # The computation model is shared across cluster shapes (same
    # tables, same kernel), mirroring the paper's identical 0.21/0.21
    # row in Table 2.
    assert mse4["Computation"] == mse8["Computation"]


def test_table2_models_dominate_constant_predictor(pool856, cluster4):
    """All three models must be far better than predicting the mean."""
    bundle, _ = load_or_pretrain_bundle(pool856, cluster4)
    rng = np.random.default_rng(22)
    combos = pool856.sample_combinations(80, rng, 1, 15)
    feats = [bundle.featurizer.features_matrix(c) for c in combos]
    pred = bundle.compute.predict_many(feats)
    real = np.array([cluster4.measure_compute(c) for c in combos])
    model_mse = float(np.mean((pred - real) ** 2))
    const_mse = float(np.var(real))
    assert model_mse < const_mse / 10
