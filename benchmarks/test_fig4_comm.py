"""Figure 4: max communication cost vs max device dimension.

Reproduces the paper's communication analysis: random table placements
(Algorithm 5) on 4 and 8 GPUs with random start skews; the max measured
forward/backward all-to-all cost across devices is plotted against the
max device dimension.  Observation 3: they correlate positively — which
is why bounding the max device dimension is the search's communication
lever.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, record_result
from repro.costmodel import kendall_tau
from repro.evaluation import format_text_table


def _run(pool, cluster, num_placements: int, seed: int):
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(num_placements):
        placement = pool.sample_placement(
            rng,
            cluster.num_devices,
            min_tables=10 * cluster.num_devices // 4,
            max_tables=60 * cluster.num_devices // 4,
            memory_bytes=cluster.config.memory_bytes,
        )
        dims = placement.device_dims
        starts = rng.uniform(0.0, 5.0, size=cluster.num_devices)
        fwd = cluster.measure_comm(dims, start_times_ms=starts)
        bwd = cluster.measure_comm(dims, start_times_ms=starts, backward=True)
        points.append((max(dims), fwd.max_cost_ms, bwd.max_cost_ms))
    return points


def _check_and_report(name, title, points):
    max_dims = np.array([p[0] for p in points], dtype=float)
    fwd = np.array([p[1] for p in points])
    bwd = np.array([p[2] for p in points])
    tau_fwd = kendall_tau(max_dims, fwd)
    tau_bwd = kendall_tau(max_dims, bwd)
    order = np.argsort(max_dims)
    rows = [
        [int(max_dims[i]), fwd[i], bwd[i]] for i in order[:: max(len(order) // 12, 1)]
    ]
    record_result(
        name,
        format_text_table(
            ["max device dimension", "max fwd comm (ms)", "max bwd comm (ms)"],
            rows,
            title=(
                f"{title}\nKendall tau: forward={tau_fwd:.3f}, "
                f"backward={tau_bwd:.3f} (paper: strong positive correlation)"
            ),
        ),
    )
    # Observation 3: strong positive rank correlation both directions.
    assert tau_fwd > 0.5
    assert tau_bwd > 0.5
    # Backward collective is the slower one.
    assert bwd.mean() > fwd.mean()


def test_fig4_comm_4gpus(benchmark, pool856, cluster4):
    points = once(benchmark, lambda: _run(pool856, cluster4, 50, seed=4))
    _check_and_report(
        "fig4_4gpus", "Figure 4 (left): 4 GPUs, 50 placements", points
    )


def test_fig4_comm_8gpus(benchmark, pool856, cluster8):
    points = once(benchmark, lambda: _run(pool856, cluster8, 50, seed=8))
    _check_and_report(
        "fig4_8gpus", "Figure 4 (right): 8 GPUs, 50 placements", points
    )


def test_fig4_8gpus_cost_exceeds_4gpus(pool856, cluster4, cluster8):
    """The paper's 8-GPU costs sit above the 4-GPU ones at equal
    dimensions (more peers, more latency, larger exchanged fraction)."""
    dims4 = [600, 550, 580, 560]
    dims8 = [600, 550, 580, 560] * 2
    four = cluster4.measure_comm(dims4, noisy=False).max_cost_ms
    eight = cluster8.measure_comm(dims8, noisy=False).max_cost_ms
    assert eight > four
