"""Table 5: the 12 sharding-task settings used by the evaluation."""

from __future__ import annotations

from benchmarks.conftest import once, record_result
from repro.config import TaskConfig
from repro.data import generate_tasks
from repro.evaluation import format_text_table


def test_table5_task_grid(benchmark, pool856):
    def generate():
        # Verify every setting actually yields valid tasks.
        samples = {}
        for cfg in TaskConfig.paper_grid():
            tasks = generate_tasks(pool856, cfg, count=3, seed=55)
            samples[(cfg.num_devices, cfg.max_dim)] = tasks
        return samples

    samples = once(benchmark, generate)

    rows = []
    for cfg in TaskConfig.paper_grid():
        tasks = samples[(cfg.num_devices, cfg.max_dim)]
        rows.append(
            [
                cfg.num_devices,
                f"{cfg.min_tables}-{cfg.max_tables}",
                ", ".join(str(d) for d in cfg.dim_choices),
                f"{min(t.num_tables for t in tasks)}-"
                f"{max(t.num_tables for t in tasks)}",
            ]
        )
    record_result(
        "table5",
        format_text_table(
            [
                "GPUs",
                "table-count range",
                "table dimensions",
                "sampled range (3 tasks)",
            ],
            rows,
            title="Table 5: sharding-task settings (4 GB per GPU)",
        ),
    )
    for (num_devices, _), tasks in samples.items():
        for task in tasks:
            assert task.num_devices == num_devices
            assert not task.is_trivially_infeasible()
