"""Extension benchmark: does dimension balancing survive an RDMA fabric?

The production deployment (Table 4) runs on 128 GPUs over a hierarchical
NVLink-island + RDMA-fabric interconnect, not the flat single-server
all-to-all of the benchmark testbed.  NeuroShard's communication
balancing rests on Observation 3 — max comm cost tracks max device
dimension — so the design question is whether that observation is a
property of the flat topology or of synchronous all-to-alls in general.

This bench measures, on a 32-GPU cluster under both the flat and the
hierarchical comm model:

1. the correlation between max device dimension and max comm cost over
   random placements of varying balance (Algorithm 5's generator), and
2. the embedding-cost gap between a dimension-balanced placement and an
   imbalanced one.

Expected shape: correlation > 0.9 on *both* fabrics, and balancing wins
on both — topology changes the constants, not the principle.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, record_result
from repro.config import ClusterConfig
from repro.evaluation import format_text_table
from repro.hardware import (
    HierarchicalAllToAllModel,
    SimulatedCluster,
    TopologySpec,
)

NUM_DEVICES = 32
BATCH = 65536
NUM_PLACEMENTS = 40


def make_clusters():
    config = ClusterConfig(num_devices=NUM_DEVICES, batch_size=BATCH)
    flat = SimulatedCluster(config)
    hier = SimulatedCluster(
        config,
        comm=HierarchicalAllToAllModel(topology=TopologySpec(node_size=8)),
    )
    return {"flat (single server)": flat, "hierarchical (8-GPU nodes)": hier}


def sample_placements(pool, rng):
    """Placements of varying balance, per Algorithm 5's greedy-with-
    randomness generator."""
    placements = []
    for _ in range(NUM_PLACEMENTS):
        n = int(rng.integers(4 * NUM_DEVICES, 8 * NUM_DEVICES))
        picks = rng.choice(len(pool.tables), size=n, replace=True)
        dims = rng.choice([16, 32, 64, 128], size=n)
        tables = [pool.tables[i].with_dim(int(d)) for i, d in zip(picks, dims)]
        p = float(rng.uniform())
        per_device = [[] for _ in range(NUM_DEVICES)]
        device_dims = [0] * NUM_DEVICES
        for t in sorted(tables, key=lambda t: -t.dim):
            if rng.uniform() <= p:
                d = int(np.argmin(device_dims))
            else:
                d = int(rng.integers(NUM_DEVICES))
            per_device[d].append(t)
            device_dims[d] += t.dim
        placements.append(per_device)
    return placements


def test_ext_topology(benchmark, pool856):
    rng = np.random.default_rng(606)
    placements = sample_placements(pool856, rng)
    clusters = make_clusters()

    def run():
        rows = {}
        for name, cluster in clusters.items():
            max_dims, max_comms = [], []
            for per_device in placements:
                dims = [sum(t.dim for t in dev) for dev in per_device]
                meas = cluster.measure_comm(dims)
                max_dims.append(max(dims))
                max_comms.append(meas.max_cost_ms)
            corr = float(np.corrcoef(max_dims, max_comms)[0, 1])

            # Balanced vs imbalanced placement of one fixed workload.
            balanced = min(
                placements,
                key=lambda p: max(sum(t.dim for t in dev) for dev in p)
                / max(np.mean([sum(t.dim for t in dev) for dev in p]), 1),
            )
            imbalanced = max(
                placements,
                key=lambda p: max(sum(t.dim for t in dev) for dev in p)
                / max(np.mean([sum(t.dim for t in dev) for dev in p]), 1),
            )
            b_dims = [sum(t.dim for t in dev) for dev in balanced]
            i_dims = [sum(t.dim for t in dev) for dev in imbalanced]
            b_cost = cluster.measure_comm(b_dims).max_cost_ms
            i_cost = cluster.measure_comm(i_dims).max_cost_ms
            # Normalize by total dimension so workloads are comparable.
            b_norm = b_cost / sum(b_dims)
            i_norm = i_cost / sum(i_dims)
            rows[name] = (corr, b_norm * 1e4, i_norm * 1e4)
        return rows

    rows = once(benchmark, run)

    headers = [
        "fabric",
        "corr(max dim, max comm)",
        "balanced cost / dim (x1e-4)",
        "imbalanced cost / dim (x1e-4)",
    ]
    table_rows = [[name, *values] for name, values in rows.items()]
    record_result(
        "ext_topology",
        format_text_table(
            headers,
            table_rows,
            title=(
                f"Extension — Observation 3 across fabrics ({NUM_DEVICES} "
                f"GPUs, {NUM_PLACEMENTS} random placements)"
            ),
        ),
    )

    for name, (corr, b_norm, i_norm) in rows.items():
        assert corr > 0.9, f"Observation 3 broke on {name}: corr={corr:.3f}"
        assert b_norm < i_norm, f"balancing did not help on {name}"
