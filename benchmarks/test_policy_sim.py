"""Online resharding policies across the full scenario atlas.

Every registered workload regime (:mod:`repro.scenarios.catalog`) is
simulated through the discrete-event cluster simulator
(:mod:`repro.simulator`) under each online policy, on the cached 4-GPU
bundle at the scenario-atlas scale (seed 2023, 16 tables, tight 150 ms
migration budget).  The policy-vs-regime matrix is committed to
``results/policy_sim.txt``.

Everything in a report comes from the cost-model simulator and the
seeded machine processes (no wall clocks), so the committed artifact is
bit-reproducible: a diff in it means the search, the reshard objective,
the cost models, or a policy's decision rule changed.

Each simulation runs into an injected lifecycle service whose full plan
history is then swept by the invariant suite
(:meth:`~repro.api.service.ShardingService.validate_deployment`) —
every plan a policy applies must pass the :class:`~repro.validation
.invariants.PlanValidator` cleanly, not just feasibly.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import once, record_result
from repro.api import ReshardConfig, ShardingEngine, ShardingService
from repro.config import ClusterConfig
from repro.evaluation import REPLAY_SEARCH_CONFIG
from repro.hardware import SimulatedCluster
from repro.scenarios import available_scenarios, make_trace
from repro.simulator import (
    FleetSpec,
    SimulationConfig,
    format_policy_matrix,
    make_policy,
    simulate_policy,
)

#: Simulation scale — the scenario atlas replay scale (test_scenarios),
#: so the two committed artifacts describe the same fleet.
SIM_SEED = 2023
SIM_MEMORY_BYTES = 2 * 1024**3
SIM_TABLES = 16
BUDGET_MS = 150.0

#: The policies in the committed matrix, with their matrix kwargs.
#: ``periodic`` reshards on a fixed cadence, ``drift_threshold`` waits
#: for the cost models or the serving cost to degrade, and
#: ``cost_of_delay`` prices procrastination against migration spend.
POLICIES: dict[str, dict] = {
    "periodic": {"interval_hours": 6.0},
    "drift_threshold": {"degradation_ratio": 1.15},
    "cost_of_delay": {"lam": 0.1},
}

#: A lightly flaky fleet (seeded, so fully reproducible): policies are
#: compared under occasional device loss and stragglers, not in a
#: sterile cluster.
FLEET = FleetSpec(mtbf_hours=96.0, straggler_rate_per_hour=1.0 / 24.0)

#: Reports accumulated by the parametrized simulations (definition
#: order: the matrix test below runs after them in the same session).
_REPORTS: dict[tuple[str, str], object] = {}


def _sim_engine(bundle4) -> ShardingEngine:
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=4, memory_bytes=SIM_MEMORY_BYTES)
    )
    return ShardingEngine(cluster, bundle4, search=REPLAY_SEARCH_CONFIG)


def _simulate(pool856, bundle4, scenario: str, policy_name: str):
    trace = make_trace(
        scenario,
        pool856,
        num_devices=4,
        memory_bytes=SIM_MEMORY_BYTES,
        num_tables=SIM_TABLES,
        seed=SIM_SEED,
    )
    service = ShardingService()
    report = simulate_policy(
        trace,
        _sim_engine(bundle4),
        make_policy(policy_name, **POLICIES[policy_name]),
        reshard_config=ReshardConfig(
            migration_budget_ms=BUDGET_MS,
            migration_lambda=1e-4,
            max_refine_steps=16,
        ),
        config=SimulationConfig(sim_seed=SIM_SEED, fleet=FLEET),
        service=service,
        deployment=scenario,
    )
    return report, service


@pytest.mark.parametrize("scenario", sorted(available_scenarios()))
def test_policy_simulation(benchmark, pool856, bundle4, scenario):
    """All policies on one regime, each audited by the invariant suite."""

    def run():
        return {
            name: _simulate(pool856, bundle4, scenario, name)
            for name in POLICIES
        }

    for policy_name, (report, service) in once(benchmark, run).items():
        _REPORTS[(scenario, policy_name)] = report

        # The simulation spans the whole trace and serves finite costs.
        assert report.horizon_hours > 0
        assert sum(s.duration_hours for s in report.segments) == (
            pytest.approx(report.horizon_hours)
        )
        assert math.isfinite(report.mean_cost_ms)

        # Every plan the policy applied — the initial one and each
        # reshard — passes the invariant suite cleanly.
        validation = service.validate_deployment(scenario)
        assert validation.ok, validation.error_codes
        assert len(validation.checks) > 0

        # Migration accounting is internally consistent.
        assert report.total_moved_mb == pytest.approx(
            sum(d.moved_mb for d in report.reshards)
        )


def test_policy_matrix_artifact():
    """The committed artifact: policies x all regimes, one matrix."""
    names = sorted(available_scenarios())
    assert len(names) >= 8
    expected = [(s, p) for s in names for p in sorted(POLICIES)]
    assert sorted(_REPORTS) == expected, (
        "run the full module: the matrix aggregates the simulation tests"
    )
    reports = [
        _REPORTS[(scenario, policy)]
        for scenario in names
        for policy in POLICIES  # declaration order within a scenario
    ]
    record_result("policy_sim", format_policy_matrix(reports))

    # At this scale at least one policy reshards at least once somewhere
    # (otherwise the matrix compares nothing).
    assert sum(r.reshard_count for r in reports) > 0
