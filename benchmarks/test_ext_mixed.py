"""Extension benchmark: mixed CPU-GPU sharding (paper Section 6).

Not a paper table — the paper defers CPU/mixed sharding to future work.
This bench demonstrates the scenario that motivates it: a workload whose
largest tables exceed every GPU's memory budget.

Methods compared on a 2-GPU + 1-CPU cluster:

- ``gpu-only-greedy`` — dimension-greedy across the GPUs only (what a
  homogeneous sharder could do); OOMs whenever a giant table appears.
- ``cpu-offload-heuristic`` — pin every table that does not fit a GPU to
  the CPU, dimension-greedy the rest across the GPUs.
- ``mixed-neuroshard`` — the pre-train-and-search extension
  (:class:`repro.extensions.MixedClusterSharder`): per-class cost models,
  drain-constrained greedy grid search, column-split outer loop.

Expected shape: gpu-only fails on every task; the heuristic is feasible
but leaves the bottleneck unbalanced; mixed-neuroshard is feasible with
the lowest mean bottleneck cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import once, record_result
from repro.config import CollectionConfig, TrainConfig
from repro.data import TablePool, synthesize_table_pool
from repro.data.table import TableConfig
from repro.extensions import MixedClusterSharder, pretrain_mixed_cost_models
from repro.hardware import HeterogeneousCluster, cpu_host, gpu_2080ti

BATCH = 4096
GPU_BUDGET = 1 * 1024**3
CPU_BUDGET = 64 * 1024**3
NUM_TASKS = 5


@pytest.fixture(scope="module")
def mixed_cluster() -> HeterogeneousCluster:
    return HeterogeneousCluster(
        [gpu_2080ti(), gpu_2080ti(), cpu_host()],
        memory_bytes=[GPU_BUDGET, GPU_BUDGET, CPU_BUDGET],
        batch_size=BATCH,
    )


@pytest.fixture(scope="module")
def pool() -> TablePool:
    return TablePool(synthesize_table_pool(num_tables=128, seed=17))


@pytest.fixture(scope="module")
def mixed_models(mixed_cluster, pool):
    return pretrain_mixed_cost_models(
        mixed_cluster,
        pool,
        collection=CollectionConfig(num_compute_samples=2500, num_comm_samples=1),
        train=TrainConfig(epochs=150),
        seed=7,
    )


def sample_tasks(pool: TablePool) -> list[list[TableConfig]]:
    """Workloads with a giant-table tail that gates GPU-only sharding."""
    rng = np.random.default_rng(99)
    tasks = []
    for _ in range(NUM_TASKS):
        n = int(rng.integers(10, 18))
        picks = rng.choice(len(pool.tables), size=n, replace=False)
        dims = rng.choice([16, 32, 64], size=n)
        tables = [pool.tables[i].with_dim(int(d)) for i, d in zip(picks, dims)]
        for g in range(int(rng.integers(1, 3))):
            tables.append(
                TableConfig(
                    table_id=2000 + g,
                    hash_size=int(rng.integers(20, 40)) * 10**6,
                    dim=64,
                    pooling_factor=float(rng.uniform(1.0, 2.0)),
                    zipf_alpha=1.25,
                )
            )
        tasks.append(tables)
    return tasks


def gpu_only_greedy(cluster, tables) -> list[list[TableConfig]] | None:
    """Dimension-greedy across the GPU devices only."""
    gpus = [d for d, k in enumerate(cluster.device_classes) if k == "gpu"]
    per_device: list[list[TableConfig]] = [[] for _ in range(cluster.num_devices)]
    for t in sorted(tables, key=lambda t: -t.dim):
        candidates = [
            d for d in gpus if cluster.device_fits(d, per_device[d] + [t])
        ]
        if not candidates:
            return None
        best = min(candidates, key=lambda d: sum(x.dim for x in per_device[d]))
        per_device[best].append(t)
    return per_device


def cpu_offload_heuristic(cluster, tables) -> list[list[TableConfig]] | None:
    """Pin GPU-impossible tables to the CPU, dim-greedy the rest."""
    cpus = [d for d, k in enumerate(cluster.device_classes) if k == "cpu"]
    gpus = [d for d, k in enumerate(cluster.device_classes) if k == "gpu"]
    per_device: list[list[TableConfig]] = [[] for _ in range(cluster.num_devices)]
    rest = []
    for t in tables:
        if any(cluster.device_fits(d, [t]) for d in gpus):
            rest.append(t)
        else:
            per_device[cpus[0]].append(t)
    for t in sorted(rest, key=lambda t: -t.dim):
        candidates = [
            d for d in gpus if cluster.device_fits(d, per_device[d] + [t])
        ]
        if not candidates:
            candidates = [
                d for d in cpus if cluster.device_fits(d, per_device[d] + [t])
            ]
        if not candidates:
            return None
        best = min(candidates, key=lambda d: sum(x.dim for x in per_device[d]))
        per_device[best].append(t)
    return per_device


def test_ext_mixed_cluster(benchmark, mixed_cluster, mixed_models, pool):
    tasks = sample_tasks(pool)
    sharder = MixedClusterSharder(mixed_cluster, mixed_models, max_steps=6)

    def run():
        rows = {}
        for name, fn in (
            ("gpu-only-greedy", lambda t: gpu_only_greedy(mixed_cluster, t)),
            ("cpu-offload-heuristic",
             lambda t: cpu_offload_heuristic(mixed_cluster, t)),
            ("mixed-neuroshard",
             lambda t: (lambda r: list(map(list, r.per_device))
                        if r.feasible else None)(sharder.shard(t))),
        ):
            costs = []
            feasible = 0
            for tables in tasks:
                placement = fn(tables)
                if placement is None or not mixed_cluster.plan_fits(placement):
                    continue
                feasible += 1
                costs.append(mixed_cluster.evaluate_plan(placement).max_cost_ms)
            rows[name] = (feasible, float(np.mean(costs)) if costs else float("nan"))
        return rows

    rows = once(benchmark, run)

    lines = [
        "Extension — mixed CPU-GPU sharding "
        f"(2x gpu-2080ti @ {GPU_BUDGET // 1024**3} GB + cpu-host, "
        f"{NUM_TASKS} tasks with giant tables)",
        f"{'Method':24s} {'Feasible':>9s} {'Mean cost (ms)':>15s}",
    ]
    for name, (feasible, cost) in rows.items():
        cost_s = f"{cost:.2f}" if np.isfinite(cost) else "-"
        lines.append(f"{name:24s} {feasible:>6d}/{NUM_TASKS} {cost_s:>15s}")
    record_result("ext_mixed_cluster", "\n".join(lines))

    # GPU-only cannot scale to this workload at all.
    assert rows["gpu-only-greedy"][0] == 0
    # The extension shards every task.
    assert rows["mixed-neuroshard"][0] == NUM_TASKS
    # And it does not lose to the offload heuristic.
    if rows["cpu-offload-heuristic"][0] == NUM_TASKS:
        assert rows["mixed-neuroshard"][1] <= rows["cpu-offload-heuristic"][1] * 1.1
