"""Shared benchmark fixtures.

The benchmarks regenerate every table and figure of the paper's
evaluation (see DESIGN.md's experiment index).  They are scaled down from
the paper's sizes (100K training samples, 100 tasks per setting) so the
whole suite runs in tens of minutes on a laptop; the *shape* of every
result — who wins, by roughly what factor, where methods stop scaling —
is preserved.  Scale knobs:

- ``REPRO_BENCH_SAMPLES``: compute-model training samples (default 8000).
- ``REPRO_BENCH_EPOCHS``: training epochs (default 300).
- ``REPRO_BENCH_TASKS``: tasks per Table 1 setting (default 6).

Pre-trained bundles are cached (and committed) under
``benchmarks/_cache`` keyed by their configuration, so repeated
benchmark runs skip the ~2 minute pre-training.  Pre-training is
deterministic — rebuilding a cache entry under unchanged code reproduces
the bundle bit-for-bit — and because the configuration key alone does
not capture the code, every bundle directory carries a
``code_fingerprint.txt`` hashing the source that determines it
(``repro.costmodel``/``repro.data``/``repro.hardware``/``repro.nn``/
``repro.config``);
a cached bundle whose fingerprint no longer matches is retrained
automatically instead of being served stale.  The hash covers raw
source bytes, so a comment-only edit also invalidates it — deliberately
erring on the side of a spurious retrain, which is cheap and, being
deterministic, reproduces the bundle bit-for-bit (commit the refreshed
fingerprint, nothing else moves).  After a retrain that *does* change
the bundle, rerun the benchmarks so the committed ``results/*.txt`` are
regenerated against it — git will show both moving together.  Each
benchmark writes its paper-style table to ``benchmarks/results/*.txt``
as well as printing it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import (
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TrainConfig,
)
from repro.costmodel import PretrainedCostModels, pretrain_cost_models
from repro.data import TablePool, synthesize_table_pool
from repro.hardware import SimulatedCluster
from repro.utils import source_fingerprint

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / "_cache"
RESULTS_DIR = BENCH_DIR / "results"

BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "8000"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "300"))
BENCH_TASKS = int(os.environ.get("REPRO_BENCH_TASKS", "6"))

#: Memory budget of the benchmark tasks (paper: 4 GB per GPU).
TASK_MEMORY_BYTES = 4 * 1024**3

#: Search configuration used by the benchmarks.  The paper's N=10, K=3,
#: L=10, M=11 is kept for the 4-GPU settings; 8-GPU settings use a
#: narrower beam but *more* steps — our synthesized pool has heavier
#: tables than dlrm_datasets, so several tables can each require a
#: mandatory split and L must cover the sum of those splits.
SEARCH_4GPU = SearchConfig()
SEARCH_8GPU = SearchConfig(top_n=6, beam_width=2, max_steps=16, grid_points=7)


def bench_collection(num_devices: int) -> CollectionConfig:
    return CollectionConfig(
        num_compute_samples=BENCH_SAMPLES,
        num_comm_samples=max(BENCH_SAMPLES // 3, 500),
    ).for_devices(num_devices)


def bench_train() -> TrainConfig:
    return TrainConfig(epochs=BENCH_EPOCHS)


@pytest.fixture(scope="session")
def pool856() -> TablePool:
    """The full 856-table pool (dlrm_datasets stand-in)."""
    return TablePool(synthesize_table_pool(seed=2023))


def make_cluster(num_devices: int) -> SimulatedCluster:
    return SimulatedCluster(
        ClusterConfig(num_devices=num_devices, memory_bytes=TASK_MEMORY_BYTES)
    )


@pytest.fixture(scope="session")
def cluster4() -> SimulatedCluster:
    return make_cluster(4)


@pytest.fixture(scope="session")
def cluster8() -> SimulatedCluster:
    return make_cluster(8)


#: Source entries (relative to ``src/repro``) a pre-trained bundle's
#: bytes depend on: featurization, the ``repro.nn`` model/training
#: stack, the simulated hardware the samples are collected on, and the
#: config defaults.
BUNDLE_SOURCES = ("config.py", "costmodel", "data", "hardware", "nn")


def bundle_code_fingerprint() -> str:
    """Hash of every source file a pre-trained bundle depends on.

    The cache key of :func:`load_or_pretrain_bundle` captures the
    *configuration* (devices, samples, epochs, seed) but not the *code*;
    this digest covers the rest — so a cached bundle trained by older
    code is detected mechanically.  Delegates to the shared (cached)
    :func:`repro.utils.source_fingerprint`, the same helper provenance
    stamps use; the digest is byte-identical to the one historical
    ``code_fingerprint.txt`` files were written with.
    """
    return source_fingerprint(*BUNDLE_SOURCES)


def load_or_pretrain_bundle(
    pool: TablePool,
    cluster: SimulatedCluster,
    seed: int = 1,
) -> tuple[PretrainedCostModels, dict[str, float]]:
    """Disk-cached pre-training for a given cluster shape.

    Returns the bundle and the Table 2 test-MSE rows (also cached).
    A cached bundle is only served when its ``code_fingerprint.txt``
    matches the current source (see :func:`bundle_code_fingerprint`);
    otherwise it is retrained and overwritten in place.
    """
    import json

    key = (
        f"bundle_{cluster.num_devices}gpu_{BENCH_SAMPLES}s_{BENCH_EPOCHS}e_s{seed}"
    )
    directory = CACHE_DIR / key
    mse_path = directory / "test_mse.json"
    fingerprint = bundle_code_fingerprint()
    fingerprint_path = directory / "code_fingerprint.txt"
    if mse_path.exists() and (
        fingerprint_path.exists()
        and fingerprint_path.read_text().strip() == fingerprint
    ):
        bundle = PretrainedCostModels.load(directory)
        return bundle, json.loads(mse_path.read_text())
    bundle, report = pretrain_cost_models(
        cluster,
        pool,
        collection=bench_collection(cluster.num_devices),
        train=bench_train(),
        seed=seed,
    )
    directory.mkdir(parents=True, exist_ok=True)
    bundle.save(directory)
    mse_rows = report.test_mse_rows()
    mse_path.write_text(json.dumps(mse_rows, indent=2))
    fingerprint_path.write_text(fingerprint + "\n")
    return bundle, mse_rows


def bundle_cache_path(num_devices: int, seed: int = 1) -> Path:
    """The on-disk cache directory of :func:`load_or_pretrain_bundle`.

    The service benchmark hands this to :class:`repro.api.EngineSpec`
    so worker processes bootstrap from the same cached bundle the
    in-process fixtures load.
    """
    return CACHE_DIR / (
        f"bundle_{num_devices}gpu_{BENCH_SAMPLES}s_{BENCH_EPOCHS}e_s{seed}"
    )


@pytest.fixture(scope="session")
def bundle4(pool856, cluster4):
    return load_or_pretrain_bundle(pool856, cluster4)[0]


@pytest.fixture(scope="session")
def bundle8(pool856, cluster8):
    return load_or_pretrain_bundle(pool856, cluster8)[0]


def record_result(name: str, text: str) -> None:
    """Print a paper-style table and persist it under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and heavy; statistical repetition
    is meaningless, so every benchmark uses a single round.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
