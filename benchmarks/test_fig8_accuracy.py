"""Figure 8: how accurate are the cost models, and how accurate do they
need to be?

- **Left**: scatter of simulated vs real embedding costs for 100 random
  sharding plans; the paper reports Kendall's tau = 0.97 — near-perfect
  rank agreement, which is what search needs.
- **Middle**: test MSE of the cost models vs the number of training
  samples (paper sweeps 10^1..10^5; here 30..3000).
- **Right**: final sharding quality vs the number of training samples —
  the punchline: even ~10^2 samples already yield strong sharding,
  because the searcher needs *sufficiently*, not perfectly, accurate
  models.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    SEARCH_4GPU,
    load_or_pretrain_bundle,
    once,
    record_result,
)
from repro.config import CollectionConfig, TaskConfig, TrainConfig
from repro.core import CostCache, NeuroShard, NeuroShardSimulator
from repro.costmodel import kendall_tau, pretrain_cost_models, scatter_eval
from repro.data import generate_tasks
from repro.evaluation import evaluate_sharder, format_text_table

SAMPLE_SWEEP = (30, 100, 300, 1000, 3000)


def test_fig8_left_simulation_vs_real(benchmark, pool856, cluster4):
    """Simulated vs real cost over 100 random plans."""
    bundle, _ = load_or_pretrain_bundle(pool856, cluster4)
    simulator = NeuroShardSimulator(bundle, CostCache())
    cfg = TaskConfig(num_devices=4, max_dim=64, min_tables=10, max_tables=60)
    tasks = generate_tasks(pool856, cfg, count=25, seed=81)
    rng = np.random.default_rng(81)

    def run():
        simulated, real = [], []
        for task in tasks:
            for _ in range(4):  # 4 random plans per task -> 100 points
                assignment = rng.integers(0, 4, size=task.num_tables)
                per_device = [[] for _ in range(4)]
                for t, d in zip(task.tables, assignment):
                    per_device[d].append(t)
                if not cluster4.plan_fits(per_device):
                    continue
                simulated.append(simulator.plan_cost(per_device).max_cost_ms)
                real.append(cluster4.evaluate_plan(per_device).max_cost_ms)
        return scatter_eval(simulated, real)

    ev = once(benchmark, run)

    record_result(
        "fig8_left",
        format_text_table(
            ["points", "Kendall tau", "MSE (ms^2)", "MAE (ms)"],
            [[len(ev.simulated), ev.tau, ev.mse, ev.mean_absolute_error]],
            precision=3,
            title="Figure 8 (left): simulated vs real cost of random plans "
            "(paper: tau = 0.97)",
        ),
    )
    assert len(ev.simulated) >= 50
    assert ev.tau > 0.85


def test_fig8_middle_and_right_sample_efficiency(benchmark, pool856, cluster4):
    """Cost-model MSE and final sharding cost vs #training samples."""
    cfg = TaskConfig(num_devices=4, max_dim=128, min_tables=10, max_tables=40)
    tasks = generate_tasks(pool856, cfg, count=3, seed=88)

    def run():
        rows = []
        for n in SAMPLE_SWEEP:
            collection = CollectionConfig(
                num_compute_samples=n, num_comm_samples=max(n, 50)
            )
            train = TrainConfig(
                epochs=200, batch_size=max(16, min(256, n // 4))
            )
            bundle, report = pretrain_cost_models(
                cluster4, pool856, collection, train, seed=5
            )
            mses = report.test_mse_rows()
            sharder = NeuroShard(bundle, search=SEARCH_4GPU)
            ev = evaluate_sharder(sharder, tasks, cluster4)
            rows.append(
                [
                    n,
                    mses["Computation"],
                    mses["Forward Communication"],
                    mses["Backward Communication"],
                    ev.mean_cost_of_successes_ms,
                ]
            )
        return rows

    rows = once(benchmark, run)

    record_result(
        "fig8_middle_right",
        format_text_table(
            [
                "#samples",
                "compute MSE",
                "fwd comm MSE",
                "bwd comm MSE",
                "embedding cost (ms)",
            ],
            rows,
            title="Figure 8 (middle+right): cost-model accuracy and final "
            "sharding cost vs training-set size",
        ),
    )
    # More samples => more accurate compute model (allowing small noise,
    # compare the extremes).
    assert rows[-1][1] < rows[0][1]
    # Sharding quality saturates early: the 300-sample model is already
    # within 15% of the 3000-sample model.  (The paper saturates at
    # ~100 samples; our simulated cost surface has heavier tails, so
    # "sufficiently accurate" arrives at ~300 — still 300x below the
    # paper's 100K collection budget.)
    assert rows[2][4] < rows[-1][4] * 1.15
