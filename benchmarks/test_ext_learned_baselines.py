"""Extension benchmark: learned baselines beyond the paper's table.

Two methods from the paper's related-work/future-work discussion, both
built on the same pre-trained cost models as NeuroShard:

- **SurCo-surrogate** (Ferber et al., 2022; related work) — learns
  per-instance *linear* surrogate costs against the neural simulator and
  solves them with the greedy balancer.
- **OfflineRL** (Appendix H, strategy 3) — advantage-weighted regression
  on a log of heuristic plans; one-pass amortized sharding.

Compared against their natural anchors:

- Lookup-based greedy — SurCo's initialization / OfflineRL's best
  logged demonstrator family;
- NeuroShard — the full search.

Expected shape on 4 GPUs, max dim 64: lookup-greedy < SurCo <= NeuroShard
on cost; OfflineRL beats the mean heuristic and approaches lookup-greedy
while sharding in milliseconds (amortization); NeuroShard remains best.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    BENCH_TASKS,
    SEARCH_4GPU,
    once,
    record_result,
)
from repro.baselines import (
    GreedySharder,
    RandomSharder,
    SurrogateSharder,
)
from repro.config import TaskConfig
from repro.core import NeuroShard
from repro.data import generate_tasks
from repro.evaluation import evaluate_sharder, format_text_table
from repro.extensions import OfflineRLSharder

MAX_DIM = 64
NUM_TRAIN_TASKS = 10


def test_ext_learned_baselines(benchmark, pool856, cluster4, bundle4):
    cfg = TaskConfig(num_devices=4, max_dim=MAX_DIM, min_tables=10, max_tables=60)
    eval_tasks = generate_tasks(pool856, cfg, count=BENCH_TASKS, seed=303)
    train_tasks = generate_tasks(pool856, cfg, count=NUM_TRAIN_TASKS, seed=404)

    def run():
        offline = OfflineRLSharder(bundle4, seed=1)
        offline.fit_from_log(
            train_tasks,
            [
                GreedySharder("Size-based"),
                GreedySharder("Dim-based"),
                GreedySharder("Lookup-based"),
                GreedySharder("Size-lookup-based"),
                RandomSharder(seed=2),
            ],
            epochs=80,
        )
        methods = [
            GreedySharder("Lookup-based"),
            SurrogateSharder(bundle4, iterations=40, seed=1),
            offline,
            NeuroShard(bundle4, search=SEARCH_4GPU),
        ]
        rows = {}
        for method in methods:
            name = getattr(method, "name", "NeuroShard")
            rows[name] = evaluate_sharder(method, eval_tasks, cluster4, name=name)
        return rows

    rows = once(benchmark, run)

    headers = ["method", "mean cost (ms)", "success", "mean shard time (s)"]
    table_rows = [
        [
            name,
            ev.mean_cost_ms,
            f"{ev.num_success}/{ev.num_tasks}",
            ev.mean_sharding_time_s,
        ]
        for name, ev in rows.items()
    ]
    record_result(
        "ext_learned_baselines",
        format_text_table(
            headers,
            table_rows,
            title=(
                "Extension — learned baselines (4 GPUs, max dim "
                f"{MAX_DIM}, {BENCH_TASKS} tasks)"
            ),
        ),
    )

    lookup = rows["Lookup-based"]
    surco = rows["SurCo-surrogate"]
    neuro = rows["NeuroShard"]
    offline_ev = rows["OfflineRL"]
    # SurCo never loses to its own initialization when both scale.
    if lookup.scales and surco.scales:
        assert surco.mean_cost_ms <= lookup.mean_cost_ms * 1.02
    # NeuroShard remains the best method overall.
    finite = [
        ev.mean_cost_ms for ev in rows.values() if not np.isnan(ev.mean_cost_ms)
    ]
    assert neuro.mean_cost_ms <= min(finite) * 1.02
    # Amortization: the offline policy shards at least 5x faster than the
    # full search.
    assert (
        offline_ev.mean_sharding_time_s < neuro.mean_sharding_time_s / 5.0
    )
