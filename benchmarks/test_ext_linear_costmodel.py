"""Extension ablation: linear vs neural cost models (Section 4.2 claim).

The paper: *"An even simpler network (i.e., a linear one) may not work
due to the non-linearity of the costs."*  This bench quantifies that
claim end to end on 4 GPUs, max dim 128:

1. fit the strongest linear competitor (closed-form ridge on sum-pooled
   features) on the same micro-benchmark data the MLP trains on;
2. compare held-out test MSE and Kendall's tau;
3. swap the linear model into the bundle and run the *unmodified*
   NeuroShard search, comparing real sharding costs.

Expected shape: the linear model's tau trails the MLP's (~0.97), and the
sharding cost with linear cost modeling is measurably worse — the search
inherits every ranking mistake the cost model makes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from benchmarks.conftest import (
    BENCH_TASKS,
    SEARCH_4GPU,
    bench_collection,
    once,
    record_result,
)
from repro.config import TaskConfig
from repro.core import NeuroShard
from repro.costmodel import (
    collect_compute_data,
    fit_linear_compute_model,
    kendall_tau,
    mse,
)
from repro.data import generate_tasks
from repro.evaluation import evaluate_sharder, format_text_table

MAX_DIM = 128


def test_ext_linear_costmodel(benchmark, pool856, cluster4, bundle4):
    cfg = TaskConfig(num_devices=4, max_dim=MAX_DIM, min_tables=10, max_tables=60)
    tasks = generate_tasks(pool856, cfg, count=BENCH_TASKS, seed=505)

    def run():
        # Held-out accuracy comparison on freshly collected data.
        collection = dataclasses.replace(
            bench_collection(4), num_compute_samples=3000
        )
        data = collect_compute_data(
            cluster4, pool856, bundle4.featurizer, collection, seed=71
        )
        n = len(data.targets)
        split = int(0.8 * n)
        linear, _ = fit_linear_compute_model(
            dataclasses.replace(
                data,
                inputs=list(data.inputs[:split]),
                targets=np.asarray(data.targets[:split]),
            ),
            bundle4.featurizer.num_features,
        )
        test_inputs = list(data.inputs[split:])
        test_targets = np.asarray(data.targets[split:])
        linear_preds = linear.predict_many(test_inputs)
        mlp_preds = bundle4.compute.predict_many(test_inputs)
        accuracy = {
            "linear": (
                mse(linear_preds, test_targets),
                kendall_tau(linear_preds, test_targets),
            ),
            "mlp": (
                mse(mlp_preds, test_targets),
                kendall_tau(mlp_preds, test_targets),
            ),
        }

        # End-to-end: same search, swapped compute model.
        hybrid = dataclasses.replace(bundle4, compute=linear)
        evals = {
            "NeuroShard (linear compute model)": evaluate_sharder(
                NeuroShard(hybrid, search=SEARCH_4GPU),
                tasks,
                cluster4,
                name="linear",
            ),
            "NeuroShard (neural compute model)": evaluate_sharder(
                NeuroShard(bundle4, search=SEARCH_4GPU),
                tasks,
                cluster4,
                name="mlp",
            ),
        }
        return accuracy, evals

    accuracy, evals = once(benchmark, run)

    headers = ["cost model", "test MSE (ms^2)", "Kendall tau",
               "sharding cost (ms)", "success"]
    rows = [
        [
            "linear (ridge, sum-pooled)",
            accuracy["linear"][0],
            accuracy["linear"][1],
            evals["NeuroShard (linear compute model)"].mean_cost_ms,
            f"{evals['NeuroShard (linear compute model)'].num_success}"
            f"/{BENCH_TASKS}",
        ],
        [
            "neural (shared MLP + sum + head)",
            accuracy["mlp"][0],
            accuracy["mlp"][1],
            evals["NeuroShard (neural compute model)"].mean_cost_ms,
            f"{evals['NeuroShard (neural compute model)'].num_success}"
            f"/{BENCH_TASKS}",
        ],
    ]
    record_result(
        "ext_linear_costmodel",
        format_text_table(
            headers,
            rows,
            title=(
                "Extension — linear vs neural compute cost model "
                f"(4 GPUs, max dim {MAX_DIM}, {BENCH_TASKS} tasks)"
            ),
        ),
    )

    # The MLP must rank combinations better...
    assert accuracy["mlp"][1] > accuracy["linear"][1]
    # ...and achieve a lower test MSE...
    assert accuracy["mlp"][0] < accuracy["linear"][0]
    # ...and the search built on it must not lose end-to-end.
    lin_cost = evals["NeuroShard (linear compute model)"].mean_cost_ms
    mlp_cost = evals["NeuroShard (neural compute model)"].mean_cost_ms
    if not (np.isnan(lin_cost) or np.isnan(mlp_cost)):
        assert mlp_cost <= lin_cost * 1.02
