"""Table 1: the headline comparison.

Mean max-device embedding cost (ms) of every sharding method on 4 and 8
GPUs across maximum table dimensions {4, 8, 16, 32, 64, 128}, with "-"
where a method fails any task of a setting (no plan or out-of-memory).

Scaled down from the paper's 100 tasks per setting to
``REPRO_BENCH_TASKS`` (default 6); the shape to reproduce:

- NeuroShard is best (or tied) in every column and never fails;
- greedy/random/RL methods stop scaling as the max dimension grows
  (table-wise only => oversized tables kill them);
- TorchRec scales everywhere but trails NeuroShard;
- learned-cost methods beat heuristic costs at equal scalability.

An extra MILP row (RecShard-style, not in the paper's table) shows the
linear-cost formulation's limits.
"""

from __future__ import annotations

import math

from benchmarks.conftest import (
    BENCH_TASKS,
    SEARCH_4GPU,
    SEARCH_8GPU,
    load_or_pretrain_bundle,
    make_cluster,
    once,
    record_result,
)
from repro.baselines import (
    AutoShardSharder,
    DreamShardSharder,
    GreedySharder,
    MilpSharder,
    PlannerSharder,
    RandomSharder,
)
from repro.config import DIMENSION_GRID, TaskConfig
from repro.core import NeuroShard
from repro.data import generate_tasks
from repro.evaluation import (
    evaluate_sharder,
    format_text_table,
    improvement_percent,
    strongest_baseline,
)

RL_EPISODES = 12


def _run_column(pool, cluster, bundle, search, max_dim, seed):
    """One Table 1 column: all methods on one (devices, max_dim) cell."""
    lo, hi = (10, 60) if cluster.num_devices == 4 else (20, 120)
    cfg = TaskConfig(
        num_devices=cluster.num_devices,
        max_dim=max_dim,
        min_tables=lo,
        max_tables=hi,
    )
    tasks = generate_tasks(pool, cfg, count=BENCH_TASKS, seed=seed)
    methods = [
        RandomSharder(seed=seed),
        GreedySharder("Size-based"),
        GreedySharder("Dim-based"),
        GreedySharder("Lookup-based"),
        GreedySharder("Size-lookup-based"),
        AutoShardSharder(bundle, episodes=RL_EPISODES, seed=seed),
        DreamShardSharder(bundle, episodes=RL_EPISODES, seed=seed),
        PlannerSharder(batch_size=cluster.batch_size),
        MilpSharder(time_limit_s=5.0),
        NeuroShard(bundle, search=search),
    ]
    column = {}
    for method in methods:
        name = getattr(method, "name", "NeuroShard")
        column[name] = evaluate_sharder(method, tasks, cluster, name=name)
    return column


METHOD_ORDER = [
    "Random",
    "Size-based",
    "Dim-based",
    "Lookup-based",
    "Size-lookup-based",
    "AutoShard",
    "DreamShard",
    "TorchRec",
    "MILP",
    "NeuroShard",
]


def _render(results, num_devices):
    headers = ["method"] + [f"dim {d}" for d in DIMENSION_GRID]
    rows = []
    for name in METHOD_ORDER:
        rows.append(
            [name] + [results[d][name].mean_cost_ms for d in DIMENSION_GRID]
        )
    improvement_row = ["improvement vs best baseline"]
    for d in DIMENSION_GRID:
        _, best = strongest_baseline(results[d])
        improvement_row.append(
            improvement_percent(best, results[d]["NeuroShard"].mean_cost_ms)
        )
    rows.append(improvement_row)
    return format_text_table(
        headers,
        rows,
        title=(
            f"Table 1 ({num_devices} GPUs): mean max-device embedding cost "
            f"(ms) over {BENCH_TASKS} tasks per setting ('-' = cannot scale)"
        ),
    )


def _check_shape(results):
    for d in DIMENSION_GRID:
        column = results[d]
        ns = column["NeuroShard"]
        # NeuroShard always scales.
        assert ns.scales, f"NeuroShard failed a dim-{d} task"
        # NeuroShard is within a whisker of the best scaling method on
        # all but the smallest dimension.  At dim 4 nothing can be
        # column-split and every cost is tiny, so the lookup heuristic is
        # near-exact on the simulated kernel while the learned model
        # carries a few percent of relative error — a documented
        # deviation (see EXPERIMENTS.md); the paper's own margin there
        # is only +0.5%.
        _, best = strongest_baseline(column)
        if not math.isnan(best):
            slack = 1.30 if d == 4 else 1.05
            assert ns.mean_cost_ms <= best * slack
    # Methods without column sharding must fail at max dimension 128
    # (the paper's "-" entries): at least the random baseline does.
    assert not results[128]["Random"].scales
    # NeuroShard strictly wins somewhere on the harder settings.
    harder = [64, 128]
    wins = 0
    for d in harder:
        _, best = strongest_baseline(results[d])
        if not math.isnan(best) and results[d]["NeuroShard"].mean_cost_ms < best:
            wins += 1
    assert wins >= 1


def test_table1_4gpus(benchmark, pool856, cluster4, bundle4):
    def run():
        return {
            d: _run_column(pool856, cluster4, bundle4, SEARCH_4GPU, d, seed=100 + d)
            for d in DIMENSION_GRID
        }

    results = once(benchmark, run)
    record_result("table1_4gpus", _render(results, 4))
    _check_shape(results)


def test_table1_8gpus(benchmark, pool856, cluster8, bundle8):
    def run():
        return {
            d: _run_column(pool856, cluster8, bundle8, SEARCH_8GPU, d, seed=200 + d)
            for d in DIMENSION_GRID
        }

    results = once(benchmark, run)
    record_result("table1_8gpus", _render(results, 8))
    _check_shape(results)
