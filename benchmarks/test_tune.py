"""Budget-aware auto-tuning: the committed tuned-vs-default frontier.

Two registered regimes are tuned over a small fixed knob grid with an
effectively unlimited budget (every candidate always evaluates, so the
candidate set never depends on wall clocks) and the resulting frontier
is committed to ``results/tune_frontier.txt``.  Every number in the
artifact comes from the cost-model simulator — knobs, the deterministic
work proxy, and replay serving costs — so it is bit-reproducible.

Gates:

- the chosen config is never worse than the pinned replay default
  (the default is always evaluated first, so tuned is non-dominated at
  an equal wall-clock budget by construction — the gate pins that the
  machinery preserves it);
- a warm-cache rerun evaluates nothing and completes in under 10% of
  the cold run's wall-clock.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import once, record_result
from repro.evaluation.reporting import format_text_table
from repro.tuning import tune_scenario

TUNE_SEED = 2023
TUNE_TABLES = 16
REGIMES = ("flash_crowd", "table_churn")

#: Small fixed grid whose cross product contains the pinned replay
#: default (top_n=4, max_steps=6, unbudgeted reshard), so the committed
#: table compares like with like.  The budget below never binds, so the
#: committed frontier is a pure function of the simulator — no wall
#: clock ever shapes it.
TUNE_SPACE = {
    "top_n": (2, 4, 8),
    "beam_width": (2,),
    "max_steps": (6, 10),
    "grid_points": (5,),
    "grid_end_factor": (1.5,),
    "migration_lambda": (1e-4,),
    "migration_budget_ms": (None,),
}
TUNE_BUDGET_S = 3600.0

#: Frontier rows accumulated by the parametrized runs (definition
#: order: the artifact test below runs after them in one session).
_PROFILES: dict[str, object] = {}


def _tune(pool856, bundle4, name: str, cache_dir):
    return tune_scenario(
        name,
        bundle4,
        pool856,
        budget_s=TUNE_BUDGET_S,
        num_tables=TUNE_TABLES,
        seed=TUNE_SEED,
        search_space=TUNE_SPACE,
        cache_dir=cache_dir,
    )


@pytest.mark.parametrize("name", REGIMES)
def test_tune_regime(benchmark, pool856, bundle4, tmp_path_factory, name):
    cache_dir = tmp_path_factory.mktemp(f"tune-cache-{name}")
    started = time.perf_counter()
    profile = once(
        benchmark, lambda: _tune(pool856, bundle4, name, cache_dir)
    )
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = _tune(pool856, bundle4, name, cache_dir)
    warm_s = time.perf_counter() - started

    # Every candidate evaluated: the frontier is budget-independent.
    assert profile.skipped == 0
    assert profile.cache_hits == 0
    # Tuned is non-dominated vs the pinned default at equal budget.
    assert profile.chosen.feasible
    assert profile.chosen.cost_ms <= profile.default.cost_ms
    # Warm rerun: all disk, no evaluation, <10% of the cold wall-clock.
    assert warm.cache_hits == warm.evaluated == profile.evaluated
    assert warm_s < 0.10 * cold_s, (
        f"warm tune rerun took {warm_s:.2f}s vs cold {cold_s:.2f}s"
    )
    # ...and the warm outcome is the cold outcome.
    assert warm.chosen.search == profile.chosen.search
    assert warm.chosen.reshard == profile.chosen.reshard
    assert warm.chosen.cost_ms == profile.chosen.cost_ms

    _PROFILES[name] = profile


def test_tune_frontier_artifact():
    """The committed artifact: one frontier block per tuned regime."""
    assert sorted(_PROFILES) == sorted(REGIMES), (
        "run the full module: the artifact aggregates the tuning runs"
    )
    blocks = []
    for name in REGIMES:
        profile = _PROFILES[name]
        rows = []
        listed = list(profile.frontier)
        if profile.default not in listed:
            listed.append(profile.default)
        for candidate in listed:
            marks = []
            if candidate.search == profile.chosen.search and (
                candidate.reshard == profile.chosen.reshard
            ):
                marks.append("chosen")
            if candidate.search == profile.default.search and (
                candidate.reshard == profile.default.reshard
            ):
                marks.append("default")
            budget = candidate.reshard.migration_budget_ms
            rows.append([
                candidate.search.top_n,
                candidate.search.beam_width,
                candidate.search.max_steps,
                candidate.search.grid_points,
                f"{candidate.search.grid_end_factor:g}",
                f"{candidate.reshard.migration_lambda:g}",
                "-" if budget is None else f"{budget:g}",
                candidate.work,
                f"{candidate.cost_ms:.3f}",
                f"{candidate.peak_cost_ms:.3f}",
                " ".join(marks) or "-",
            ])
        blocks.append(
            format_text_table(
                ["N", "K", "L", "M", "end", "lambda", "budget_ms", "work",
                 "cost_ms", "peak_ms", "mark"],
                rows,
                title=(
                    f"tuned vs default — {name} "
                    f"(4 GPUs, {TUNE_TABLES} tables, seed {TUNE_SEED}, "
                    f"{profile.evaluated} configs evaluated)"
                ),
            )
        )
    record_result("tune_frontier", "\n\n".join(blocks))
