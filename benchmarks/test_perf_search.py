"""Search-kernel performance benchmark: optimized vs. frozen reference.

Measures the end-to-end beam search (paper configuration N=10, K=3,
L=10, M=11) at Table-1 scale — the 856-table pool, 4 GPUs, 10-60 tables
per task, dimensions up to 128 — twice per task:

- the **frozen pre-optimization reference**
  (:func:`repro.core.reference.reference_beam_search`), which rebuilds
  per-device table lists, re-sorts ``table_set_key`` multisets and
  re-featurizes on every candidate evaluation;
- the **optimized kernel** (:func:`repro.core.beam_search.beam_search`)
  with incremental per-device state, plan-multiset memoization and the
  vectorized batch-scoring kernel: whole beam frontiers run their grid
  passes in lockstep and score every candidate of a step in one flat
  ``predict_rows`` call (plus one batched plan-cost finalization).

Both runs use fresh caches, so the measured ratio is the end-to-end
speedup of the rewrite, not cache warm-up.  Results are required to be
**byte-identical** (feasibility, bit-equal cost, same column plan and
assignment) — the speedup must come purely from eliminating redundant
work.

Methodology / output: the run appends to ``benchmarks/BENCH_search.json``
a record with the wall times, the aggregate speedup, throughput in
inner-loop evaluations per second (requested evaluations / optimized
wall time), and the optimized search's work counters.  The file is
committed, so the perf trajectory is tracked in git from this PR onward;
the test fails when throughput regresses more than 2x against the
**median** of the committed runs measured with the same configuration on
the same OS family and architecture (the median absorbs run-to-run
machine noise — single fast outliers in the log must not ratchet the
floor upward; matching the full platform string would disarm the gate
on every kernel upgrade; and where no committed run matches at all, the
machine-independent >=12x speedup-ratio gate still applies).

Scale knobs (environment):

- ``REPRO_PERF_TASKS``  — tasks measured (default 2).
- ``REPRO_PERF_MAX_DIM`` — task max dimension (default 128).
- ``REPRO_PERF_MIN_SPEEDUP`` — required aggregate speedup (default 12.0;
  the batched kernel lands around 15x on the committed runs).
- ``REPRO_PERF_REGRESSION_FACTOR`` — tolerated throughput regression vs.
  the committed median (default 2.0; raise on hardware much slower than
  the machines in the committed log).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time

import pytest

from benchmarks.conftest import BENCH_DIR, SEARCH_4GPU, record_result
from repro.config import TaskConfig
from repro.core import CostCache, NeuroShardSimulator, beam_search
from repro.core.reference import reference_beam_search
from repro.data import generate_tasks
from repro.evaluation import format_text_table
from repro.hardware.memory import MemoryModel
from repro.perf import SearchProfile

pytestmark = pytest.mark.perf

BENCH_JSON = BENCH_DIR / "BENCH_search.json"

PERF_TASKS = int(os.environ.get("REPRO_PERF_TASKS", "2"))
PERF_MAX_DIM = int(os.environ.get("REPRO_PERF_MAX_DIM", "128"))
PERF_MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_MIN_SPEEDUP", "12.0"))
PERF_SEED = 777

#: Maximum tolerated throughput regression vs. the committed baseline
#: median (override with ``REPRO_PERF_REGRESSION_FACTOR``, e.g. for CI
#: runners much slower than the machines in the committed log).
REGRESSION_FACTOR = float(
    os.environ.get("REPRO_PERF_REGRESSION_FACTOR", "2.0")
)


def _plans_identical(ref, opt) -> bool:
    if (ref.feasible, ref.cost_ms, ref.evaluations) != (
        opt.feasible, opt.cost_ms, opt.evaluations
    ):
        return False
    if (ref.plan is None) != (opt.plan is None):
        return False
    if ref.plan is None:
        return True
    return (
        ref.plan.column_plan == opt.plan.column_plan
        and ref.plan.assignment == opt.plan.assignment
    )


def test_perf_search_speedup(pool856, bundle4):
    config = {
        "tasks": PERF_TASKS,
        "max_dim": PERF_MAX_DIM,
        "seed": PERF_SEED,
        "num_devices": 4,
        "search": "paper N=10 K=3 L=10 M=11",
    }
    task_cfg = TaskConfig(
        num_devices=4, max_dim=PERF_MAX_DIM, min_tables=10, max_tables=60
    )
    tasks = generate_tasks(pool856, task_cfg, count=PERF_TASKS, seed=PERF_SEED)
    memory_models = [MemoryModel(t.memory_bytes) for t in tasks]

    rows = []
    ref_total = opt_total = 0.0
    evaluations_total = 0
    aggregate = SearchProfile()
    for task, memory in zip(tasks, memory_models):
        simulator = NeuroShardSimulator(bundle4, CostCache())
        started = time.perf_counter()
        ref = reference_beam_search(
            list(task.tables), 4, simulator, memory, SEARCH_4GPU
        )
        ref_s = time.perf_counter() - started

        profile = SearchProfile()
        simulator = NeuroShardSimulator(bundle4, CostCache(), profile=profile)
        started = time.perf_counter()
        opt = beam_search(
            list(task.tables), 4, simulator, memory, SEARCH_4GPU,
            profile=profile,
        )
        opt_s = time.perf_counter() - started

        # The whole point: faster, with byte-identical plans and costs.
        assert _plans_identical(ref, opt), (
            f"optimized search diverged on task {task.task_id}: "
            f"ref=({ref.feasible}, {ref.cost_ms}) "
            f"opt=({opt.feasible}, {opt.cost_ms})"
        )

        ref_total += ref_s
        opt_total += opt_s
        evaluations_total += opt.evaluations
        aggregate.merge(profile)
        rows.append(
            [
                task.task_id,
                task.num_tables,
                opt.evaluations,
                ref_s,
                opt_s,
                ref_s / opt_s,
            ]
        )

    speedup = ref_total / opt_total
    evals_per_sec = evaluations_total / opt_total
    record_result(
        "perf_search",
        format_text_table(
            ["task", "tables", "evaluations", "reference (s)",
             "optimized (s)", "speedup"],
            rows,
            title=(
                f"Incremental search kernel vs. frozen reference "
                f"({PERF_TASKS} Table-1-scale tasks, max dim "
                f"{PERF_MAX_DIM}): {speedup:.1f}x end-to-end, "
                f"{evals_per_sec:.1f} evaluations/s"
            ),
        ),
    )

    baseline_eps = None
    baseline_runs = 0
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
        # Throughput is machine-dependent: compare only against runs
        # measured with the same configuration on the same OS family and
        # architecture (the machine-independent >=12x speedup-ratio gate
        # below applies everywhere).  Matching on the full
        # platform.platform() string would embed the kernel build and
        # silently disarm the gate on every kernel/runner-image upgrade.
        # Use the median of the matching runs, not the most recent one:
        # same-machine throughput varies well over 1.5x run to run, and
        # a single fast outlier as the baseline would ratchet the floor
        # up until healthy runs fail.
        system, machine = platform.system(), platform.machine()
        matching = [
            entry["evaluations_per_sec"]
            for entry in history
            if entry.get("config") == config
            and (
                entry_platform := entry.get("machine", {}).get(
                    "platform", ""
                )
            ).startswith(system)
            and machine in entry_platform
        ]
        if matching:
            baseline_eps = statistics.median(matching)
            baseline_runs = len(matching)
    else:
        history = []

    entry = {
        "config": config,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "reference_wall_s": round(ref_total, 4),
        "optimized_wall_s": round(opt_total, 4),
        "speedup": round(speedup, 3),
        "evaluations": evaluations_total,
        "evaluations_per_sec": round(evals_per_sec, 3),
        "optimized_counters": aggregate.counters,
        "per_task": [
            {
                "task_id": r[0],
                "tables": r[1],
                "evaluations": r[2],
                "reference_s": round(r[3], 4),
                "optimized_s": round(r[4], 4),
                "speedup": round(r[5], 3),
            }
            for r in rows
        ],
    }
    assert speedup >= PERF_MIN_SPEEDUP, (
        f"end-to-end speedup {speedup:.2f}x fell below the required "
        f"{PERF_MIN_SPEEDUP}x"
    )
    if baseline_eps is not None:
        floor = baseline_eps / REGRESSION_FACTOR
        assert evals_per_sec >= floor, (
            f"evaluations/sec regressed more than {REGRESSION_FACTOR}x: "
            f"{evals_per_sec:.1f}/s vs the median {baseline_eps:.1f}/s "
            f"of {baseline_runs} committed same-config/platform runs"
        )

    # Record the run only after it passed both gates: a failing (regressed)
    # run must not enter the history, or repeated failing reruns would drag
    # the median floor down until the regression legitimizes itself.
    history.append(entry)
    history = history[-50:]  # bound the trajectory file
    BENCH_JSON.write_text(json.dumps(history, indent=1) + "\n")
