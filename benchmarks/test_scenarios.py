"""Scenario atlas: every registered regime replayed through the service.

Each registered scenario (:mod:`repro.scenarios.catalog`) is generated at
a fixed seed, replayed end-to-end through the plan-lifecycle service on
the cached 4-GPU bundle, and its per-step report committed to
``results/scenario_<name>.txt`` — plus an aggregate atlas summary in
``results/scenario_atlas.txt``.  Everything in a report comes from the
cost-model simulator (no wall clocks), so the committed artifacts are
bit-reproducible: a diff in one means the search, the reshard objective,
or the cost models changed.

The migration budget is deliberately tight (150 ms at this scale, about
half a typical full-search migration) so the artifacts show the budget
*binding* — the regime the incremental reshard exists for.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import once, record_result
from repro.api import ReshardConfig, ShardingEngine
from repro.config import ClusterConfig
from repro.evaluation import REPLAY_SEARCH_CONFIG, replay_workload_trace
from repro.evaluation.reporting import format_text_table
from repro.hardware import SimulatedCluster
from repro.scenarios import (
    available_scenarios,
    format_scenario_report,
    make_trace,
)

#: Replay scale: 4 GPUs, a deliberately tight 2 GiB budget (column
#: sharding engages), 16-table workloads, the scenario's default steps.
SCENARIO_SEED = 2023
SCENARIO_MEMORY_BYTES = 2 * 1024**3
SCENARIO_TABLES = 16

#: Tight migration budget (ms) — binds on roughly the scale a full
#: re-search costs at this workload size.
BUDGET_MS = 150.0

#: Shared with the CLI's `scenario` verbs (REPLAY_SEARCH_CONFIG), so a
#: CLI replay byte-reproduces these artifacts when its other inputs
#: match too: this module's cached 4-GPU bundle plus
#: `--pool-seed 2023 --seed 2023 --tables 16 --budget-ms 150
#: --refine-steps 16` (and the default 2 GiB memory).
SCENARIO_SEARCH = REPLAY_SEARCH_CONFIG

#: Aggregate rows accumulated by the parametrized replays (definition
#: order: the summary test below runs after them in the same session).
_SUMMARIES: dict[str, dict] = {}


def _scenario_engine(bundle4) -> ShardingEngine:
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=4, memory_bytes=SCENARIO_MEMORY_BYTES)
    )
    return ShardingEngine(cluster, bundle4, search=SCENARIO_SEARCH)


def _replay(pool856, bundle4, name: str):
    trace = make_trace(
        name,
        pool856,
        num_devices=4,
        memory_bytes=SCENARIO_MEMORY_BYTES,
        num_tables=SCENARIO_TABLES,
        seed=SCENARIO_SEED,
    )
    report = replay_workload_trace(
        trace,
        _scenario_engine(bundle4),
        reshard_config=ReshardConfig(
            migration_budget_ms=BUDGET_MS,
            migration_lambda=1e-4,
            max_refine_steps=16,
        ),
    )
    return trace, report


@pytest.mark.parametrize("name", sorted(available_scenarios()))
def test_scenario_replay(benchmark, pool856, bundle4, name):
    """One committed artifact per scenario, plus replay sanity gates."""
    trace, report = once(benchmark, lambda: _replay(pool856, bundle4, name))
    record_result(f"scenario_{name}", format_scenario_report(report))
    _SUMMARIES[name] = report.summary()

    # The report covers the whole trace: one row per step plus row 0.
    assert report.num_steps == trace.num_steps + 1
    # The initial workload must always be plannable...
    assert report.steps[0].feasible
    assert math.isfinite(report.steps[0].serving_cost_ms)
    # ...and every scenario exercises the reshard path at least once
    # without collapsing into wall-to-wall infeasibility.
    assert report.num_reshard_steps >= 1
    assert report.infeasible_rate < 1.0
    # Serving costs are finite wherever a plan is applied.
    assert all(
        math.isfinite(s.serving_cost_ms) for s in report.steps if s.feasible
    )
    # Migration accounting is internally consistent.
    assert report.total_moved_mb == pytest.approx(
        sum(s.moved_mb for s in report.steps)
    )


def test_scenario_atlas_summary():
    """The atlas summary artifact: every scenario, one aggregate row."""
    names = sorted(available_scenarios())
    assert sorted(_SUMMARIES) == names, (
        "run the full module: the summary aggregates the replay tests"
    )
    # The acceptance floor: the atlas ships at least 8 regimes.
    assert len(names) >= 8
    rows = []
    for name in names:
        summary = _SUMMARIES[name]
        rows.append([
            name,
            summary["steps"],
            summary["reshards"],
            f"{summary['infeasible_rate']:.2f}",
            f"{summary['budget_bound_rate']:.2f}",
            f"{summary['total_moved_mb']:.1f}",
            f"{summary['total_scratch_moved_mb']:.1f}",
            f"{summary['mean_serving_cost_ms']:.3f}",
            f"{summary['peak_serving_cost_ms']:.3f}",
        ])
    record_result(
        "scenario_atlas",
        format_text_table(
            ["scenario", "steps", "reshards", "infeasible", "budget-bound",
             "moved (MB)", "scratch (MB)", "mean cost (ms)", "peak cost (ms)"],
            rows,
            title=(
                f"scenario atlas on 4 GPUs (seed {SCENARIO_SEED}, "
                f"{SCENARIO_TABLES} tables, budget {BUDGET_MS:.0f} ms): "
                "incremental reshard vs re-shard-from-scratch"
            ),
        ),
    )
