"""Tests for repro.hardware.kernel — including the paper's Observations
1 and 2, which the whole algorithm design rests on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthesize_table_pool
from repro.hardware import DeviceSpec, EmbeddingKernelModel

BATCH = 65536


@pytest.fixture(scope="module")
def kernel() -> EmbeddingKernelModel:
    return EmbeddingKernelModel()


@pytest.fixture(scope="module")
def tables():
    return synthesize_table_pool(num_tables=40, seed=3)


class TestBasics:
    def test_empty_set_costs_nothing(self, kernel):
        assert kernel.total_ms([], BATCH) == 0.0

    def test_costs_positive(self, kernel, tables):
        assert kernel.total_ms(tables[:5], BATCH) > 0

    def test_total_is_forward_plus_backward(self, kernel, tables):
        subset = tables[:4]
        total = kernel.total_ms(subset, BATCH, noisy=False)
        fwd = kernel.forward_ms(subset, BATCH, noisy=False)
        bwd = kernel.backward_ms(subset, BATCH, noisy=False)
        assert total == pytest.approx(fwd + bwd)

    def test_backward_costs_more_than_forward(self, kernel, tables):
        subset = tables[:4]
        assert kernel.backward_ms(subset, BATCH, noisy=False) > kernel.forward_ms(
            subset, BATCH, noisy=False
        )

    def test_rejects_bad_batch(self, kernel, tables):
        with pytest.raises(ValueError):
            kernel.total_ms(tables[:1], 0)

    def test_measurement_deterministic(self, kernel, tables):
        a = kernel.total_ms(tables[:6], BATCH)
        b = kernel.total_ms(tables[:6], BATCH)
        assert a == b

    def test_noise_is_small_and_seeded(self, tables):
        base = EmbeddingKernelModel(noise_seed=0)
        other = EmbeddingKernelModel(noise_seed=1)
        clean = base.total_ms(tables[:6], BATCH, noisy=False)
        noisy0 = base.total_ms(tables[:6], BATCH)
        noisy1 = other.total_ms(tables[:6], BATCH)
        assert noisy0 != noisy1  # different machines measure differently
        assert abs(noisy0 - clean) / clean < 0.1

    def test_order_invariance(self, kernel, tables):
        subset = tables[:6]
        shuffled = list(reversed(subset))
        assert kernel.total_ms(subset, BATCH) == pytest.approx(
            kernel.total_ms(shuffled, BATCH)
        )


class TestCostStructure:
    def test_cost_increases_with_dimension(self, kernel, tables):
        t = tables[0]
        costs = [
            kernel.single_table_ms(t.with_dim(d), BATCH, noisy=False)
            for d in (4, 8, 16, 32, 64, 128)
        ]
        assert costs == sorted(costs)

    def test_cost_increases_with_pooling(self, kernel, tables):
        from dataclasses import replace

        t = tables[0]
        low = kernel.single_table_ms(replace(t, pooling_factor=2.0), BATCH, noisy=False)
        high = kernel.single_table_ms(
            replace(t, pooling_factor=50.0), BATCH, noisy=False
        )
        assert high > low

    def test_skew_reduces_cost(self, kernel, tables):
        """Hot (high-zipf) tables cache better and run faster."""
        from dataclasses import replace

        t = replace(tables[0], hash_size=10_000_000, pooling_factor=20.0)
        mild = kernel.single_table_ms(replace(t, zipf_alpha=1.0), BATCH, noisy=False)
        heavy = kernel.single_table_ms(replace(t, zipf_alpha=2.2), BATCH, noisy=False)
        assert heavy < mild

    def test_fusion_speedup_monotone(self, kernel):
        speedups = [kernel.fusion_speedup(t) for t in range(1, 20)]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] <= kernel.spec.fusion_max_speedup


class TestObservation1:
    """Column-halving a table yields shards each costing more than half
    the parent (paper Figure 3 left)."""

    @pytest.mark.parametrize("dim", [128, 64, 32, 16, 8])
    def test_half_dim_costs_more_than_half(self, kernel, tables, dim):
        for t in tables[:8]:
            parent = kernel.single_table_ms(t.with_dim(dim), BATCH, noisy=False)
            shard = kernel.single_table_ms(t.with_dim(dim // 2), BATCH, noisy=False)
            assert shard > parent / 2

    def test_splitting_increases_overall_cost(self, kernel, tables):
        """Running both half shards costs more than the parent."""
        t = tables[1].with_dim(64)
        a, b = t.halved()
        parent = kernel.total_ms([t], BATCH, noisy=False)
        split = kernel.total_ms([a, b], BATCH, noisy=False)
        assert split > parent


class TestObservation2:
    """Multi-table cost is non-linear and sub-additive in single-table
    costs (paper Figure 3 right)."""

    def test_fused_cheaper_than_sum_of_singles(self, kernel, tables):
        rng = np.random.default_rng(0)
        for _ in range(5):
            idx = rng.choice(len(tables), size=10, replace=False)
            subset = [tables[i] for i in idx]
            fused = kernel.total_ms(subset, BATCH, noisy=False)
            summed = kernel.sum_of_single_table_ms(subset, BATCH, noisy=False)
            assert fused < summed

    def test_relationship_is_nonlinear(self, kernel, tables):
        """The fused/summed ratio varies across subsets — a single linear
        factor cannot explain multi-table costs."""
        rng = np.random.default_rng(1)
        ratios = []
        for size in (2, 5, 10, 15):
            idx = rng.choice(len(tables), size=size, replace=False)
            subset = [tables[i] for i in idx]
            fused = kernel.total_ms(subset, BATCH, noisy=False)
            summed = kernel.sum_of_single_table_ms(subset, BATCH, noisy=False)
            ratios.append(fused / summed)
        assert max(ratios) - min(ratios) > 0.05


class TestDeviceSpecValidation:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            DeviceSpec(gather_bandwidth_bytes_per_ms=0)

    def test_rejects_fusion_below_one(self):
        with pytest.raises(ValueError):
            DeviceSpec(fusion_max_speedup=0.5)

    def test_rejects_bad_straggler_weight(self):
        with pytest.raises(ValueError):
            DeviceSpec(straggler_weight=1.5)


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_fused_never_exceeds_sum_of_singles(size, seed):
    tables = synthesize_table_pool(num_tables=15, seed=2)
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(tables), size=size, replace=False)
    subset = [tables[i] for i in idx]
    kernel = EmbeddingKernelModel()
    fused = kernel.total_ms(subset, BATCH, noisy=False)
    summed = kernel.sum_of_single_table_ms(subset, BATCH, noisy=False)
    assert fused <= summed + 1e-9
