"""Knob validation round-trips at every config entry point.

Out-of-range search/reshard knobs must fail loudly — with the
``__post_init__`` message — no matter which surface builds the config
from a dict: the dataclass constructors, ``SearchConfig.from_dict`` /
``coerce``, the strategy factory (``make_sharder(..., search={...})``),
the engine constructor, per-request engine options, the plan-lifecycle
service, the HTTP plan endpoint, tuned-profile payloads, and the CLI's
``--tune-arg`` grids.  The historical bypass: strategy factories did
``search or SearchConfig(**kwargs)``, so a provided *dict* skipped
validation entirely.

Also pins the shared ``KEY=VALUE`` coercion table
(:func:`repro.utils.parse_key_value_args`) used by
``simulate --policy-arg`` and ``tune --tune-arg`` — the old ad-hoc
parser kept ``True``/``False`` as truthy strings.
"""

import dataclasses

import pytest

from repro.api import ReshardConfig, ShardingEngine, ShardingRequest
from repro.api.strategies import make_sharder
from repro.config import SearchConfig
from repro.utils import coerce_option_value, parse_key_value_args

BAD_KNOBS = [
    ({"top_n": 0}, "top_n must be >= 1, got 0"),
    ({"beam_width": 0}, "beam_width must be >= 1, got 0"),
    ({"max_steps": -1}, "max_steps must be >= 0, got -1"),
    ({"grid_points": 0}, "grid_points must be >= 1, got 0"),
    ({"grid_end_factor": 0.5}, "grid_end_factor must be >= 1.0, got 0.5"),
]
_IDS = [next(iter(knobs)) for knobs, _ in BAD_KNOBS]


class TestConstructorSurfaces:
    @pytest.mark.parametrize("knobs, message", BAD_KNOBS, ids=_IDS)
    def test_from_dict_validates(self, knobs, message):
        with pytest.raises(ValueError, match=message):
            SearchConfig.from_dict(knobs)

    def test_from_dict_rejects_unknown_knobs(self):
        with pytest.raises(ValueError, match="unknown SearchConfig knobs"):
            SearchConfig.from_dict({"top_k": 5})

    def test_round_trip_is_identity(self):
        config = SearchConfig(top_n=7, beam_width=2, grid_end_factor=2.0)
        assert SearchConfig.from_dict(config.to_dict()) == config

    def test_coerce_passthrough_and_type_error(self):
        config = SearchConfig()
        assert SearchConfig.coerce(config) is config
        assert SearchConfig.coerce({"top_n": 3}).top_n == 3
        with pytest.raises(TypeError, match="search must be a SearchConfig"):
            SearchConfig.coerce("top_n=3")

    @pytest.mark.parametrize("knobs, message", BAD_KNOBS, ids=_IDS)
    def test_replace_revalidates(self, knobs, message):
        with pytest.raises(ValueError, match=message):
            dataclasses.replace(SearchConfig(), **knobs)

    def test_reshard_config_from_dict_validates(self):
        with pytest.raises(ValueError,
                           match="migration_lambda must be >= 0"):
            ReshardConfig.from_dict({"migration_lambda": -0.1})
        with pytest.raises(ValueError,
                           match="migration_budget_ms must be >= 0"):
            ReshardConfig.from_dict({"migration_budget_ms": -1.0})


class TestFactoryAndEngineSurfaces:
    @pytest.mark.parametrize("strategy", ["beam", "greedy_grid"])
    @pytest.mark.parametrize("knobs, message", BAD_KNOBS, ids=_IDS)
    def test_make_sharder_validates_dict_search(
        self, cluster2, tiny_bundle, strategy, knobs, message
    ):
        """The historical bypass: a dict reached the sharder unvalidated."""
        with pytest.raises(ValueError, match=message):
            make_sharder(
                strategy, cluster=cluster2, bundle=tiny_bundle, search=knobs
            )

    def test_engine_constructor_validates_dict_search(
        self, cluster2, tiny_bundle
    ):
        with pytest.raises(ValueError, match="grid_points must be >= 1"):
            ShardingEngine(cluster2, tiny_bundle, search={"grid_points": 0})

    def test_engine_constructor_coerces_valid_dicts(
        self, cluster2, tiny_bundle
    ):
        engine = ShardingEngine(cluster2, tiny_bundle, search={"top_n": 3})
        assert engine.search == SearchConfig(top_n=3)

    def test_request_options_error_is_contained_and_exact(
        self, cluster2, tiny_bundle, tasks2
    ):
        """The serving boundary: a bad per-request config is an error
        *response* carrying the exact message, not a crash."""
        engine = ShardingEngine(cluster2, tiny_bundle)
        response = engine.shard(
            ShardingRequest(
                task=tasks2[0], strategy="beam",
                options={"search": {"top_n": 0}},
            )
        )
        assert not response.feasible
        assert "top_n must be >= 1, got 0" in response.error

    def test_request_options_unknown_knob_is_contained(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(cluster2, tiny_bundle)
        response = engine.shard(
            ShardingRequest(
                task=tasks2[0], strategy="beam",
                options={"search": {"top_k": 5}},
            )
        )
        assert not response.feasible
        assert "unknown SearchConfig knobs" in response.error


class TestServiceAndHTTPSurfaces:
    def test_service_plan_options_record_infeasible(
        self, cluster2, tiny_bundle, tasks2
    ):
        from repro.api import ShardingService

        service = ShardingService()
        service.create_deployment(
            "prod", ShardingEngine(cluster2, tiny_bundle),
            tables=tasks2[0].tables,
        )
        record = service.plan(
            "prod", options={"search": {"beam_width": 0}}
        )
        assert not record.feasible

    def test_http_plan_with_bad_knob_records_infeasible(
        self, cluster2, tiny_bundle, tasks2
    ):
        import json as _json
        import urllib.request

        from repro.api import ShardingHTTPServer, ShardingService

        engine = ShardingEngine(cluster2, tiny_bundle)
        service = ShardingService()
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        server = ShardingHTTPServer(
            service, engine, port=0, max_batch=2, batch_wait_s=0.01
        )
        server.start()
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/v1/deployments/prod/plan",
                data=_json.dumps(
                    {"options": {"search": {"grid_points": 0}}}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as resp:
                payload = _json.loads(resp.read())
        finally:
            server.close()
        assert payload["feasible"] is False

    def test_tuned_profile_payload_validates_knobs(self):
        from repro.tuning import TunedCandidate

        payload = TunedCandidate(
            search=SearchConfig(), reshard=ReshardConfig(),
            cost_ms=1.0, peak_cost_ms=1.0,
        ).to_dict()
        payload["search"]["max_steps"] = -1
        with pytest.raises(ValueError, match="max_steps must be >= 0"):
            TunedCandidate.from_dict(payload)


class TestCLISurface:
    def test_tune_arg_out_of_range_value_exits_1(
        self, tmp_path, tiny_bundle, capsys
    ):
        from repro.cli import main

        bundle_dir = tmp_path / "bundle"
        tiny_bundle.save(bundle_dir)
        code = main([
            "tune", "run", "flash_crowd", str(bundle_dir),
            "--tune-arg", "top_n=0",
            "--profiles", str(tmp_path / "profiles"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "top_n must be >= 1, got 0" in captured.err

    def test_tune_arg_unknown_knob_exits_1(
        self, tmp_path, tiny_bundle, capsys
    ):
        from repro.cli import main

        bundle_dir = tmp_path / "bundle"
        tiny_bundle.save(bundle_dir)
        code = main([
            "tune", "run", "flash_crowd", str(bundle_dir),
            "--tune-arg", "top_k=3",
            "--profiles", str(tmp_path / "profiles"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown tuning knobs" in captured.err

    def test_malformed_pair_exits_1(self, tmp_path, tiny_bundle, capsys):
        from repro.cli import main

        bundle_dir = tmp_path / "bundle"
        tiny_bundle.save(bundle_dir)
        code = main([
            "tune", "run", "flash_crowd", str(bundle_dir),
            "--tune-arg", "top_n",
            "--profiles", str(tmp_path / "profiles"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "--tune-arg wants KEY=VALUE" in captured.err


# ----------------------------------------------------------------------
# the shared KEY=VALUE coercion table
# ----------------------------------------------------------------------

COERCION_TABLE = [
    ("true", True), ("True", True), ("YES", True), ("on", True),
    ("false", False), ("False", False), ("no", False), ("off", False),
    ("none", None), ("null", None), ("None", None),
    ("42", 42), ("-3", -3), ("0", 0),
    ("0.5", 0.5), ("1e-4", 1e-4), ("-2.5", -2.5),
    ("[1, 2]", [1, 2]), ('{"a": 1}', {"a": 1}), ('"quoted"', "quoted"),
    ("hello", "hello"), ("4x", "4x"), ("", ""),
    (" 7 ", 7),
]


@pytest.mark.parametrize(
    "raw, expected", COERCION_TABLE, ids=[repr(r) for r, _ in COERCION_TABLE]
)
def test_coercion_table(raw, expected):
    value = coerce_option_value(raw)
    assert value == expected
    assert type(value) is type(expected)


class TestParseKeyValueArgs:
    def test_typed_kwargs(self):
        kwargs = parse_key_value_args(
            ["a=True", "b=3", "c=0.5", "d=none", "e=[1,2]", "f=hello"]
        )
        assert kwargs == {
            "a": True, "b": 3, "c": 0.5, "d": None, "e": [1, 2],
            "f": "hello",
        }
        assert type(kwargs["a"]) is bool
        assert type(kwargs["b"]) is int

    def test_last_duplicate_wins(self):
        assert parse_key_value_args(["k=1", "k=2"]) == {"k": 2}

    def test_value_may_contain_equals(self):
        assert parse_key_value_args(["k=a=b"]) == {"k": "a=b"}

    @pytest.mark.parametrize("bad", ["novalue", "=1", " =1"])
    def test_malformed_pair_names_the_flag(self, bad):
        with pytest.raises(ValueError,
                           match=r"--policy-arg wants KEY=VALUE"):
            parse_key_value_args([bad], flag="--policy-arg")

    def test_policy_arg_boolean_regression(self):
        """The bug this parser replaced: ``flag=True`` arrived as the
        truthy *string* ``"True"`` through the JSON fallback."""
        kwargs = parse_key_value_args(["aggressive=True"],
                                      flag="--policy-arg")
        assert kwargs["aggressive"] is True
