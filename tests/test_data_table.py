"""Tests for repro.data.table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import (
    MIN_DIM,
    TableConfig,
    extend_table_set_key,
    insort_uid,
    table_set_key,
    total_size_bytes,
)


def make_table(**overrides) -> TableConfig:
    defaults = dict(
        table_id=0, hash_size=100_000, dim=64, pooling_factor=10.0, zipf_alpha=1.2
    )
    defaults.update(overrides)
    return TableConfig(**defaults)


class TestValidation:
    def test_dim_must_be_multiple_of_4(self):
        with pytest.raises(ValueError):
            make_table(dim=10)

    def test_dim_must_be_at_least_4(self):
        with pytest.raises(ValueError):
            make_table(dim=0)

    def test_hash_size_positive(self):
        with pytest.raises(ValueError):
            make_table(hash_size=0)

    def test_pooling_positive(self):
        with pytest.raises(ValueError):
            make_table(pooling_factor=0.0)

    def test_bytes_per_element(self):
        with pytest.raises(ValueError):
            make_table(bytes_per_element=3)


class TestIdentityAndSize:
    def test_uid_encodes_cost_identity(self):
        uid = make_table(table_id=7, dim=32).uid
        assert uid.startswith("t7:d32:")
        # All cost-relevant fields are part of the identity.
        base = make_table()
        assert base.uid != make_table(hash_size=200_000).uid
        assert base.uid != make_table(pooling_factor=11.0).uid
        assert base.uid != make_table(zipf_alpha=1.5).uid

    def test_size_bytes(self):
        t = make_table(hash_size=1000, dim=16)
        assert t.size_bytes == 1000 * 16 * 4

    def test_with_dim_preserves_everything_else(self):
        t = make_table()
        t2 = t.with_dim(8)
        assert t2.dim == 8
        assert (t2.table_id, t2.hash_size, t2.pooling_factor) == (
            t.table_id,
            t.hash_size,
            t.pooling_factor,
        )

    def test_total_size(self):
        tables = [make_table(dim=4), make_table(dim=8)]
        assert total_size_bytes(tables) == sum(t.size_bytes for t in tables)


class TestColumnSharding:
    def test_halved_splits_dimension(self):
        a, b = make_table(dim=64).halved()
        assert a.dim == b.dim == 32
        assert a.hash_size == b.hash_size == 100_000

    def test_halves_preserve_total_bytes(self):
        t = make_table(dim=64)
        a, b = t.halved()
        assert a.size_bytes + b.size_bytes == t.size_bytes

    def test_min_dim_cannot_halve(self):
        t = make_table(dim=MIN_DIM)
        assert not t.can_halve
        with pytest.raises(ValueError):
            t.halved()

    def test_dim_12_cannot_halve(self):
        # 12 is a legal dimension but 6 is not a multiple of 4.
        t = make_table(dim=12)
        assert not t.can_halve

    def test_dim_8_halves_to_4(self):
        t = make_table(dim=8)
        assert t.can_halve
        a, _ = t.halved()
        assert a.dim == 4


class TestDistributionMath:
    def test_unique_rows_bounded(self):
        t = make_table()
        for batch in (128, 4096, 65536):
            unique = t.expected_unique_rows(batch)
            assert 0 < unique <= min(t.hash_size, t.indices_per_batch(batch)) + 1

    def test_unique_rows_monotone_in_batch(self):
        t = make_table()
        assert t.expected_unique_rows(1024) < t.expected_unique_rows(65536)

    def test_higher_skew_fewer_unique(self):
        mild = make_table(zipf_alpha=1.0)
        heavy = make_table(zipf_alpha=2.0)
        assert heavy.expected_unique_rows(65536) < mild.expected_unique_rows(65536)

    def test_unique_fraction_in_unit_interval(self):
        f = make_table().unique_fraction(65536)
        assert 0 < f <= 1

    def test_small_table_saturates(self):
        t = make_table(hash_size=50, pooling_factor=100.0)
        unique = t.expected_unique_rows(65536)
        assert unique == pytest.approx(50, rel=0.05)

    def test_accuracy_against_monte_carlo(self):
        """The log-binned analytic estimate matches sampling."""
        t = make_table(hash_size=2_000, zipf_alpha=1.3, pooling_factor=2.0)
        rng = np.random.default_rng(0)
        n = int(t.indices_per_batch(512))
        ranks = np.arange(1, t.hash_size + 1)
        p = ranks ** (-t.zipf_alpha)
        p /= p.sum()
        trials = [
            len(np.unique(rng.choice(t.hash_size, size=n, p=p)))
            for _ in range(20)
        ]
        mc = float(np.mean(trials))
        analytic = t.expected_unique_rows(512)
        assert analytic == pytest.approx(mc, rel=0.05)

    def test_concentration_monotone_in_fraction(self):
        t = make_table()
        c1 = t.access_concentration(0.001)
        c2 = t.access_concentration(0.01)
        c3 = t.access_concentration(0.1)
        assert 0 < c1 <= c2 <= c3 <= 1

    def test_concentration_increases_with_skew(self):
        mild = make_table(zipf_alpha=1.0)
        heavy = make_table(zipf_alpha=2.0)
        assert heavy.access_concentration(0.01) > mild.access_concentration(0.01)

    def test_concentration_validates_fraction(self):
        with pytest.raises(ValueError):
            make_table().access_concentration(0.0)

    def test_indices_per_batch_validates(self):
        with pytest.raises(ValueError):
            make_table().indices_per_batch(0)


class TestTableSetKey:
    def test_order_invariant(self):
        a, b = make_table(table_id=1), make_table(table_id=2)
        assert table_set_key([a, b]) == table_set_key([b, a])

    def test_multiset_semantics(self):
        a = make_table(table_id=1)
        assert table_set_key([a, a]) != table_set_key([a])

    def test_dim_distinguishes(self):
        a = make_table(table_id=1, dim=64)
        b = a.with_dim(32)
        assert table_set_key([a]) != table_set_key([b])


class TestIncrementalKey:
    def test_extend_matches_full_rebuild(self):
        tables = [make_table(table_id=i, dim=8 * 2**(i % 3)) for i in range(6)]
        running: list = []
        held = []
        for t in tables:
            extended = extend_table_set_key(running, t.uid)
            held.append(t)
            assert extended == table_set_key(held)
            insort_uid(running, t.uid)
            assert tuple(running) == table_set_key(held)

    def test_extend_with_duplicates(self):
        a = make_table(table_id=1)
        key = table_set_key([a])
        assert extend_table_set_key(key, a.uid) == table_set_key([a, a])

    def test_extend_from_empty(self):
        a = make_table(table_id=3)
        assert extend_table_set_key((), a.uid) == table_set_key([a])


@settings(max_examples=40, deadline=None)
@given(
    dim=st.sampled_from([8, 16, 32, 64, 128]),
    hash_size=st.integers(min_value=100, max_value=10_000_000),
    pooling=st.floats(min_value=1.0, max_value=100.0),
    alpha=st.floats(min_value=0.0, max_value=2.5),
)
def test_property_halving_preserves_bytes_and_legality(
    dim, hash_size, pooling, alpha
):
    t = TableConfig(
        table_id=0,
        hash_size=hash_size,
        dim=dim,
        pooling_factor=pooling,
        zipf_alpha=alpha,
    )
    a, b = t.halved()
    assert a.size_bytes + b.size_bytes == t.size_bytes
    assert a.dim % MIN_DIM == 0 and b.dim % MIN_DIM == 0


@settings(max_examples=40, deadline=None)
@given(
    hash_size=st.integers(min_value=10, max_value=50_000_000),
    pooling=st.floats(min_value=0.5, max_value=200.0),
    alpha=st.floats(min_value=0.0, max_value=3.0),
    batch=st.sampled_from([256, 4096, 65536]),
)
def test_property_unique_rows_within_bounds(hash_size, pooling, alpha, batch):
    t = TableConfig(
        table_id=0,
        hash_size=hash_size,
        dim=16,
        pooling_factor=pooling,
        zipf_alpha=alpha,
    )
    unique = t.expected_unique_rows(batch)
    assert 0.0 < unique <= min(hash_size, t.indices_per_batch(batch)) * 1.001
