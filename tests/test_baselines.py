"""Tests for repro.baselines."""

import numpy as np
import pytest

from repro.baselines import (
    GREEDY_COSTS,
    AutoShardSharder,
    DreamShardSharder,
    GreedySharder,
    MilpSharder,
    PlannerSharder,
    RandomSharder,
    Sharder,
    dim_cost,
    lookup_cost,
    size_cost,
    size_lookup_cost,
)
from repro.data import ShardingTask
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel


def plan_respects_memory(plan, task) -> bool:
    memory = MemoryModel(task.memory_bytes)
    return memory.placement_fits(plan.per_device_tables(task.tables))


class TestCostFunctions:
    def test_values(self):
        t = TableConfig(
            table_id=0, hash_size=1000, dim=16, pooling_factor=5.0, zipf_alpha=1.0
        )
        assert size_cost(t) == t.size_bytes
        assert dim_cost(t) == 16.0
        assert lookup_cost(t) == 80.0
        assert size_lookup_cost(t) == pytest.approx(
            16 * 5.0 * t.size_bytes / 1024**3
        )

    def test_registry_complete(self):
        assert set(GREEDY_COSTS) == {
            "Size-based",
            "Dim-based",
            "Lookup-based",
            "Size-lookup-based",
        }


class TestRandomSharder:
    def test_produces_legal_plan(self, tasks2):
        sharder = RandomSharder(seed=0)
        plan = sharder.shard(tasks2[0])
        assert plan is not None
        assert plan.num_splits == 0
        assert plan_respects_memory(plan, tasks2[0])

    def test_protocol_conformance(self):
        assert isinstance(RandomSharder(), Sharder)

    def test_infeasible_returns_none(self, tasks2):
        task = tasks2[0]
        tight = ShardingTask(
            tables=task.tables, num_devices=2, memory_bytes=1024
        )
        assert RandomSharder(seed=0).shard(tight) is None


class TestGreedySharder:
    @pytest.mark.parametrize("variant", sorted(GREEDY_COSTS))
    def test_all_variants_produce_legal_plans(self, tasks2, variant):
        sharder = GreedySharder(variant)
        assert sharder.name == variant
        for task in tasks2:
            plan = sharder.shard(task)
            if plan is not None:
                assert plan_respects_memory(plan, task)

    def test_balances_its_own_cost(self, tasks2):
        """The greedy invariant: device cost sums differ by at most the
        largest single table cost."""
        task = tasks2[0]
        sharder = GreedySharder("Dim-based")
        plan = sharder.shard(task)
        loads = [0.0] * task.num_devices
        for t, d in zip(task.tables, plan.assignment):
            loads[d] += dim_cost(t)
        assert max(loads) - min(loads) <= max(dim_cost(t) for t in task.tables)

    def test_custom_cost_fn(self, tasks2):
        sharder = GreedySharder("custom", cost_fn=lambda t: 1.0)
        plan = sharder.shard(tasks2[0])
        counts = np.bincount(plan.assignment, minlength=2)
        assert abs(counts[0] - counts[1]) <= 1  # unit costs => even split

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            GreedySharder("Nope-based")


class TestPlannerSharder:
    def test_produces_legal_plan(self, tasks2):
        sharder = PlannerSharder(batch_size=65536)
        for task in tasks2:
            plan = sharder.shard(task)
            assert plan is not None
            assert plan_respects_memory(plan, task)

    def test_column_splits_when_memory_tight(self, tasks2):
        task = tasks2[0]
        largest = max(
            MemoryModel(task.memory_bytes).table_bytes(t) for t in task.tables
        )
        tight = ShardingTask(
            tables=task.tables,
            num_devices=2,
            memory_bytes=int(largest * 0.75),
        )
        plan = PlannerSharder().shard(tight)
        if plan is not None:
            assert plan.num_splits >= 1
            assert plan_respects_memory(plan, tight)

    def test_does_not_split_needlessly_into_dust(self, tasks2):
        """The per-table overhead keeps proposals from shattering every
        table to dimension 4."""
        plan = PlannerSharder().shard(tasks2[0])
        sharded = plan.sharded_tables(tasks2[0].tables)
        assert np.mean([t.dim for t in sharded]) > 4


class TestMilpSharder:
    def test_produces_legal_plan(self, tasks2):
        sharder = MilpSharder(time_limit_s=5)
        plan = sharder.shard(tasks2[0])
        assert plan is not None
        assert plan_respects_memory(plan, tasks2[0])

    def test_balances_lookup_cost_optimally_on_tiny_case(self):
        """4 equal tables on 2 devices: the MILP must split 2/2."""
        t = TableConfig(
            table_id=0, hash_size=1000, dim=16, pooling_factor=5.0, zipf_alpha=1.0
        )
        task = ShardingTask(
            tables=(t, t, t, t), num_devices=2, memory_bytes=10**9
        )
        plan = MilpSharder(time_limit_s=5).shard(task)
        counts = np.bincount(plan.assignment, minlength=2)
        assert counts[0] == counts[1] == 2

    def test_infeasible_returns_none(self, tasks2):
        tight = ShardingTask(
            tables=tasks2[0].tables, num_devices=2, memory_bytes=1024
        )
        assert MilpSharder(time_limit_s=5).shard(tight) is None


class TestRLSharders:
    @pytest.mark.parametrize("cls", [AutoShardSharder, DreamShardSharder])
    def test_produces_legal_plan(self, cls, tiny_bundle, tasks2):
        sharder = cls(tiny_bundle, episodes=6, seed=0)
        plan = sharder.shard(tasks2[0])
        assert plan is not None
        assert plan_respects_memory(plan, tasks2[0])
        assert plan.num_splits == 0  # table-wise only

    def test_table_wise_only_fails_on_oversized_tables(
        self, tiny_bundle, tasks2
    ):
        task = tasks2[0]
        largest = max(
            MemoryModel(task.memory_bytes).table_bytes(t) for t in task.tables
        )
        tight = ShardingTask(
            tables=task.tables, num_devices=2, memory_bytes=int(largest * 0.75)
        )
        sharder = DreamShardSharder(tiny_bundle, episodes=4, seed=0)
        assert sharder.shard(tight) is None

    def test_device_count_mismatch(self, tiny_bundle, tasks2):
        task = tasks2[0]
        bad = ShardingTask(
            tables=task.tables, num_devices=4, memory_bytes=task.memory_bytes
        )
        with pytest.raises(ValueError):
            AutoShardSharder(tiny_bundle, episodes=2).shard(bad)

    def test_run_to_run_variance_exists(self, tiny_bundle, tasks2):
        """Stochastic policies: different seeds may give different plans
        (the paper's instability observation).  We only require that the
        sharder is seed-sensitive somewhere across tasks."""
        plans_a = [
            DreamShardSharder(tiny_bundle, episodes=5, seed=1).shard(t)
            for t in tasks2
        ]
        plans_b = [
            DreamShardSharder(tiny_bundle, episodes=5, seed=2).shard(t)
            for t in tasks2
        ]
        assignments_a = [p.assignment for p in plans_a if p]
        assignments_b = [p.assignment for p in plans_b if p]
        assert assignments_a != assignments_b

    def test_more_episodes_no_worse_objective(self, tiny_bundle, tasks2):
        """Best-of tracking means more episodes cannot hurt the method's
        own objective."""
        from repro.core import CostCache, NeuroShardSimulator

        task = tasks2[1]
        simulator = NeuroShardSimulator(tiny_bundle, CostCache())

        def objective(plan):
            return simulator.plan_cost(
                plan.per_device_tables(task.tables)
            ).max_cost_ms

        few = DreamShardSharder(tiny_bundle, episodes=2, seed=3).shard(task)
        many = DreamShardSharder(tiny_bundle, episodes=16, seed=3).shard(task)
        assert objective(many) <= objective(few) + 1e-9
