"""Differential validation matrix: every registered strategy, one contract.

The acceptance gate: all registered strategies must answer a seeded task
matrix with validator-clean plans — full coverage, legal column plans,
in-range devices, memory-feasible placements.
"""

import dataclasses
import math

import pytest

from repro.api import (
    ShardingEngine,
    ShardingResponse,
    available_strategies,
    make_sharder,
)
from repro.core.plan import ShardingPlan
from repro.validation import differential_matrix


@pytest.fixture(scope="module")
def engine(cluster2, tiny_bundle):
    return ShardingEngine(
        cluster2, tiny_bundle, strategy_kwargs={"random": {"seed": 7}}
    )


@pytest.fixture(scope="module")
def matrix_tasks(tasks2):
    """Seeded tasks with budgets generous enough for *any* placement.

    Doubling the worst-case single-device footprint means even the random
    baseline cannot go infeasible, so a non-clean cell is a genuine
    strategy defect — the matrix tests plan validity, not search skill.
    """
    tasks = []
    for task in tasks2[:2]:
        total = sum(t.size_bytes + 4 * t.hash_size for t in task.tables)
        tasks.append(dataclasses.replace(task, memory_bytes=2 * total))
    return tasks


@pytest.fixture(scope="module")
def strategy_options(cluster2, tiny_bundle, matrix_tasks):
    """Construction options for strategies that need a trained artifact."""
    policy = make_sharder(
        "imitation",
        cluster=cluster2,
        bundle=tiny_bundle,
        train_tasks=matrix_tasks[:1],
        epochs=2,
    )
    fit = {"train_tasks": matrix_tasks[:1], "epochs": 2}
    return {"guided": {"policy": policy}, "imitation": fit, "offline_rl": fit}


class TestDifferentialMatrix:
    def test_every_registered_strategy_is_validator_clean(
        self, engine, matrix_tasks, strategy_options
    ):
        report = differential_matrix(
            engine, matrix_tasks, options=strategy_options
        )
        swept = {cell.strategy for cell in report.cells}
        assert swept == set(available_strategies()), (
            "the matrix must sweep every registered strategy"
        )
        assert len(swept) >= 18
        assert report.clean, [c.to_dict() for c in report.failures]
        summary = report.summary()
        assert summary["clean"] == summary["cells"] == len(swept) * len(
            matrix_tasks
        )
        assert summary["failing_strategies"] == []

    def test_matrix_flags_an_invalid_plan(self, engine, matrix_tasks, monkeypatch):
        task = matrix_tasks[0]
        broken = ShardingResponse(
            request_id="",
            strategy="beam",
            feasible=True,
            # One assignment entry short: a shard is left unplaced.
            plan=ShardingPlan(
                column_plan=(),
                assignment=(0,) * (len(task.tables) - 1),
                num_devices=task.num_devices,
            ),
            simulated_cost_ms=1.0,
            sharding_time_s=0.0,
        )
        monkeypatch.setattr(engine, "shard", lambda request: broken)
        report = differential_matrix(engine, [task], strategies=["beam"])
        assert not report.clean
        assert report.failures[0].codes == ("plan/coverage",)
        assert report.summary()["failing_strategies"] == ["beam"]

    def test_matrix_flags_infeasible_cells(self, engine, matrix_tasks):
        tight = dataclasses.replace(matrix_tasks[0], memory_bytes=1024)
        report = differential_matrix(engine, [tight], strategies=["dim_greedy"])
        assert not report.clean
        cell = report.failures[0]
        assert not cell.feasible and cell.codes == ()

    def test_report_serializes(self, engine, matrix_tasks):
        report = differential_matrix(
            engine, matrix_tasks[:1], strategies=["dim_greedy", "size_greedy"]
        )
        payload = report.to_dict()
        assert payload["summary"]["strategies"] == 2
        assert all(
            not math.isnan(0) and set(c) >= {"strategy", "task_id", "feasible"}
            for c in payload["cells"]
        )
