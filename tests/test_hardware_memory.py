"""Tests for repro.hardware.memory."""

import pytest

from repro.data.table import TableConfig
from repro.hardware import MemoryModel, OutOfMemoryError


def table(hash_size=1000, dim=64) -> TableConfig:
    return TableConfig(
        table_id=0, hash_size=hash_size, dim=dim, pooling_factor=5.0, zipf_alpha=1.1
    )


class TestAccounting:
    def test_table_bytes_includes_optimizer_state(self):
        model = MemoryModel(memory_bytes=10**9)
        t = table(hash_size=1000, dim=16)
        assert model.table_bytes(t) == t.size_bytes + 1000 * 4

    def test_optimizer_state_configurable(self):
        model = MemoryModel(memory_bytes=10**9, optimizer_rowwise_bytes=0)
        t = table()
        assert model.table_bytes(t) == t.size_bytes

    def test_device_bytes_sums(self):
        model = MemoryModel(memory_bytes=10**9)
        tables = [table(), table(hash_size=2000)]
        assert model.device_bytes(tables) == sum(
            model.table_bytes(t) for t in tables
        )

    def test_column_split_duplicates_optimizer_state(self):
        """Both half shards keep the full row-wise accumulator — column
        sharding is not memory-free."""
        model = MemoryModel(memory_bytes=10**9)
        t = table(dim=64)
        a, b = t.halved()
        assert model.table_bytes(a) + model.table_bytes(b) > model.table_bytes(t)


class TestFeasibility:
    def test_fits(self):
        t = table()
        model = MemoryModel(memory_bytes=2 * t.size_bytes + t.hash_size * 4)
        assert model.fits([t])
        assert not model.fits([t, t, t])

    def test_remaining_bytes_sign(self):
        t = table()
        model = MemoryModel(memory_bytes=t.size_bytes // 2)
        assert model.remaining_bytes([t]) < 0

    def test_check_placement_raises_with_device_info(self):
        t = table(hash_size=10**6, dim=128)
        model = MemoryModel(memory_bytes=1024)
        with pytest.raises(OutOfMemoryError, match="device 1"):
            model.check_placement([[], [t]])

    def test_placement_fits_non_raising(self):
        t = table()
        model = MemoryModel(memory_bytes=1024)
        assert not model.placement_fits([[t]])

    def test_empty_devices_fit(self):
        model = MemoryModel(memory_bytes=1)
        model.check_placement([[], []])

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(memory_bytes=0)
        with pytest.raises(ValueError):
            MemoryModel(memory_bytes=10, optimizer_rowwise_bytes=-1)
