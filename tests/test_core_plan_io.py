"""Tests for repro.core.plan_io (plan checkpointing)."""

import json

import pytest

from repro.core.plan import ShardingPlan
from repro.core.plan_io import load_plan, save_plan, task_fingerprint
from repro.data import synthesize_table_pool


@pytest.fixture()
def tables():
    return synthesize_table_pool(num_tables=5, seed=12)


@pytest.fixture()
def plan(tables):
    return ShardingPlan(
        column_plan=(0,),
        assignment=tuple(i % 2 for i in range(6)),
        num_devices=2,
    )


class TestFingerprint:
    def test_stable(self, tables):
        assert task_fingerprint(tables) == task_fingerprint(tables)

    def test_order_sensitive(self, tables):
        assert task_fingerprint(tables) != task_fingerprint(tables[::-1])

    def test_dim_sensitive(self, tables):
        changed = [tables[0].with_dim(8), *tables[1:]]
        assert task_fingerprint(tables) != task_fingerprint(changed)


class TestRoundtrip:
    def test_save_load(self, tables, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, tables, path, cost_model_version="bundle-v1")
        checkpoint = load_plan(path, tables)
        assert checkpoint.plan == plan
        assert checkpoint.cost_model_version == "bundle-v1"

    def test_load_without_validation(self, tables, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, tables, path)
        checkpoint = load_plan(path)  # no tables: no check
        assert checkpoint.plan == plan

    def test_drifted_tables_rejected(self, tables, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, tables, path)
        drifted = [tables[0].with_dim(8), *tables[1:]]
        with pytest.raises(ValueError, match="does not match the task"):
            load_plan(path, drifted)

    def test_wrong_version_rejected(self, tables, plan, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(plan, tables, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_plan(path)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"format_version": 1}))
        with pytest.raises(ValueError, match="malformed"):
            load_plan(path)

    def test_loaded_plan_executes(self, tables, plan, tmp_path):
        """A restored plan reproduces the exact device layout."""
        path = tmp_path / "plan.json"
        save_plan(plan, tables, path)
        restored = load_plan(path, tables).plan
        assert restored.per_device_tables(tables) == plan.per_device_tables(
            tables
        )
