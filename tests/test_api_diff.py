"""Tests for plan diffs and migration pricing (repro.api.diff)."""

import json

import pytest

from repro.api import MigrationCostModel, PlanDiff, ShardChange, TableMove
from repro.core import ShardingPlan
from repro.data.table import TableConfig
from repro.hardware.device import DeviceSpec


def _table(table_id: int, dim: int = 16, hash_size: int = 1000) -> TableConfig:
    return TableConfig(
        table_id=table_id,
        hash_size=hash_size,
        dim=dim,
        pooling_factor=10.0,
        zipf_alpha=1.0,
    )


TABLES = tuple(_table(i) for i in range(4))


def _plan(assignment, column_plan=(), num_devices=2) -> ShardingPlan:
    return ShardingPlan(
        column_plan=tuple(column_plan),
        assignment=tuple(assignment),
        num_devices=num_devices,
    )


class TestPlanDiffBetween:
    def test_identical_plans_diff_empty(self):
        plan = _plan([0, 1, 0, 1])
        diff = PlanDiff.between(plan, TABLES, plan, TABLES)
        assert diff.moves == ()
        assert diff.created == ()
        assert diff.removed == ()
        assert diff.moved_bytes == 0
        assert diff.migration_cost_ms == 0.0

    def test_single_move_detected_with_bytes(self):
        old = _plan([0, 1, 0, 1])
        new = _plan([1, 1, 0, 1])
        diff = PlanDiff.between(old, TABLES, new, TABLES)
        assert len(diff.moves) == 1
        move = diff.moves[0]
        assert move.from_device == 0
        assert move.to_device == 1
        assert move.size_bytes == TABLES[0].size_bytes
        assert diff.moved_bytes == TABLES[0].size_bytes
        assert diff.egress_bytes[0] == TABLES[0].size_bytes
        assert diff.ingress_bytes[1] == TABLES[0].size_bytes
        assert diff.migration_cost_ms > 0.0

    def test_added_table_is_created_not_moved(self):
        old = _plan([0, 1, 0, 1])
        new_tables = TABLES + (_table(99),)
        new = _plan([0, 1, 0, 1, 1])
        diff = PlanDiff.between(old, TABLES, new, new_tables)
        assert diff.moves == ()
        assert [c.uid for c in diff.created] == [new_tables[-1].uid]
        assert diff.created[0].device == 1
        assert diff.created_bytes == new_tables[-1].size_bytes
        assert diff.transferred_bytes == new_tables[-1].size_bytes

    def test_removed_table_is_free(self):
        old = _plan([0, 1, 0, 1])
        new = _plan([1, 0, 1])
        diff = PlanDiff.between(old, TABLES, new, TABLES[:3])
        assert [c.uid for c in diff.removed] == [TABLES[3].uid]
        # Removals cost nothing; the surviving tables here all moved.
        assert len(diff.moves) == 3

    def test_column_split_shards_match_by_occurrence(self):
        # Splitting table 0 once: old sharded list has two dim-8 shards.
        old = _plan([0, 1, 0, 1, 0], column_plan=(0,))
        same = _plan([0, 1, 0, 1, 0], column_plan=(0,))
        diff = PlanDiff.between(old, TABLES, same, TABLES)
        assert diff.num_changes == 0

    def test_resplit_is_removal_plus_creations(self):
        old = _plan([0, 1, 0, 1])
        new = _plan([0, 1, 0, 1, 0], column_plan=(0,))
        diff = PlanDiff.between(old, TABLES, new, TABLES)
        # Table 0's dim-16 shard vanished; two dim-8 shards were created.
        assert [c.uid for c in diff.removed] == [TABLES[0].uid]
        assert len(diff.created) == 2
        assert diff.created_bytes == TABLES[0].size_bytes

    def test_device_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="devices"):
            PlanDiff.between(
                _plan([0, 1, 0, 1]),
                TABLES,
                _plan([0, 1, 0, 1], num_devices=4),
                TABLES,
            )


class TestMigrationCostModel:
    def test_more_bytes_cost_more(self):
        model = MigrationCostModel()
        small = model.cost_ms([100], [0], [1])
        large = model.cost_ms([100_000_000], [0], [1])
        assert large > small > 0.0

    def test_bottleneck_device_dominates(self):
        model = MigrationCostModel()
        balanced = model.cost_ms([500, 500], [500, 500], [1, 1])
        skewed = model.cost_ms([1000, 0], [1000, 0], [2, 0])
        assert skewed > balanced

    def test_priced_with_spec_bandwidth(self):
        fast = MigrationCostModel(DeviceSpec(comm_bandwidth_bytes_per_ms=1e9))
        slow = MigrationCostModel(DeviceSpec(comm_bandwidth_bytes_per_ms=1e6))
        volume = ([10_000_000], [0], [0])
        assert slow.cost_ms(*volume) > fast.cost_ms(*volume)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            MigrationCostModel().cost_ms([1, 2], [1], [1, 1])


class TestPlanDiffWire:
    def test_round_trip_through_json(self):
        old = _plan([0, 1, 0, 1])
        new = _plan([1, 1, 0, 1, 1], column_plan=(2,))
        diff = PlanDiff.between(old, TABLES, new, TABLES)
        restored = PlanDiff.from_dict(json.loads(json.dumps(diff.to_dict())))
        assert restored == diff

    def test_version_mismatch_rejected(self):
        payload = PlanDiff(num_devices=2).to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            PlanDiff.from_dict(payload)

    def test_nested_types_round_trip(self):
        move = TableMove("t1:d8", 0, 1, 0, 4096)
        assert TableMove.from_dict(move.to_dict()) == move
        change = ShardChange("t2:d4", 1, 512)
        assert ShardChange.from_dict(change.to_dict()) == change
