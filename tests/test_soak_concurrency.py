"""Soak tests: sustained concurrent traffic must equal sequential execution.

The contract under load: the engine's answers are bit-identical to
sequential execution (interleaving may change *when* work happens, never
*what* is computed), and the service's record history survives mixed
plan/reshard/rollback traffic uncorrupted — contiguous versions, clean
validator reports, and byte-identical store round-trips.

Marked ``soak``.  ``REPRO_SOAK_ITERS`` scales the per-thread iteration
budget (default is small enough for tier-1; CI's ``soak-smoke`` job and
manual soaks raise it).
"""

import dataclasses
import json
import multiprocessing
import os
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    ShardingEngine,
    ShardingHTTPServer,
    ShardingRequest,
    ShardingService,
    WorkloadDelta,
)

pytestmark = pytest.mark.soak

#: Per-thread operations per soak phase (CI smoke raises this).
ITERS = int(os.environ.get("REPRO_SOAK_ITERS", "4"))

_STRATEGIES = ("beam", "dim_greedy", "size_greedy", "lookup_greedy")


@pytest.fixture(scope="module")
def engine(cluster2, tiny_bundle):
    return ShardingEngine(cluster2, tiny_bundle, max_workers=4)


def _reference_responses(cluster2, tiny_bundle, tasks):
    """Sequential ground truth on a *fresh* engine (no shared state)."""
    fresh = ShardingEngine(cluster2, tiny_bundle)
    return {
        (task.task_id, strategy): fresh.shard(
            ShardingRequest(task, strategy=strategy)
        ).deterministic_dict()
        for task in tasks
        for strategy in _STRATEGIES
    }


class TestEngineSoak:
    def test_concurrent_shard_is_bit_identical_to_sequential(
        self, engine, cluster2, tiny_bundle, tasks2
    ):
        tasks = tasks2[:3]
        reference = _reference_responses(cluster2, tiny_bundle, tasks)
        failures = []

        def hammer(thread_id: int) -> None:
            for i in range(ITERS * len(_STRATEGIES)):
                task = tasks[(thread_id + i) % len(tasks)]
                strategy = _STRATEGIES[i % len(_STRATEGIES)]
                got = engine.shard(
                    ShardingRequest(task, strategy=strategy)
                ).deterministic_dict()
                want = dict(reference[(task.task_id, strategy)])
                # The correlation id is the only legitimate difference.
                want["request_id"] = got["request_id"]
                if got != want:
                    failures.append((task.task_id, strategy))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_shard_batch_soak_matches_sequential(
        self, engine, cluster2, tiny_bundle, tasks2
    ):
        tasks = tasks2[:3]
        reference = _reference_responses(cluster2, tiny_bundle, tasks)
        requests = [
            ShardingRequest(task, strategy=strategy)
            for _ in range(max(ITERS // 2, 1))
            for task in tasks
            for strategy in _STRATEGIES
        ]
        responses = engine.shard_batch(requests, max_workers=8)
        assert len(responses) == len(requests)
        for request, response in zip(requests, responses):
            assert (
                response.deterministic_dict()
                == reference[(request.task.task_id, request.strategy)]
            )


class TestServiceSoak:
    def test_concurrent_plan_storm_matches_sequential(
        self, engine, cluster2, tiny_bundle, tasks2, tmp_path
    ):
        from repro.api import PlanStore

        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        reference = _reference_responses(
            cluster2, tiny_bundle, [tasks2[0]]
        )

        def storm(thread_id: int) -> None:
            for i in range(ITERS):
                strategy = _STRATEGIES[(thread_id + i) % len(_STRATEGIES)]
                service.plan("prod", strategy=strategy)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(storm, range(4)))

        history = service.history("prod")
        versions = [r["version"] for r in history]
        assert versions == list(range(1, 4 * ITERS + 1))
        for data in history:
            # Workload never changed: every record must be bit-identical
            # to a sequential plan with its strategy.  Base tables are
            # keyed by the reference task's id for lookup only.
            want = reference[(tasks2[0].task_id, data["strategy"])]
            assert data["plan"] == want["plan"]
            assert data["simulated_cost_ms"] == want["simulated_cost_ms"]
            assert data["feasible"] == want["feasible"]
        assert service.validate_deployment("prod").ok

        # The store round-trips the whole history byte-for-byte.
        reopened = ShardingService.open(store, lambda meta: engine)
        assert reopened.history("prod") == history

    def test_mixed_traffic_leaves_history_uncorrupted(
        self, engine, tasks2, tmp_path
    ):
        from repro.api import PlanStore

        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        service.plan("prod")
        service.apply("prod")
        errors: list[str] = []
        tolerated = (ValueError,)  # rollback with a 1-deep stack, races

        def planner(thread_id: int) -> None:
            for i in range(ITERS):
                try:
                    service.plan(
                        "prod",
                        strategy=_STRATEGIES[i % len(_STRATEGIES)],
                    )
                except tolerated:
                    pass
                except Exception as exc:  # noqa: BLE001 — soak verdict
                    errors.append(f"plan: {exc}")

        def resharder(thread_id: int) -> None:
            for i in range(max(ITERS // 2, 1)):
                added = dataclasses.replace(
                    tasks2[1].tables[i % len(tasks2[1].tables)],
                    table_id=100_000 + 1000 * thread_id + i,
                )
                try:
                    service.reshard(
                        "prod", WorkloadDelta(add_tables=(added,))
                    )
                except tolerated:
                    pass
                except Exception as exc:  # noqa: BLE001 — soak verdict
                    errors.append(f"reshard: {exc}")

        def roller(thread_id: int) -> None:
            for _ in range(ITERS):
                try:
                    service.rollback("prod")
                except tolerated:
                    pass
                except Exception as exc:  # noqa: BLE001 — soak verdict
                    errors.append(f"rollback: {exc}")

        def reader(thread_id: int) -> None:
            for _ in range(ITERS * 2):
                try:
                    service.status("prod")
                    service.history("prod")
                except Exception as exc:  # noqa: BLE001 — soak verdict
                    errors.append(f"read: {exc}")

        workers = [
            threading.Thread(target=fn, args=(i,))
            for i, fn in enumerate(
                (planner, planner, resharder, roller, reader)
            )
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert errors == []

        # No history corruption: contiguous versions, a live feasible
        # plan, a clean validator report, and disk == memory.
        history = service.history("prod")
        versions = [r["version"] for r in history]
        assert versions == list(range(1, len(versions) + 1))
        status = service.status("prod")
        assert status["applied_version"] is not None
        report = service.validate_deployment("prod")
        assert report.ok, report.errors
        reopened = ShardingService.open(store, lambda meta: engine)
        assert reopened.history("prod") == history
        assert (
            reopened.status("prod")["applied_stack"]
            == status["applied_stack"]
        )
        assert reopened.validate_deployment("prod").ok


class TestServerSoak:
    def test_http_plan_storm_and_validate(self, engine, tasks2):
        service = ShardingService()
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        server = ShardingHTTPServer(
            service, engine, port=0, max_batch=4, batch_wait_s=0.005
        )
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            reference = {
                strategy: engine.shard(
                    ShardingRequest(
                        dataclasses.replace(
                            tasks2[0],
                            memory_bytes=engine.cluster.config.memory_bytes,
                        ),
                        strategy=strategy,
                    )
                )
                for strategy in _STRATEGIES
            }
            failures: list[str] = []

            def client(thread_id: int) -> None:
                for i in range(ITERS):
                    strategy = _STRATEGIES[(thread_id + i) % len(_STRATEGIES)]
                    request = urllib.request.Request(
                        f"{base}/v1/deployments/prod/plan",
                        data=json.dumps({"strategy": strategy}).encode(),
                        headers={"Content-Type": "application/json"},
                    )
                    with urllib.request.urlopen(request, timeout=120) as resp:
                        record = json.loads(resp.read())
                    want = reference[strategy]
                    if record["plan"] != {
                        "column_plan": list(want.plan.column_plan),
                        "assignment": list(want.plan.assignment),
                        "num_devices": want.plan.num_devices,
                    }:
                        failures.append(strategy)
                    with urllib.request.urlopen(
                        f"{base}/v1/deployments/prod/status", timeout=60
                    ) as resp:
                        json.loads(resp.read())

            threads = [
                threading.Thread(target=client, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert failures == []

            with urllib.request.urlopen(
                f"{base}/v1/deployments/prod/validate", timeout=60
            ) as resp:
                payload = json.loads(resp.read())
            assert payload["ok"] is True
            assert payload["subject"] == "deployment:prod"
            history = service.history("prod")
            assert [r["version"] for r in history] == list(
                range(1, 4 * ITERS + 1)
            )
        finally:
            server.close()


# ----------------------------------------------------------------------
# multi-process store contention (satellite of the serving-plane PR)
# ----------------------------------------------------------------------


def _bundleless_engine(num_devices: int, memory_bytes: int):
    from repro.api import ShardingEngine
    from repro.config import ClusterConfig
    from repro.hardware import SimulatedCluster

    return ShardingEngine(
        SimulatedCluster(
            ClusterConfig(num_devices=num_devices, memory_bytes=memory_bytes)
        ),
        None,
        default_strategy="dim_greedy",
    )


def _store_factory(meta):
    return _bundleless_engine(meta["num_devices"], meta["memory_bytes"])


def _contend(store_root: str, iters: int, worker_id: int) -> None:
    """One writer process: open the shared store, plan and apply."""
    from repro.api import PlanStore, ShardingService

    service = ShardingService.open(PlanStore(store_root), _store_factory)
    strategies = ("dim_greedy", "size_greedy")
    for i in range(iters):
        record = service.plan(
            "prod", strategy=strategies[(worker_id + i) % len(strategies)]
        )
        try:
            service.apply("prod", version=record.version)
        except ValueError:
            # A sibling's apply raced ours; losing the race is fine —
            # corrupting the store is not.
            pass


class TestMultiProcessStoreContention:
    def test_two_service_handles_share_one_store_safely(
        self, tasks2, tmp_path
    ):
        """Two ``ShardingService.open()`` handles in separate processes
        hammer the same store directory: no torn records, and the
        applied-version stack survives as a consistent prefix."""
        from repro.api import PlanRecord, PlanStore, ShardingService

        store_root = str(tmp_path / "shared")
        engine = _bundleless_engine(2, tasks2[0].memory_bytes)
        service = ShardingService(PlanStore(store_root))
        service.create_deployment("prod", engine, tables=tasks2[0].tables)

        workers = [
            multiprocessing.Process(
                target=_contend, args=(store_root, ITERS, worker_id)
            )
            for worker_id in range(2)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=300)
        assert [w.exitcode for w in workers] == [0, 0]

        # Every stored record parses (no torn writes) and versions are
        # a contiguous range: the collision-retry allocator never
        # double-booked or skipped a version across processes.
        store = PlanStore(store_root)
        versions = store.versions("prod")
        assert versions == list(range(1, 2 * ITERS + 1))
        for version in versions:
            record = PlanRecord.from_dict(store.load_record("prod", version))
            assert record.version == version
            assert record.feasible
            # Contention must not cost tamper evidence: every record a
            # racing writer lands still carries its chain link.
            assert record.provenance is not None

        # The full-store audit sees no errors; non-immediate predecessor
        # links from interleaved writers are advisory forks, not damage.
        from repro.provenance import audit_deployment

        audit = audit_deployment(store, "prod")
        assert audit.ok, [f.to_dict() for f in audit.errors]
        assert {f.code for f in audit.advisories} <= {"chain/fork"}

        # A fresh handle reopens without a single repair: the applied
        # stack on disk is a consistent prefix (every referenced
        # version exists and validates), not a torn artifact.
        reopened = ShardingService.open(store, _store_factory)
        assert reopened.recovery_notes.get("prod", []) == []
        status = reopened.status("prod")
        assert status["applied_version"] is not None
        assert set(status["applied_stack"]) <= set(versions)
        report = reopened.validate_deployment("prod")
        assert report.ok, report.errors
