"""Tests for plan diagnostics and what-if probing."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cache import CostCache
from repro.core.simulator import NeuroShardSimulator
from repro.evaluation import (
    analyze_plan,
    best_single_improvement,
    what_if_move,
    what_if_split,
)
from repro.hardware.memory import MemoryModel


@pytest.fixture(scope="module")
def simulator(tiny_bundle):
    return NeuroShardSimulator(tiny_bundle, CostCache())


@pytest.fixture(scope="module")
def placement(small_pool):
    tables = [t.with_dim(32) for t in small_pool.tables[:8]]
    # Deliberately imbalanced: 6 tables on device 0, 2 on device 1.
    return [tables[:6], tables[6:]]


class TestAnalyzePlan:
    def test_rejects_empty(self, simulator):
        with pytest.raises(ValueError, match="at least one"):
            analyze_plan([], simulator)

    def test_bottleneck_is_argmax(self, placement, simulator):
        analysis = analyze_plan(placement, simulator)
        costs = analysis.breakdown.device_costs_ms
        assert analysis.bottleneck_device == int(np.argmax(costs))
        assert analysis.max_cost_ms == max(costs)

    def test_balance_metrics_in_unit_interval(self, placement, simulator):
        analysis = analyze_plan(placement, simulator)
        assert 0.0 < analysis.compute_balance <= 1.0
        assert 0.0 < analysis.dim_balance <= 1.0

    def test_imbalanced_plan_detected(self, placement, simulator):
        analysis = analyze_plan(placement, simulator)
        # 6 vs 2 equal-dim tables: dim balance is mean/max = (192+64)/2/192.
        # (The *bottleneck device* is not necessarily the loaded one:
        # measured comm costs include waiting, so the under-loaded device
        # accrues wait time — exactly the straggler effect of Figure 1.)
        assert analysis.dim_balance == pytest.approx(128 / 192)
        assert analysis.compute_balance < 0.75

    def test_fraction_compute_in_unit_interval(self, placement, simulator):
        analysis = analyze_plan(placement, simulator)
        assert 0.0 <= analysis.bottleneck_fraction_compute <= 1.0

    def test_device_bytes_uses_memory_model(self, placement, simulator):
        memory = MemoryModel(1024**4)
        analysis = analyze_plan(placement, simulator, memory)
        expected = tuple(
            sum(memory.table_bytes(t) for t in dev) for dev in placement
        )
        assert analysis.device_bytes == expected


class TestWhatIfMove:
    def test_validation(self, placement, simulator):
        with pytest.raises(ValueError, match="source/target"):
            what_if_move(placement, simulator, 5, 0, 0)
        with pytest.raises(ValueError, match="same"):
            what_if_move(placement, simulator, 0, 0, 0)
        with pytest.raises(ValueError, match="out of range"):
            what_if_move(placement, simulator, 0, 99, 1)

    def test_moving_off_bottleneck_helps(self, placement, simulator):
        result = what_if_move(placement, simulator, 0, 0, 1)
        assert result.feasible
        assert result.improvement_ms > 0

    def test_costs_consistent_with_simulator(self, placement, simulator):
        """before/after costs must equal direct simulator queries on the
        original and edited placements."""
        result = what_if_move(placement, simulator, 1, 0, 0)
        assert result.cost_before_ms == pytest.approx(
            simulator.plan_cost(placement).max_cost_ms
        )
        edited = [list(dev) for dev in placement]
        edited[0].append(edited[1].pop(0))
        assert result.cost_after_ms == pytest.approx(
            simulator.plan_cost(edited).max_cost_ms
        )

    def test_memory_infeasible_move(self, placement, simulator):
        tiny = MemoryModel(1)  # nothing fits anywhere
        result = what_if_move(placement, simulator, 0, 0, 1, memory=tiny)
        assert not result.feasible
        assert result.cost_after_ms == math.inf

    def test_original_placement_untouched(self, placement, simulator):
        sizes = [len(dev) for dev in placement]
        what_if_move(placement, simulator, 0, 0, 1)
        assert [len(dev) for dev in placement] == sizes


class TestWhatIfSplit:
    def test_validation(self, placement, simulator):
        with pytest.raises(ValueError, match="device"):
            what_if_split(placement, simulator, 9, 0)
        with pytest.raises(ValueError, match="out of range"):
            what_if_split(placement, simulator, 0, 99)

    def test_split_produces_conserving_edit(self, placement, simulator):
        result = what_if_split(placement, simulator, 0, 0)
        assert result.feasible
        assert math.isfinite(result.cost_after_ms)
        assert "split" in result.description

    def test_unsplittable_table_reported_infeasible(self, simulator,
                                                    small_pool):
        tables = [t.with_dim(4) for t in small_pool.tables[:4]]
        result = what_if_split([tables[:2], tables[2:]], simulator, 0, 0)
        assert not result.feasible
        assert "illegal" in result.description


class TestBestSingleImprovement:
    def test_validation(self, placement, simulator):
        with pytest.raises(ValueError, match="top_k"):
            best_single_improvement(placement, simulator, top_k=0)

    def test_returns_sorted_edits(self, placement, simulator):
        edits = best_single_improvement(placement, simulator, top_k=4)
        assert len(edits) == 4
        improvements = [e.improvement_ms for e in edits]
        assert improvements == sorted(improvements, reverse=True)

    def test_finds_an_improving_edit_on_imbalanced_plan(self, placement,
                                                        simulator):
        edits = best_single_improvement(placement, simulator, top_k=1)
        assert edits[0].improvement_ms > 0

    def test_near_optimal_plan_offers_little(self, simulator, small_pool,
                                             tiny_bundle, tasks2):
        """On a NeuroShard-searched plan, the best single edit should
        improve far less than on the deliberately imbalanced plan."""
        from repro.config import SearchConfig
        from repro.core import NeuroShard

        task = tasks2[0]
        result = NeuroShard(tiny_bundle, search=SearchConfig(max_steps=4)).shard(
            task
        )
        assert result.feasible
        per_device = result.plan.per_device_tables(task.tables)
        edits = best_single_improvement(per_device, simulator, top_k=1)
        before = simulator.plan_cost(per_device).max_cost_ms
        # Best remaining edit gains less than 5% of the plan cost.
        assert edits[0].improvement_ms < 0.05 * before
