"""Negative tests: every validator invariant has a dedicated failure mode.

Each test constructs a *minimally* broken plan / record / transition and
asserts the exact ``ValidationError`` code — so a refactor of the
validator cannot silently weaken (or rename) an invariant.
"""

import dataclasses

import pytest

from repro.api.diff import PlanDiff, TableMove
from repro.api.reshard import WorkloadDelta
from repro.api.service import PlanRecord
from repro.core.plan import ShardingPlan
from repro.data.table import TableConfig
from repro.validation import PlanValidationError, PlanValidator

MEM = 10**8


@pytest.fixture()
def validator():
    return PlanValidator()


def _tables(count=2, dim=16, hash_size=2000, start_id=0):
    return tuple(
        TableConfig(
            table_id=start_id + i,
            hash_size=hash_size,
            dim=dim,
            pooling_factor=4.0,
            zipf_alpha=0.8,
        )
        for i in range(count)
    )


def _plan(assignment, column_plan=(), num_devices=2):
    return ShardingPlan(
        column_plan=tuple(column_plan),
        assignment=tuple(assignment),
        num_devices=num_devices,
    )


def _record(
    version,
    plan,
    tables,
    *,
    kind="plan",
    feasible=True,
    diff=None,
    metadata=None,
    num_devices=2,
):
    return PlanRecord(
        version=version,
        kind=kind,
        strategy="test",
        feasible=feasible,
        plan=plan,
        base_tables=tuple(tables),
        num_devices=num_devices,
        memory_bytes=MEM,
        simulated_cost_ms=1.0,
        sharding_time_s=0.0,
        created_at=0.0,
        diff=diff,
        metadata=dict(metadata or {}),
    )


class TestStructuralCodes:
    def test_plan_device_count(self, validator):
        report = validator.validate_plan(
            _plan([0, 1], num_devices=2), _tables(),
            num_devices=4, memory_bytes=MEM,
        )
        assert "plan/device-count" in report.error_codes

    def test_plan_column_plan(self, validator):
        report = validator.validate_plan(
            _plan([0, 1], column_plan=[5]), _tables(),
            num_devices=2, memory_bytes=MEM,
        )
        assert report.error_codes == ("plan/column-plan",)

    def test_plan_coverage(self, validator):
        # Two tables, one assignment entry: a shard is left unassigned.
        report = validator.validate_plan(
            _plan([0]), _tables(), num_devices=2, memory_bytes=MEM
        )
        assert report.error_codes == ("plan/coverage",)

    def test_plan_device_range(self, validator):
        # ShardingPlan's constructor refuses out-of-range devices, so a
        # broken plan can only come from outside the type system (a
        # corrupted store, a buggy deserializer) — bypass the
        # constructor the same way corruption would.
        plan = object.__new__(ShardingPlan)
        object.__setattr__(plan, "column_plan", ())
        object.__setattr__(plan, "assignment", (0, 7))
        object.__setattr__(plan, "num_devices", 2)
        report = validator.validate_plan(
            plan, _tables(), num_devices=2, memory_bytes=MEM
        )
        assert report.error_codes == ("plan/device-range",)

    def test_plan_memory(self, validator):
        report = validator.validate_plan(
            _plan([0, 0]), _tables(), num_devices=2, memory_bytes=1000
        )
        assert report.error_codes == ("plan/memory",)


class TestRecordCodes:
    def test_record_version(self, validator):
        record = _record(0, _plan([0, 1]), _tables())
        report = validator.validate_record(record)
        assert "record/version" in report.error_codes

    def test_record_plan_presence_feasible_without_plan(self, validator):
        record = _record(1, None, _tables(), feasible=True)
        report = validator.validate_record(record)
        assert report.error_codes == ("record/plan-presence",)

    def test_record_plan_presence_infeasible_with_plan(self, validator):
        record = _record(1, _plan([0, 1]), _tables(), feasible=False)
        report = validator.validate_record(record)
        assert report.error_codes == ("record/plan-presence",)


class TestDiffCodes:
    def test_diff_conservation(self, validator):
        # New plan drops a table but the diff accounts no removal.
        tables = _tables()
        old_plan = _plan([0, 1])
        new_plan = _plan([0])
        report = validator.validate_diff(
            PlanDiff(num_devices=2),  # empty: removal unaccounted
            old_plan, tables, new_plan, tables[:1],
        )
        assert "diff/conservation" in report.error_codes

    def test_diff_duplicate_move(self, validator):
        tables = _tables()
        old_plan = _plan([0, 1])
        new_plan = _plan([1, 0])
        move = TableMove(
            uid=tables[0].uid, occurrence=0,
            from_device=0, to_device=1, size_bytes=tables[0].size_bytes,
        )
        report = validator.validate_diff(
            PlanDiff(num_devices=2, moves=(move, move)),
            old_plan, tables, new_plan, tables,
        )
        assert "diff/duplicate-move" in report.error_codes

    def test_diff_move_of_unknown_shard(self, validator):
        tables = _tables()
        ghost = TableMove(
            uid="t999:d16:h2000:p4.0:z0.8", occurrence=0,
            from_device=0, to_device=1, size_bytes=1,
        )
        report = validator.validate_diff(
            PlanDiff(num_devices=2, moves=(ghost,)),
            _plan([0, 1]), tables, _plan([0, 1]), tables,
        )
        assert "diff/duplicate-move" in report.error_codes

    def test_diff_mismatch(self, validator):
        # Recorded diff claims a move the recomputation does not see.
        tables = _tables()
        old = _record(1, _plan([0, 1]), tables)
        stale = TableMove(
            uid=tables[0].uid, occurrence=0,
            from_device=0, to_device=1, size_bytes=tables[0].size_bytes,
        )
        new = _record(
            2,
            _plan([0, 1]),  # identical placement: a true diff is empty
            tables,
            kind="reshard",
            diff=PlanDiff(num_devices=2, moves=(stale,)),
            metadata={"base_version": 1},
        )
        report = validator.validate_transition(old, new)
        assert "diff/mismatch" in report.error_codes

    def test_diff_checks_skipped_without_base_anchor(self, validator):
        # The same stale diff is NOT held to account when the record
        # does not claim this base version (apply of an old version).
        tables = _tables()
        old = _record(1, _plan([0, 1]), tables)
        stale = TableMove(
            uid=tables[0].uid, occurrence=0,
            from_device=0, to_device=1, size_bytes=tables[0].size_bytes,
        )
        new = _record(
            2, _plan([0, 1]), tables, kind="reshard",
            diff=PlanDiff(num_devices=2, moves=(stale,)),
            metadata={"base_version": 7},
        )
        report = validator.validate_transition(old, new)
        assert "diff/mismatch" not in report.checks
        assert report.ok


class TestTransitionCodes:
    def test_corrupt_base_version_is_a_finding_not_a_crash(self, validator):
        tables = _tables()
        old = _record(1, _plan([0, 1]), tables)
        new = _record(
            2, _plan([0, 1]), tables, kind="reshard",
            metadata={"base_version": "two"},
        )
        report = validator.validate_transition(old, new)
        assert "transition/delta" in report.error_codes

    def test_stats_zero_move_respects_occurrence_swaps(self, validator):
        # A column-split table: two uid-equal shards on devices 0 and 1.
        # Swapping the occurrences is a genuine placement change, so the
        # zero-move law must NOT treat it as "placement held".
        table = _tables(1, dim=32)[0]
        updated = dataclasses.replace(table, pooling_factor=9.0)
        old_plan = _plan([0, 1], column_plan=[0])
        new_plan = _plan([1, 0], column_plan=[0])
        delta = WorkloadDelta(update_stats=(updated,))
        old = _record(1, old_plan, (table,))
        new = _record(
            2, new_plan, (updated,), kind="reshard",
            diff=PlanDiff.between(old_plan, (updated,), new_plan, (updated,)),
            metadata={"base_version": 1, "delta": delta.to_dict()},
        )
        report = validator.validate_transition(old, new)
        assert "transition/stats-zero-move" not in report.error_codes
        assert report.ok, report.errors

    def test_transition_delta(self, validator):
        tables = _tables()
        old = _record(1, _plan([0, 1]), tables)
        new = _record(
            2, _plan([0, 1]), tables, kind="reshard",
            diff=PlanDiff(num_devices=2),
            metadata={"base_version": 1, "delta": {"schema_version": 999}},
        )
        report = validator.validate_transition(old, new)
        assert "transition/delta" in report.error_codes

    def test_transition_stats_unknown_table(self, validator):
        tables = _tables()
        ghost_stats = dataclasses.replace(tables[0], table_id=999)
        delta = WorkloadDelta(update_stats=(ghost_stats,))
        old = _record(1, _plan([0, 1]), tables)
        new = _record(
            2, _plan([0, 1]), tables, kind="reshard",
            diff=PlanDiff(num_devices=2),
            metadata={"base_version": 1, "delta": delta.to_dict()},
        )
        report = validator.validate_transition(old, new)
        assert "transition/stats-unknown-table" in report.error_codes

    def test_transition_stats_zero_move(self, validator):
        tables = _tables()
        updated = dataclasses.replace(tables[0], pooling_factor=9.0)
        delta = WorkloadDelta(update_stats=(updated,))
        new_tables = (updated, tables[1])
        old = _record(1, _plan([0, 1]), tables)
        # Same placement, but the recorded diff claims bytes moved: the
        # stats rewrite itself must be migration-free.
        phantom = TableMove(
            uid=updated.uid, occurrence=0,
            from_device=0, to_device=1, size_bytes=updated.size_bytes,
        )
        new = _record(
            2, _plan([0, 1]), new_tables, kind="reshard",
            diff=PlanDiff(num_devices=2, moves=(phantom,)),
            metadata={"base_version": 1, "delta": delta.to_dict()},
        )
        report = validator.validate_transition(old, new)
        assert "transition/stats-zero-move" in report.error_codes

    def test_clean_transition_passes_all_laws(self, validator):
        tables = _tables()
        extra = _tables(1, start_id=50)[0]
        new_tables = tables + (extra,)
        old_plan = _plan([0, 1])
        new_plan = _plan([0, 1, 0])
        old = _record(1, old_plan, tables)
        new = _record(
            2, new_plan, new_tables, kind="reshard",
            diff=PlanDiff.between(old_plan, tables, new_plan, new_tables),
            metadata={
                "base_version": 1,
                "delta": WorkloadDelta(add_tables=(extra,)).to_dict(),
            },
        )
        report = validator.validate_transition(old, new)
        assert report.ok, report.errors
        assert "diff/conservation" in report.checks
        assert "diff/mismatch" in report.checks


class TestStateCodes:
    def test_rollback_byte_identity(self, validator):
        record = _record(1, _plan([0, 1]), _tables())
        report = validator.validate_rollback(record, stored={"rewritten": 1})
        assert report.error_codes == ("rollback/byte-identity",)

    def test_rollback_tolerates_pre_validation_layer_records(self, validator):
        # Stores written before the validation layer lack the optional
        # 'validation' key; that is not history rewriting.
        record = _record(1, _plan([0, 1]), _tables())
        legacy = record.to_dict()
        del legacy["validation"]
        report = validator.validate_rollback(record, stored=legacy)
        assert report.ok, report.errors

    def test_state_applied_version_missing(self, validator):
        report = validator.validate_history([], [5])
        assert "state/applied-version" in report.error_codes

    def test_state_applied_version_infeasible(self, validator):
        record = _record(1, None, _tables(), feasible=False)
        report = validator.validate_history([record], [1])
        assert "state/applied-version" in report.error_codes


class TestEdgeBranches:
    def test_response_feasible_without_plan(self, validator):
        from repro.api import ShardingResponse
        from repro.data.tasks import ShardingTask

        task = ShardingTask(
            tables=_tables(), num_devices=2, memory_bytes=MEM
        )
        response = ShardingResponse(
            request_id="", strategy="test", feasible=True, plan=None,
            simulated_cost_ms=1.0, sharding_time_s=0.0,
        )
        report = validator.validate_response(response, task)
        assert report.error_codes == ("record/plan-presence",)

    def test_diff_accounting_undefined_for_illegal_plan(self, validator):
        # A structurally broken plan makes the accounting meaningless:
        # validate_diff runs no checks (the structural validators own
        # that failure).
        report = validator.validate_diff(
            PlanDiff(num_devices=2),
            _plan([0], column_plan=[9]), _tables(),
            _plan([0, 1]), _tables(),
        )
        assert report.checks == () and report.ok

    def test_transition_without_plans_is_vacuous(self, validator):
        old = _record(1, None, _tables(), feasible=False)
        new = _record(2, _plan([0, 1]), _tables())
        report = validator.validate_transition(old, new)
        assert report.checks == () and report.ok


def test_plan_validation_error_carries_report():
    validator = PlanValidator()
    report = validator.validate_plan(
        _plan([0, 1], num_devices=2), _tables(),
        num_devices=4, memory_bytes=MEM,
    )
    with pytest.raises(PlanValidationError, match="plan/device-count"):
        report.raise_if_failed()
    try:
        report.raise_if_failed()
    except PlanValidationError as exc:
        assert exc.report is report
