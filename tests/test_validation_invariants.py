"""Tests for the invariant layer (repro.validation.invariants) and its
wiring into the plan-lifecycle service."""

import dataclasses
import json

import pytest

from repro.api import (
    PlanStore,
    PlanValidationError,
    ShardingEngine,
    ShardingService,
    WorkloadDelta,
)
from repro.api.service import PlanRecord
from repro.core.plan import ShardingPlan, apply_column_plan
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel
from repro.validation import PlanValidator, ValidationReport


@pytest.fixture()
def engine(cluster2, tiny_bundle):
    return ShardingEngine(cluster2, tiny_bundle)


@pytest.fixture()
def service(engine, tasks2):
    service = ShardingService()
    service.create_deployment("prod", engine, tables=tasks2[0].tables)
    return service


def _max_device_usage(record):
    """Peak per-device bytes of a record's plan (validator's memory law)."""
    memory = MemoryModel(record.memory_bytes)
    sharded = apply_column_plan(record.base_tables, record.plan.column_plan)
    used = [0] * record.plan.num_devices
    for table, device in zip(sharded, record.plan.assignment):
        used[device] += memory.table_bytes(table)
    return max(used)


def _tables(count=3, dim=16, hash_size=2000):
    return tuple(
        TableConfig(
            table_id=i,
            hash_size=hash_size,
            dim=dim,
            pooling_factor=4.0,
            zipf_alpha=0.8,
        )
        for i in range(count)
    )


class TestValidatePlan:
    def test_clean_plan_runs_every_structural_check(self):
        tables = _tables()
        plan = ShardingPlan(
            column_plan=(0,), assignment=(0, 1, 0, 1), num_devices=2
        )
        report = PlanValidator().validate_plan(
            plan, tables, num_devices=2, memory_bytes=10**8
        )
        assert report.ok
        assert set(report.checks) == {
            "plan/device-count",
            "plan/column-plan",
            "plan/coverage",
            "plan/device-range",
            "plan/memory",
        }

    def test_memory_check_includes_optimizer_state(self):
        # One table of exactly weight-budget size: the row-wise optimizer
        # accumulator pushes it over, and the validator must see that.
        table = _tables(1)[0]
        plan = ShardingPlan(column_plan=(), assignment=(0,), num_devices=1)
        weights = table.size_bytes
        just_weights = PlanValidator().validate_plan(
            plan, (table,), num_devices=1, memory_bytes=weights
        )
        assert just_weights.error_codes == ("plan/memory",)
        with_optimizer = PlanValidator().validate_plan(
            plan, (table,), num_devices=1,
            memory_bytes=weights + 4 * table.hash_size,
        )
        assert with_optimizer.ok

    def test_report_round_trips_through_json(self):
        tables = _tables()
        plan = ShardingPlan(
            column_plan=(), assignment=(0, 1, 0), num_devices=4
        )
        report = PlanValidator().validate_plan(
            plan, tables, num_devices=2, memory_bytes=10
        )
        assert not report.ok
        reloaded = ValidationReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert reloaded == report

    def test_report_version_mismatch_rejected(self):
        report = PlanValidator().validate_plan(
            ShardingPlan(column_plan=(), assignment=(0,), num_devices=1),
            _tables(1),
            num_devices=1,
            memory_bytes=10**8,
        )
        payload = report.to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            ValidationReport.from_dict(payload)


class TestServiceWiring:
    def test_plan_records_carry_validation_reports(self, service):
        record = service.plan("prod")
        assert record.validation is not None
        assert record.validation.ok
        assert "plan/memory" in record.validation.checks
        assert record.to_dict()["validation"]["ok"] is True

    def test_reshard_records_carry_transition_checks(self, service, tasks2):
        service.plan("prod")
        service.apply("prod")
        added = tuple(
            dataclasses.replace(t, table_id=90_000 + i)
            for i, t in enumerate(tasks2[1].tables[:2])
        )
        record = service.reshard("prod", WorkloadDelta(add_tables=added))
        assert record.validation is not None
        assert record.validation.ok
        assert "diff/conservation" in record.validation.checks
        assert "diff/mismatch" in record.validation.checks
        assert record.metadata["base_version"] == 1

    def test_apply_rejects_corrupted_record(self, service):
        record = service.plan("prod")
        # Corrupt the stored record in place: claim a device the cluster
        # does not have.  The validator must refuse to make it live.
        deployment = service._get("prod")
        bad_plan = ShardingPlan(
            column_plan=record.plan.column_plan,
            assignment=record.plan.assignment,
            num_devices=record.plan.num_devices + 1,
        )
        deployment.records[record.version] = dataclasses.replace(
            record, plan=bad_plan
        )
        with pytest.raises(PlanValidationError) as excinfo:
            service.apply("prod")
        assert "plan/device-count" in excinfo.value.report.error_codes
        assert service.status("prod")["applied_version"] is None

    def test_validate_flag_disables_gating(self, engine, tasks2):
        service = ShardingService(validate=False)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        record = service.plan("prod")
        assert record.validation is None
        deployment = service._get("prod")
        bad_plan = ShardingPlan(
            column_plan=record.plan.column_plan,
            assignment=record.plan.assignment,
            num_devices=record.plan.num_devices + 1,
        )
        deployment.records[record.version] = dataclasses.replace(
            record, plan=bad_plan
        )
        applied = service.apply("prod")  # no gate without validation
        assert applied.version == record.version

    def test_per_call_validate_override(self, service):
        record = service.plan("prod", validate=False)
        assert record.validation is None
        record = service.plan("prod", validate=True)
        assert record.validation is not None

    def test_validate_deployment_full_history(self, service, tasks2):
        service.plan("prod")
        service.apply("prod")
        added = tuple(
            dataclasses.replace(t, table_id=91_000 + i)
            for i, t in enumerate(tasks2[1].tables[:1])
        )
        service.reshard("prod", WorkloadDelta(add_tables=added))
        service.rollback("prod")
        report = service.validate_deployment("prod")
        assert report.ok
        assert "state/applied-version" in report.checks

    def test_validate_deployment_detects_store_drift(
        self, engine, tasks2, tmp_path
    ):
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        service.plan("prod")
        service.apply("prod")
        assert service.validate_deployment("prod").ok
        # Rewrite history on disk behind the service's back.
        path = tmp_path / "deps" / "prod" / "plans" / "v1.json"
        data = json.loads(path.read_text())
        data["strategy"] = "rewritten"
        path.write_text(json.dumps(data, indent=1))
        report = service.validate_deployment("prod")
        assert "rollback/byte-identity" in report.error_codes

    def test_rollback_gates_on_unreadable_target_record(
        self, engine, tasks2, tmp_path
    ):
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        service.plan("prod")
        service.apply("prod")
        service.plan("prod")
        service.apply("prod", version=2)
        path = tmp_path / "deps" / "prod" / "plans" / "v1.json"
        path.write_text(path.read_text()[:80])  # torn on disk after the fact
        with pytest.raises(PlanValidationError) as excinfo:
            service.rollback("prod")
        assert "rollback/byte-identity" in excinfo.value.report.error_codes
        assert service.status("prod")["applied_version"] == 2

    def test_degraded_budget_gates_apply_of_stale_version(self, service):
        """The gate checks the deployment's *current* budget: a version
        recorded under more capacity must not go live after degradation."""
        service.plan("prod")
        v1 = service.apply("prod")
        # Capacity loss since v1 was recorded (reshard(memory_bytes=...)
        # persists exactly this state change).
        service._get("prod").memory_bytes = _max_device_usage(v1) - 1
        with pytest.raises(PlanValidationError) as excinfo:
            service.apply("prod", version=1)
        assert "plan/memory" in excinfo.value.report.error_codes

    def test_degraded_budget_gates_rollback(self, service):
        service.plan("prod")
        service.apply("prod")
        service.plan("prod")
        service.apply("prod", version=2)
        v1 = service.get_record("prod", 1)
        service._get("prod").memory_bytes = _max_device_usage(v1) - 1
        with pytest.raises(PlanValidationError) as excinfo:
            service.rollback("prod")
        assert "plan/memory" in excinfo.value.report.error_codes
        # The gate fired before the stack moved: v2 keeps serving.
        assert service.status("prod")["applied_version"] == 2

    def test_validate_deployment_flags_applied_plan_over_current_budget(
        self, service
    ):
        service.plan("prod")
        v1 = service.apply("prod")
        assert service.validate_deployment("prod").ok
        service._get("prod").memory_bytes = _max_device_usage(v1) - 1
        report = service.validate_deployment("prod")
        assert "plan/memory" in report.error_codes

    def test_reshard_apply_validates_once(self, service, tasks2, monkeypatch):
        """reshard(apply=True) reuses the report stamped on its record —
        the full suite must not run a second time inside apply()."""
        service.plan("prod")
        service.apply("prod")
        calls = {"record": 0, "transition": 0}
        real_record = service.validator.validate_record
        real_transition = service.validator.validate_transition

        def counting_record(*args, **kwargs):
            calls["record"] += 1
            return real_record(*args, **kwargs)

        def counting_transition(*args, **kwargs):
            calls["transition"] += 1
            return real_transition(*args, **kwargs)

        monkeypatch.setattr(service.validator, "validate_record",
                            counting_record)
        monkeypatch.setattr(service.validator, "validate_transition",
                            counting_transition)
        added = tuple(
            dataclasses.replace(t, table_id=92_000 + i)
            for i, t in enumerate(tasks2[1].tables[:1])
        )
        record = service.reshard("prod", WorkloadDelta(add_tables=added))
        assert calls == {"record": 1, "transition": 1}
        assert service.status("prod")["applied_version"] == record.version

    def test_rollback_gates_on_store_drift(self, engine, tasks2, tmp_path):
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        service.plan("prod")
        service.apply("prod")
        service.plan("prod")
        service.apply("prod", version=2)
        path = tmp_path / "deps" / "prod" / "plans" / "v1.json"
        data = json.loads(path.read_text())
        data["strategy"] = "rewritten"
        path.write_text(json.dumps(data, indent=1))
        with pytest.raises(PlanValidationError) as excinfo:
            service.rollback("prod")
        assert "rollback/byte-identity" in excinfo.value.report.error_codes
        # The gate fired before the stack moved.
        assert service.status("prod")["applied_version"] == 2


class TestHistoryValidation:
    def test_stats_update_reshard_is_zero_move_clean(self, service, tasks2):
        service.plan("prod")
        service.apply("prod")
        base = tasks2[0].tables
        updates = (
            dataclasses.replace(base[0], pooling_factor=base[0].pooling_factor * 3),
        )
        record = service.reshard(
            "prod",
            WorkloadDelta(update_stats=updates),
            apply=False,
        )
        assert record.validation is not None
        assert record.validation.ok, record.validation.errors

    def test_validator_codes_are_exhaustive(self):
        # Every code the validator can emit is declared, and vice versa:
        # the negative suite keys off this list.
        declared = set(PlanValidator.ALL_CODES)
        assert len(declared) == len(PlanValidator.ALL_CODES)
        prefixes = {c.split("/")[0] for c in declared}
        assert prefixes == {"plan", "record", "diff", "transition",
                            "rollback", "state"}


def test_infeasible_record_is_recorded_not_gated(engine, tasks2):
    """An infeasible plan may be recorded (audit trail) — apply refuses it
    via the plain ValueError path, not a validation crash."""
    service = ShardingService()
    oversized = (
        TableConfig(
            table_id=0, hash_size=10_000_000, dim=128,
            pooling_factor=10.0, zipf_alpha=1.05,
        ),
    )
    service.create_deployment(
        "tight", engine, tables=oversized, memory_bytes=1024**2
    )
    record = service.plan("tight")
    assert not record.feasible
    assert record.validation is not None
    assert record.validation.ok  # an infeasible record is coherent
    with pytest.raises(ValueError, match="no feasible plan record"):
        service.apply("tight")


def test_plan_record_round_trip_with_validation_report(service):
    record = service.plan("prod")
    payload = json.loads(json.dumps(record.to_dict()))
    reloaded = PlanRecord.from_dict(payload)
    assert reloaded.validation == record.validation
    assert reloaded.to_dict() == record.to_dict()
