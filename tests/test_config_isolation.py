"""Cross-config isolation of the shared cache / engine path.

One engine serves many search configurations (per-request ``options``,
tuned-profile injection, the auto-tuner's candidate sweep).  The
contract pinned here: a config's results on a *shared* engine are
bit-identical (under ``deterministic_dict``) to the same requests run on
a fresh engine that never saw any other config.

The regression this guards: ``use_cache=False`` semantics used to be
silently overridden by a provided always-enabled shared cache, so a
"w/o caching" config interleaved with a cached sibling inherited the
sibling's warm entries — observable as a non-zero ``cache_hit_rate``
and a different evaluation count.
"""

import pytest

from repro.api import ShardingEngine, ShardingRequest
from repro.config import SearchConfig
from repro.core import NeuroShard
from repro.core.cache import CostCache

CACHED = SearchConfig(top_n=3, beam_width=2, max_steps=3, grid_points=4)
UNCACHED = SearchConfig(
    top_n=3, beam_width=2, max_steps=3, grid_points=4, use_cache=False
)
WIDER = SearchConfig(
    top_n=4, beam_width=2, max_steps=3, grid_points=4, grid_end_factor=2.0
)


def _options(search: SearchConfig) -> dict:
    # lifelong_cache=True opts into the engine's shared cache — the
    # exact path where one config could poison another.
    return {"search": search.to_dict(), "lifelong_cache": True}


def _request(task, search: SearchConfig, rid: str) -> ShardingRequest:
    return ShardingRequest(
        task=task, strategy="beam", request_id=rid,
        options=_options(search),
    )


def _serve(engine, tasks, search, prefix):
    return [
        engine.shard(_request(task, search, f"{prefix}{i}"))
        .deterministic_dict()
        for i, task in enumerate(tasks)
    ]


def test_uncached_config_is_immune_to_a_warm_shared_engine(
    cluster2, tiny_bundle, tasks2
):
    """Interleave cached + uncached configs over the same tasks on one
    engine; each config's full responses must be bit-identical to a
    fresh engine that served only that config."""
    shared = ShardingEngine(cluster2, tiny_bundle)
    shared_cached, shared_uncached = [], []
    for i, task in enumerate(tasks2):
        shared_cached.append(
            shared.shard(_request(task, CACHED, f"c{i}")).deterministic_dict()
        )
        shared_uncached.append(
            shared.shard(
                _request(task, UNCACHED, f"u{i}")
            ).deterministic_dict()
        )

    fresh_cached = _serve(
        ShardingEngine(cluster2, tiny_bundle), tasks2, CACHED, "c"
    )
    fresh_uncached = _serve(
        ShardingEngine(cluster2, tiny_bundle), tasks2, UNCACHED, "u"
    )
    # The uncached stream must not see the cached stream's warm entries
    # (pre-fix this leaked: non-zero hit rate, fewer evaluations) ...
    assert shared_uncached == fresh_uncached
    assert all(r["cache_hit_rate"] == 0.0 for r in shared_uncached)
    # ... and the uncached stream must not warm (or pollute) the cached
    # stream's view either.
    assert shared_cached == fresh_cached


def test_sibling_enabled_configs_keep_their_plan_contract(
    cluster2, tiny_bundle, tasks2
):
    """Two cache-enabled configs interleaved on one engine legitimately
    share cost memos (the memo values are config-independent), so hit
    *accounting* may differ from fresh engines — but plans, costs, and
    feasibility must stay bit-identical."""

    def plan_view(payload):
        return {
            k: payload[k]
            for k in ("strategy", "feasible", "plan", "simulated_cost_ms",
                      "error")
        }

    shared = ShardingEngine(cluster2, tiny_bundle)
    shared_a, shared_b = [], []
    for i, task in enumerate(tasks2):
        shared_a.append(
            shared.shard(_request(task, CACHED, f"a{i}")).deterministic_dict()
        )
        shared_b.append(
            shared.shard(_request(task, WIDER, f"b{i}")).deterministic_dict()
        )
    fresh_a = _serve(
        ShardingEngine(cluster2, tiny_bundle), tasks2, CACHED, "a"
    )
    fresh_b = _serve(
        ShardingEngine(cluster2, tiny_bundle), tasks2, WIDER, "b"
    )
    assert [plan_view(r) for r in shared_a] == [plan_view(r) for r in fresh_a]
    assert [plan_view(r) for r in shared_b] == [plan_view(r) for r in fresh_b]


def test_disabled_config_never_touches_a_provided_cache(tiny_bundle, tasks2):
    """The config outranks the provided cache: a ``use_cache=False``
    sharder handed a live shared cache must neither read it, write it,
    nor skew its statistics."""
    cache = CostCache(enabled=True)
    sharder = NeuroShard(tiny_bundle, search=UNCACHED, cache=cache)
    result = sharder.shard(tasks2[0])
    assert result.feasible
    assert len(cache) == 0
    assert cache.hits == 0
    assert cache.misses == 0


def test_enabled_config_still_shares_the_provided_cache(tiny_bundle, tasks2):
    """Control for the fix: with caching enabled the provided cache is
    used (warm reuse is the point of the lifelong cache)."""
    cache = CostCache(enabled=True)
    sharder = NeuroShard(tiny_bundle, search=CACHED, cache=cache)
    sharder.shard(tasks2[0])
    assert len(cache) > 0
