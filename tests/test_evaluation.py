"""Tests for repro.evaluation (runner, metrics, reporting)."""

import math

import pytest

from repro.baselines import GreedySharder, RandomSharder
from repro.core import NeuroShard
from repro.config import SearchConfig
from repro.data import ShardingTask
from repro.evaluation import (
    evaluate_sharder,
    execute_plan,
    format_markdown_table,
    format_text_table,
    improvement_percent,
    strongest_baseline,
)


class TestEvaluateSharder:
    def test_greedy_over_tasks(self, tasks2, cluster2):
        ev = evaluate_sharder(GreedySharder("Dim-based"), tasks2, cluster2)
        assert ev.method == "Dim-based"
        assert ev.num_tasks == len(tasks2)
        if ev.scales:
            assert not math.isnan(ev.mean_cost_ms)
            assert ev.mean_cost_ms > 0

    def test_neuroshard_result_accepted(self, tiny_bundle, tasks2, cluster2):
        sharder = NeuroShard(
            tiny_bundle,
            search=SearchConfig(top_n=2, beam_width=1, max_steps=2, grid_points=3),
        )
        ev = evaluate_sharder(sharder, tasks2[:2], cluster2)
        assert ev.num_success >= 1

    def test_failure_marks_dash_semantics(self, tasks2, cluster2):
        class NeverSharder:
            name = "Never"

            def shard(self, task):
                return None

        ev = evaluate_sharder(NeverSharder(), tasks2, cluster2)
        assert not ev.scales
        assert math.isnan(ev.mean_cost_ms)
        assert ev.success_rate == 0.0

    def test_partial_failure(self, tasks2, cluster2):
        class FlakySharder:
            name = "Flaky"

            def __init__(self):
                self.inner = GreedySharder("Dim-based")
                self.calls = 0

            def shard(self, task):
                self.calls += 1
                return None if self.calls == 1 else self.inner.shard(task)

        ev = evaluate_sharder(FlakySharder(), tasks2, cluster2)
        assert not ev.scales
        assert math.isnan(ev.mean_cost_ms)
        assert not math.isnan(ev.mean_cost_of_successes_ms)

    def test_device_count_mismatch(self, tasks2, cluster4):
        with pytest.raises(ValueError):
            evaluate_sharder(RandomSharder(), tasks2, cluster4)

    def test_bad_return_type(self, tasks2, cluster2):
        class WeirdSharder:
            name = "Weird"

            def shard(self, task):
                return 42

        with pytest.raises(TypeError):
            evaluate_sharder(WeirdSharder(), tasks2, cluster2)

    def test_execute_plan_oom_returns_none(self, tasks2, cluster2):
        plan = GreedySharder("Dim-based").shard(tasks2[0])
        tight_task = ShardingTask(
            tables=tasks2[0].tables, num_devices=2, memory_bytes=1024
        )
        from repro.hardware import SimulatedCluster
        from repro.config import ClusterConfig

        tight_cluster = SimulatedCluster(
            ClusterConfig(num_devices=2, memory_bytes=1024)
        )
        assert execute_plan(plan, tight_task, tight_cluster) is None


class TestMetrics:
    def test_improvement_percent(self):
        assert improvement_percent(100.0, 80.0) == pytest.approx(20.0)
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)

    def test_improvement_nan_propagation(self):
        assert math.isnan(improvement_percent(float("nan"), 10.0))
        assert math.isnan(improvement_percent(10.0, float("nan")))
        assert math.isnan(improvement_percent(0.0, 10.0))

    def test_strongest_baseline(self, tasks2, cluster2):
        evs = {
            name: evaluate_sharder(GreedySharder(name), tasks2, cluster2)
            for name in ("Dim-based", "Size-based")
        }
        name, cost = strongest_baseline(evs)
        if not math.isnan(cost):
            assert name in evs
            assert cost == min(
                e.mean_cost_ms for e in evs.values() if not math.isnan(e.mean_cost_ms)
            )

    def test_strongest_baseline_empty(self):
        name, cost = strongest_baseline({})
        assert name == ""
        assert math.isnan(cost)


class TestReporting:
    def test_text_table_renders_nan_as_dash(self):
        table = format_text_table(
            ["method", "cost"],
            [["A", 1.234], ["B", float("nan")]],
            precision=2,
        )
        assert "1.23" in table
        assert "-" in table.splitlines()[-1]

    def test_text_table_title(self):
        table = format_text_table(["x"], [[1]], title="Table 1")
        assert table.startswith("Table 1")

    def test_markdown_table_structure(self):
        md = format_markdown_table(["a", "b"], [[1, 2.5]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2.50 |"
