"""Offline auditor behavior: localization, legacy stores, determinism.

The contract under test (ISSUE 8 acceptance): on a lifecycle store with
several versions, flipping one byte in any middle record — or deleting
or reordering any record file — makes the audit fail and name the first
broken version, while an untampered store (including a pre-chain legacy
store) audits clean offline with no engine or bundle loaded.
"""

import json
import shutil

import pytest

from repro.api import PlanStore, ShardingEngine, ShardingService
from repro.data.table import TableConfig
from repro.provenance import audit_deployment, audit_store

TABLES = tuple(
    TableConfig(
        table_id=i, hash_size=2000, dim=16, pooling_factor=4.0,
        zipf_alpha=0.8,
    )
    for i in range(4)
)


def _build_store(root, cluster, versions=5):
    """A store-backed deployment with ``versions`` recorded plans."""
    store = PlanStore(root)
    service = ShardingService(store)
    service.create_deployment("prod", ShardingEngine(cluster), tables=TABLES)
    service.plan("prod")
    service.apply("prod")
    for _ in range(versions - 1):
        service.plan("prod")
    service.apply("prod", version=2)
    return store


@pytest.fixture(scope="module")
def pristine(tmp_path_factory, cluster2):
    """A session-built 5-version store, copied per test for mutation."""
    root = tmp_path_factory.mktemp("audit") / "deps"
    _build_store(root, cluster2)
    return root


@pytest.fixture()
def store_copy(pristine, tmp_path):
    shutil.copytree(pristine, tmp_path / "deps")
    return PlanStore(tmp_path / "deps")


def _record_path(store, version):
    return store.root / "prod" / "plans" / f"v{version}.json"


class TestCleanStore:
    def test_audits_clean_with_no_engine_or_bundle(self, store_copy):
        report = audit_deployment(store_copy, "prod")
        assert report.ok, [f.to_dict() for f in report.findings]
        assert report.findings == ()  # not even advisories
        assert report.versions == (1, 2, 3, 4, 5)
        assert report.applied_stack == (1, 2)
        assert report.first_broken_version is None

    def test_audit_is_deterministic(self, store_copy):
        first = json.dumps(audit_deployment(store_copy, "prod").to_dict())
        second = json.dumps(audit_deployment(store_copy, "prod").to_dict())
        assert first == second

    def test_audit_store_covers_all_deployments(self, store_copy):
        reports = audit_store(store_copy)
        assert [r.deployment for r in reports] == ["prod"]
        assert all(r.ok for r in reports)

    def test_unknown_deployment_raises(self, store_copy):
        with pytest.raises(FileNotFoundError):
            audit_deployment(store_copy, "nope")


class TestTamperLocalization:
    @pytest.mark.parametrize("version", [2, 3, 4])
    def test_edited_middle_record_is_pinpointed(self, store_copy, version):
        path = _record_path(store_copy, version)
        data = json.loads(path.read_text())
        data["simulated_cost_ms"] = 123.456
        path.write_text(json.dumps(data, indent=1))
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert report.first_broken_version == version
        assert "chain/content-mismatch" in report.error_codes
        # Localized: no *error* findings on any other version.
        assert {f.version for f in report.errors} == {version}

    @pytest.mark.parametrize("claimed", [0, 7])
    def test_tampered_version_field_blames_the_file(self, store_copy, claimed):
        """A flip of the version *field* must not misdirect the blame to
        a version with no file to restore — the validator's findings
        name the claimed version, the audit re-anchors them at the file
        making the claim."""
        path = _record_path(store_copy, 2)
        data = json.loads(path.read_text())
        data["version"] = claimed
        path.write_text(json.dumps(data, indent=1))
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert "chain/version-mismatch" in report.error_codes
        assert report.first_broken_version == 2
        assert all(f.version in report.versions for f in report.errors)

    @pytest.mark.parametrize("version", [2, 3, 4])
    def test_deleted_record_is_blamed_at_the_deleted_version(
        self, store_copy, version
    ):
        _record_path(store_copy, version).unlink()
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert report.first_broken_version == version
        assert "chain/missing-record" in report.error_codes

    def test_reordered_records_are_detected(self, store_copy):
        a, b = _record_path(store_copy, 3), _record_path(store_copy, 4)
        a_bytes, b_bytes = a.read_bytes(), b.read_bytes()
        a.write_bytes(b_bytes)
        b.write_bytes(a_bytes)
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert report.first_broken_version == 3
        assert "chain/version-mismatch" in report.error_codes

    def test_validation_report_tamper_is_detected(self, store_copy):
        """The chain covers the validation report: quietly blessing a
        failed verdict breaks the content digest."""
        path = _record_path(store_copy, 3)
        data = json.loads(path.read_text())
        data["validation"]["checks"] = []
        path.write_text(json.dumps(data, indent=1))
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert report.first_broken_version == 3
        assert "chain/content-mismatch" in report.error_codes

    def test_recomputed_forgery_breaks_at_the_successor(self, store_copy):
        """An attacker who edits v3 *and* recomputes v3's own digests
        consistently still breaks v4's committed link — detection is
        preserved, localized to the first record that disagrees."""
        from repro.provenance import link_record, record_digest

        path = _record_path(store_copy, 3)
        data = json.loads(path.read_text())
        data["simulated_cost_ms"] = 123.456
        data["validation"]["validated_digest"] = record_digest(data)
        old_link = data["provenance"]
        data["provenance"] = link_record(
            data, old_link["prev_version"], old_link["prev_digest"]
        ).to_dict()
        path.write_text(json.dumps(data, indent=1))
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert report.first_broken_version == 4
        assert "chain/broken-link" in report.error_codes

    def test_truncated_applied_stack_is_detected(self, store_copy):
        state_path = store_copy.root / "prod" / "state.json"
        state = json.loads(state_path.read_text())
        state["applied_stack"] = state["applied_stack"][:-1]
        state_path.write_text(json.dumps(state, indent=2))
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert "chain/state-mismatch" in report.error_codes

    def test_edited_memory_budget_is_detected(self, store_copy):
        state_path = store_copy.root / "prod" / "state.json"
        state = json.loads(state_path.read_text())
        state["memory_bytes"] = state["memory_bytes"] * 2
        state_path.write_text(json.dumps(state, indent=2))
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert "chain/state-mismatch" in report.error_codes

    def test_edited_metadata_breaks_the_genesis_anchor(self, store_copy):
        meta_path = store_copy.root / "prod" / "deployment.json"
        meta = json.loads(meta_path.read_text())
        meta["memory_bytes"] = meta["memory_bytes"] * 2
        meta_path.write_text(json.dumps(meta, indent=2))
        report = audit_deployment(store_copy, "prod")
        assert not report.ok
        assert report.first_broken_version == 1
        assert "chain/broken-link" in report.error_codes


class TestLegacyStore:
    @pytest.fixture()
    def legacy_store(self, store_copy):
        """A pre-PR-8 store: chain fields and stamps stripped in place."""
        for version in store_copy.versions("prod"):
            path = _record_path(store_copy, version)
            data = json.loads(path.read_text())
            data.pop("provenance", None)
            if data.get("validation"):
                data["validation"].pop("code_fingerprint", None)
                data["validation"].pop("validated_digest", None)
            path.write_text(json.dumps(data, indent=1))
        state_path = store_copy.root / "prod" / "state.json"
        state = json.loads(state_path.read_text())
        state.pop("provenance", None)
        state_path.write_text(json.dumps(state, indent=2))
        return store_copy

    def test_legacy_store_audits_clean_with_advisories(self, legacy_store):
        report = audit_deployment(legacy_store, "prod")
        assert report.ok, [f.to_dict() for f in report.findings]
        codes = {f.code for f in report.advisories}
        assert "chain/legacy-record" in codes
        assert "chain/legacy-state" in codes

    def test_legacy_store_still_opens_and_serves(self, legacy_store, cluster2):
        engine = ShardingEngine(cluster2)
        service = ShardingService.open(legacy_store, lambda meta: engine)
        assert service.recovery_notes == {}
        assert service.status("prod")["applied_version"] == 2
        assert service.validate_deployment("prod").ok

    def test_new_records_chain_over_legacy_history(self, legacy_store, cluster2):
        """A legacy store upgraded in place: the first post-upgrade
        record links to the legacy predecessor's content digest."""
        from repro.provenance import content_digest

        engine = ShardingEngine(cluster2)
        service = ShardingService.open(legacy_store, lambda meta: engine)
        record = service.plan("prod")
        assert record.provenance is not None
        prev = legacy_store.load_record("prod", record.version - 1)
        assert record.provenance.prev_digest == content_digest(prev)
        report = audit_deployment(legacy_store, "prod")
        assert report.ok, [f.to_dict() for f in report.findings]

    def test_legacy_tamper_is_still_advisory_only(self, legacy_store):
        """Without chain fields the auditor cannot prove tampering from
        digests alone — but the validator re-run still catches edits
        that break invariants, and the audit never crashes."""
        report = audit_deployment(legacy_store, "prod")
        assert report.ok


class TestServiceAudit:
    def test_storeless_service_refuses(self, cluster2):
        service = ShardingService(store=None)
        service.create_deployment(
            "mem", ShardingEngine(cluster2), tables=TABLES
        )
        with pytest.raises(ValueError, match="store"):
            service.audit_deployment("mem")

    def test_unknown_deployment_raises(self, store_copy, cluster2):
        engine = ShardingEngine(cluster2)
        service = ShardingService.open(store_copy, lambda meta: engine)
        with pytest.raises(FileNotFoundError):
            service.audit_deployment("nope")

    def test_recovery_notes_are_cross_checked(self, store_copy, cluster2):
        """Damage open() recovered from must be visible to the audit;
        a note blaming an undamaged version is flagged as unconfirmed."""
        path = _record_path(store_copy, 4)
        path.write_bytes(path.read_bytes()[:50])
        engine = ShardingEngine(cluster2)
        service = ShardingService.open(store_copy, lambda meta: engine)
        assert "prod" in service.recovery_notes
        report = service.audit_deployment("prod")
        assert not report.ok
        assert report.first_broken_version == 4
        # The note is confirmed by the finding: no unconfirmed advisory.
        assert "chain/recovery-unconfirmed" not in {
            f.code for f in report.findings
        }

    def test_unconfirmed_recovery_note_is_advisory(self, store_copy, cluster2):
        engine = ShardingEngine(cluster2)
        service = ShardingService.open(store_copy, lambda meta: engine)
        service.recovery_notes["prod"] = [
            "dropped unreadable plan record v3 (stale note)"
        ]
        report = service.audit_deployment("prod")
        assert report.ok  # advisory, not error
        advisory_codes = [f.code for f in report.advisories]
        assert "chain/recovery-unconfirmed" in advisory_codes
