"""Tests for the scenario atlas (repro.scenarios + trace replay).

Mirrors the strategy-registry contract tests: every promised scenario is
registered, unknown names fail helpfully, duplicates are rejected — plus
the atlas-specific guarantees: same seed ⇒ byte-identical trace JSON and
byte-identical replay metrics, versioned schema round-trips, and the
stats-update reshard path pricing zero migration for pure access-pattern
changes.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.api import (
    ReshardConfig,
    ShardingEngine,
    ShardingRequest,
    ShardingService,
    WorkloadDelta,
    incremental_reshard,
)
from repro.config import SearchConfig
from repro.scenarios import (
    ScenarioReport,
    ScenarioStepMetrics,
    TraceStep,
    UnknownScenarioError,
    WorkloadTrace,
    available_scenarios,
    format_scenario_report,
    iter_scenarios,
    make_trace,
    rebuild_delta,
    register_scenario,
    scenario_info,
    stats_update_delta,
)
from repro.scenarios import registry as scenario_registry
from repro.evaluation import replay_workload_trace

#: Every scenario the atlas promises (ISSUE 4 acceptance floor).
EXPECTED = {
    "diurnal",
    "flash_crowd",
    "table_churn",
    "dim_migration",
    "skew_drift",
    "multi_tenant",
    "device_degradation",
    "capacity_crunch",
}

SMALL_SEARCH = SearchConfig(top_n=3, beam_width=2, max_steps=4, grid_points=4)


@pytest.fixture(scope="module")
def engine2(cluster2, tiny_bundle):
    """A small serving engine over the session bundle."""
    return ShardingEngine(cluster2, tiny_bundle, search=SMALL_SEARCH)


def small_trace(pool, name: str, seed: int = 3) -> WorkloadTrace:
    return make_trace(name, pool, num_devices=2, num_tables=8, seed=seed)


# ----------------------------------------------------------------------
# registry contract
# ----------------------------------------------------------------------


class TestRegistry:
    def test_every_expected_scenario_registered(self):
        assert EXPECTED <= set(available_scenarios())
        assert len(available_scenarios()) >= 8

    def test_every_info_is_complete(self):
        for info in iter_scenarios():
            assert info.description
            assert callable(info.factory)
            assert info.default_steps >= 1
            assert scenario_info(info.name) is info

    def test_iter_scenarios_sorted_and_complete(self):
        names = [info.name for info in iter_scenarios()]
        assert names == sorted(names)
        assert set(names) == set(available_scenarios())

    def test_tag_filtering(self):
        capacity = available_scenarios(tag="capacity")
        assert "capacity_crunch" in capacity
        assert "diurnal" not in capacity
        assert available_scenarios(tag="no-such-tag") == []

    def test_unknown_name_is_helpful(self, small_pool):
        with pytest.raises(UnknownScenarioError) as exc:
            make_trace("quantum_workload", small_pool)
        message = str(exc.value)
        assert "quantum_workload" in message
        assert "available scenarios" in message
        assert "diurnal" in message  # the listing names real scenarios

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("diurnal", description="clash")(lambda pool: None)

    def test_fresh_registration_round_trips(self):
        name = "test_only_scenario"
        try:
            @register_scenario(name, description="one step", default_steps=1)
            def _factory(pool, **kwargs):  # pragma: no cover - not replayed
                raise NotImplementedError

            assert name in available_scenarios()
            assert scenario_info(name).factory is _factory
        finally:
            scenario_registry._REGISTRY.pop(name, None)

    def test_empty_description_rejected(self):
        with pytest.raises(ValueError, match="description"):
            register_scenario("nameless", description="")(lambda pool: None)


# ----------------------------------------------------------------------
# trace generation: determinism + schema
# ----------------------------------------------------------------------


class TestTraceGeneration:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_same_seed_byte_identical_json(self, small_pool, name):
        first = small_trace(small_pool, name).to_dict()
        second = small_trace(small_pool, name).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_different_seed_different_trace(self, small_pool):
        a = small_trace(small_pool, "table_churn", seed=1)
        b = small_trace(small_pool, "table_churn", seed=2)
        assert a.to_dict() != b.to_dict()

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_round_trip_identity(self, small_pool, name):
        trace = small_trace(small_pool, name)
        assert WorkloadTrace.from_dict(trace.to_dict()) == trace

    def test_timestamps_strictly_increase(self, small_pool):
        for name in sorted(EXPECTED):
            times = [s.timestamp for s in small_trace(small_pool, name).steps]
            assert all(b > a for a, b in zip(times, times[1:])), name

    def test_scenario_knobs_respected(self, small_pool):
        trace = make_trace(
            "table_churn", small_pool, num_devices=2, num_tables=6,
            steps=3, seed=0,
        )
        assert trace.num_steps == 3
        assert trace.num_devices == 2

    def test_too_few_steps_rejected(self, small_pool):
        with pytest.raises(ValueError, match="steps"):
            make_trace("flash_crowd", small_pool, steps=1)


class TestTraceSchema:
    def test_version_mismatch_rejected(self, small_pool):
        payload = small_trace(small_pool, "diurnal").to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            WorkloadTrace.from_dict(payload)

    def test_step_version_mismatch_rejected(self):
        step = TraceStep(timestamp=1.0)
        payload = step.to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            TraceStep.from_dict(payload)

    def test_step_validation(self):
        with pytest.raises(ValueError, match="traffic_multiplier"):
            TraceStep(timestamp=1.0, traffic_multiplier=0.0)
        with pytest.raises(ValueError, match="memory_scale"):
            TraceStep(timestamp=1.0, memory_scale=-1.0)

    def test_trace_validation(self, small_pool):
        trace = small_trace(small_pool, "diurnal")
        with pytest.raises(ValueError, match="increasing"):
            trace.with_steps(
                [TraceStep(timestamp=2.0), TraceStep(timestamp=1.0)]
            )
        with pytest.raises(ValueError, match="initial table"):
            dataclasses.replace(trace, initial_tables=())


# ----------------------------------------------------------------------
# the stats-update delta
# ----------------------------------------------------------------------


class TestStatsUpdates:
    def test_delta_helpers(self, small_pool):
        tables = tuple(small_pool.tables[:2])
        stats = stats_update_delta(tables)
        assert stats.update_stats == tables
        assert not stats.add_tables and not stats.remove_table_ids
        assert not stats.is_empty
        rebuild = rebuild_delta(tables)
        assert rebuild.add_tables == tables
        assert rebuild.remove_table_ids == tuple(t.table_id for t in tables)

    def test_contradictory_delta_rejected(self, small_pool):
        table = small_pool.tables[0]
        with pytest.raises(ValueError, match="update_stats"):
            WorkloadDelta(
                update_stats=(table,), remove_table_ids=(table.table_id,)
            )
        with pytest.raises(ValueError, match="update_stats"):
            WorkloadDelta(update_stats=(table, table))

    def test_round_trip(self, small_pool):
        delta = stats_update_delta(small_pool.tables[:2])
        assert WorkloadDelta.from_dict(delta.to_dict()) == delta

    def test_unknown_update_id_rejected(self, engine2, tasks2):
        task = tasks2[0]
        response = engine2.shard(ShardingRequest(task))
        assert response.feasible
        ghost = dataclasses.replace(task.tables[0], table_id=987654)
        with pytest.raises(ValueError, match="not in the applied workload"):
            incremental_reshard(
                engine2,
                response.plan,
                task.tables,
                WorkloadDelta(update_stats=(ghost,)),
            )

    def test_pure_stats_update_moves_no_bytes(self, engine2, tasks2):
        """An access-pattern change must not be priced as migration."""
        task = tasks2[0]
        response = engine2.shard(ShardingRequest(task))
        assert response.feasible
        updates = tuple(
            dataclasses.replace(
                t, pooling_factor=round(t.pooling_factor * 3.0, 4)
            )
            for t in task.tables[:2]
        )
        result = incremental_reshard(
            engine2,
            response.plan,
            task.tables,
            WorkloadDelta(update_stats=updates),
            config=ReshardConfig(allow_full_search=False, max_refine_steps=0),
        )
        assert result.chosen == "incremental"
        assert result.response.feasible
        assert result.diff.moved_bytes == 0
        assert result.diff.migration_cost_ms == 0.0
        # The updated statistics reached the task both candidates answer.
        updated = {t.table_id: t for t in updates}
        for t in result.new_task.tables:
            if t.table_id in updated:
                assert t.pooling_factor == updated[t.table_id].pooling_factor


# ----------------------------------------------------------------------
# replay through the lifecycle service
# ----------------------------------------------------------------------


class TestReplay:
    @pytest.fixture(scope="class")
    def crowd_report(self, small_pool, engine2):
        trace = make_trace(
            "flash_crowd", small_pool, num_devices=2, num_tables=8,
            steps=5, seed=3,
        )
        config = ReshardConfig(
            migration_budget_ms=2_000.0, max_refine_steps=8
        )
        return trace, replay_workload_trace(
            trace, engine2, reshard_config=config
        )

    def test_report_shape(self, crowd_report):
        trace, report = crowd_report
        assert report.num_steps == trace.num_steps + 1
        assert report.steps[0].chosen == "plan"
        assert report.steps[0].feasible
        assert [s.step for s in report.steps] == list(range(report.num_steps))
        assert report.scenario == "flash_crowd"

    def test_serving_cost_tracks_traffic(self, crowd_report):
        _, report = crowd_report
        for s in report.steps:
            assert math.isfinite(s.serving_cost_ms)
            if s.traffic_multiplier > 1.0 and not s.resharded:
                # More lookups on the same plan cannot get cheaper.
                assert s.serving_cost_ms > s.plan_cost_ms

    def test_replay_metrics_deterministic(
        self, small_pool, cluster2, tiny_bundle, crowd_report
    ):
        trace, report = crowd_report
        fresh_engine = ShardingEngine(
            cluster2, tiny_bundle, search=SMALL_SEARCH
        )
        again = replay_workload_trace(
            trace,
            fresh_engine,
            reshard_config=ReshardConfig(
                migration_budget_ms=2_000.0, max_refine_steps=8
            ),
        )
        assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
            report.to_dict(), sort_keys=True
        )

    def test_report_round_trip_and_version_check(self, crowd_report):
        _, report = crowd_report
        assert ScenarioReport.from_dict(report.to_dict()) == report
        payload = report.to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            ScenarioReport.from_dict(payload)

    def test_format_report_mentions_every_step(self, crowd_report):
        _, report = crowd_report
        text = format_scenario_report(report)
        assert "flash_crowd" in text
        for s in report.steps:
            assert f"\n{s.step} " in text or text.startswith(f"{s.step} ")

    def test_memory_scale_reshards_deployment(self, small_pool, engine2):
        trace = make_trace(
            "device_degradation", small_pool, num_devices=2, num_tables=8,
            steps=4, seed=3,
        )
        service = ShardingService()
        report = replay_workload_trace(
            trace,
            engine2,
            reshard_config=ReshardConfig(max_refine_steps=4),
            service=service,
            deployment="degraded",
        )
        scales = [s.memory_scale for s in trace.steps]
        # The deployment's budget ends at the final step's scale.
        expected = int(round(trace.memory_bytes * scales[-1]))
        assert service.status("degraded")["memory_bytes"] == expected
        reported = [s.memory_bytes for s in report.steps[1:]]
        assert reported == [
            int(round(trace.memory_bytes * s)) for s in scales
        ]
        # Scale changes reshard; repeated scales hold.
        changed = [
            i for i, s in enumerate(scales)
            if s != ([1.0] + scales)[i]
        ]
        resharded = [
            i for i, row in enumerate(report.steps[1:]) if row.resharded
        ]
        assert resharded == changed

    def test_engine_without_bundle_rejected(self, small_pool, cluster2):
        trace = small_trace(small_pool, "diurnal")
        with pytest.raises(ValueError, match="bundle"):
            replay_workload_trace(trace, ShardingEngine(cluster2))

    def test_device_count_mismatch_rejected(
        self, small_pool, cluster2, tiny_bundle
    ):
        trace = make_trace(
            "diurnal", small_pool, num_devices=4, num_tables=8, seed=3
        )
        engine = ShardingEngine(cluster2, tiny_bundle, search=SMALL_SEARCH)
        with pytest.raises(ValueError, match="devices"):
            replay_workload_trace(trace, engine)


class TestServiceMemoryHook:
    def test_reshard_memory_override_persists(self, engine2, tasks2):
        task = tasks2[0]
        service = ShardingService()
        service.create_deployment(
            "shrink", engine2, tables=task.tables,
            memory_bytes=task.memory_bytes,
        )
        service.plan("shrink")
        service.apply("shrink")
        new_memory = task.memory_bytes // 2
        record = service.reshard(
            "shrink",
            WorkloadDelta(),
            config=ReshardConfig(max_refine_steps=0),
            memory_bytes=new_memory,
        )
        assert record.memory_bytes == new_memory
        assert service.status("shrink")["memory_bytes"] == new_memory

    def test_reshard_memory_must_be_positive(self, engine2, tasks2):
        task = tasks2[0]
        service = ShardingService()
        service.create_deployment("bad", engine2, tables=task.tables)
        service.plan("bad")
        service.apply("bad")
        with pytest.raises(ValueError, match="memory_bytes"):
            service.reshard("bad", WorkloadDelta(), memory_bytes=0)


class TestBudgetPersistence:
    """The degraded budget is deployment state: it survives restarts."""

    def _factory(self, cluster2, tiny_bundle):
        def factory(meta):
            return ShardingEngine(cluster2, tiny_bundle, search=SMALL_SEARCH)
        return factory

    def test_budget_survives_reopen_and_rollback(
        self, tmp_path, cluster2, tiny_bundle, engine2, tasks2
    ):
        from repro.api import PlanStore

        task = tasks2[0]
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment(
            "degraded", engine2, tables=task.tables,
            memory_bytes=task.memory_bytes,
        )
        service.plan("degraded")
        service.apply("degraded")
        # A second applied version, so a rollback target exists whether
        # or not the budgeted reshard below ends up applied.
        service.plan("degraded")
        service.apply("degraded")
        shrunk = int(task.memory_bytes * 0.9)
        service.reshard(
            "degraded",
            WorkloadDelta(),
            config=ReshardConfig(max_refine_steps=0),
            memory_bytes=shrunk,
        )
        # Rolling the *plan* back does not restore the lost capacity.
        service.rollback("degraded")
        assert service.status("degraded")["memory_bytes"] == shrunk
        # Neither does a restart.
        reopened = ShardingService.open(
            store, self._factory(cluster2, tiny_bundle)
        )
        assert reopened.status("degraded")["memory_bytes"] == shrunk

    def test_budget_survives_infeasible_reshard_restart(
        self, tmp_path, cluster2, tiny_bundle, engine2, tasks2
    ):
        from repro.api import PlanStore

        task = tasks2[0]
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment(
            "squeezed", engine2, tables=task.tables,
            memory_bytes=task.memory_bytes,
        )
        service.plan("squeezed")
        service.apply("squeezed")
        # A budget nothing fits: the reshard records an infeasible
        # version and applies nothing — but the capacity is still gone.
        record = service.reshard(
            "squeezed",
            WorkloadDelta(),
            config=ReshardConfig(max_refine_steps=0),
            memory_bytes=1,
        )
        assert not record.feasible
        assert service.status("squeezed")["memory_bytes"] == 1
        reopened = ShardingService.open(
            store, self._factory(cluster2, tiny_bundle)
        )
        assert reopened.status("squeezed")["memory_bytes"] == 1


class TestReplayExitContract:
    def test_all_reshard_steps_infeasible_is_exit_2(self, capsys):
        from repro.cli import EXIT_ALL_INFEASIBLE, _replay_exit

        def row(step, resharded, feasible):
            return ScenarioStepMetrics(
                step=step, timestamp=float(step), label="", resharded=resharded,
                feasible=feasible, chosen="none" if resharded else "plan",
                num_tables=1, num_shards=1, traffic_multiplier=1.0,
                memory_bytes=1, plan_cost_ms=1.0, serving_cost_ms=1.0,
                moved_mb=0.0, migration_ms=0.0, within_budget=False,
                budget_bound=False, scratch_cost_ms=math.nan,
                scratch_moved_mb=0.0, scratch_migration_ms=math.nan,
                cumulative_moved_mb=0.0, cumulative_scratch_moved_mb=0.0,
            )

        report = ScenarioReport(
            scenario="synthetic", seed=0, num_devices=2, memory_bytes=1,
            strategy=None, reshard_config={},
            steps=(row(0, False, True), row(1, True, False), row(2, True, False)),
        )
        assert _replay_exit(report, "synthetic") == EXIT_ALL_INFEASIBLE
        err = capsys.readouterr().err
        assert "reshard steps" in err and "1, 2" in err

    def test_partial_infeasibility_is_exit_0(self, capsys):
        from repro.cli import _replay_exit

        # One feasible reshard step flips the exit back to 0.
        def row(step, resharded, feasible):
            return ScenarioStepMetrics(
                step=step, timestamp=float(step), label="", resharded=resharded,
                feasible=feasible, chosen="incremental" if feasible else "none",
                num_tables=1, num_shards=1, traffic_multiplier=1.0,
                memory_bytes=1, plan_cost_ms=1.0, serving_cost_ms=1.0,
                moved_mb=0.0, migration_ms=0.0, within_budget=True,
                budget_bound=False, scratch_cost_ms=math.nan,
                scratch_moved_mb=0.0, scratch_migration_ms=math.nan,
                cumulative_moved_mb=0.0, cumulative_scratch_moved_mb=0.0,
            )
        report = ScenarioReport(
            scenario="synthetic", seed=0, num_devices=2, memory_bytes=1,
            strategy=None, reshard_config={},
            steps=(row(0, False, True), row(1, True, True), row(2, True, False)),
        )
        assert _replay_exit(report, "synthetic") == 0
