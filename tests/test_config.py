"""Tests for repro.config."""

import numpy as np
import pytest

from repro.config import (
    DIMENSION_GRID,
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TaskConfig,
    TrainConfig,
    rng_from_seed,
    spawn_rngs,
)


class TestRngHelpers:
    def test_rng_from_int_is_deterministic(self):
        a = rng_from_seed(5).integers(0, 1000, size=8)
        b = rng_from_seed(5).integers(0, 1000, size=8)
        assert np.array_equal(a, b)

    def test_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(3, 4)
        assert len(streams) == 4
        draws = [g.random() for g in streams]
        assert len(set(draws)) == 4

    def test_spawn_rngs_stable(self):
        a = [g.random() for g in spawn_rngs(9, 3)]
        b = [g.random() for g in spawn_rngs(9, 3)]
        assert a == b

    def test_spawn_rngs_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSearchConfig:
    def test_defaults_match_paper(self):
        cfg = SearchConfig()
        assert (cfg.top_n, cfg.beam_width, cfg.max_steps, cfg.grid_points) == (
            10,
            3,
            10,
            11,
        )
        assert cfg.grid_end_factor == 1.5

    @pytest.mark.parametrize(
        "field,value",
        [
            ("top_n", 0),
            ("beam_width", 0),
            ("max_steps", -1),
            ("grid_points", 0),
            ("grid_end_factor", 0.5),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            SearchConfig(**{field: value})

    @pytest.mark.parametrize(
        "name,attr",
        [
            ("beam_search", "use_beam_search"),
            ("grid_search", "use_grid_search"),
            ("caching", "use_cache"),
        ],
    )
    def test_ablations(self, name, attr):
        cfg = SearchConfig().with_ablation(name)
        assert getattr(cfg, attr) is False

    def test_unknown_ablation(self):
        with pytest.raises(ValueError, match="unknown ablation"):
            SearchConfig().with_ablation("nope")


class TestCollectionConfig:
    def test_augment_dims_must_be_multiple_of_4(self):
        with pytest.raises(ValueError, match="divisible by 4"):
            CollectionConfig(augment_dims=(6,))

    def test_table_range_validation(self):
        with pytest.raises(ValueError):
            CollectionConfig(min_tables=5, max_tables=2)

    def test_for_devices_scales_placement_range(self):
        base = CollectionConfig()
        eight = base.for_devices(8)
        assert eight.min_placement_tables == 20
        assert eight.max_placement_tables == 120
        four = base.for_devices(4)
        assert four.min_placement_tables == 10
        assert four.max_placement_tables == 60


class TestTrainConfig:
    def test_split_must_leave_test_data(self):
        with pytest.raises(ValueError):
            TrainConfig(train_frac=0.9, valid_frac=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=0)


class TestTaskConfig:
    def test_dim_choices_reproduce_table5_rows(self):
        # Paper Table 5 skips 32 in the max-dim-64 and 128 rows.
        assert TaskConfig(max_dim=128).dim_choices == (4, 8, 16, 64, 128)
        assert TaskConfig(max_dim=64).dim_choices == (4, 8, 16, 64)
        assert TaskConfig(max_dim=32).dim_choices == (4, 8, 16, 32)
        assert TaskConfig(max_dim=4).dim_choices == (4,)

    def test_paper_grid_has_12_settings(self):
        grid = TaskConfig.paper_grid()
        assert len(grid) == 12
        assert {g.num_devices for g in grid} == {4, 8}
        assert {g.max_dim for g in grid} == set(DIMENSION_GRID)
        for g in grid:
            if g.num_devices == 4:
                assert (g.min_tables, g.max_tables) == (10, 60)
            else:
                assert (g.min_tables, g.max_tables) == (20, 120)

    def test_max_dim_must_be_on_grid(self):
        with pytest.raises(ValueError):
            TaskConfig(max_dim=100)

    def test_cluster_matches_task(self):
        cfg = TaskConfig(num_devices=8)
        cluster = cfg.cluster(batch_size=1024)
        assert cluster.num_devices == 8
        assert cluster.batch_size == 1024
        assert cluster.memory_bytes == cfg.memory_bytes


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_devices=0)
        with pytest.raises(ValueError):
            ClusterConfig(memory_bytes=0)
        with pytest.raises(ValueError):
            ClusterConfig(batch_size=0)
