"""Property-based tests of search invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SearchConfig, TaskConfig
from repro.core import CostCache, NeuroShardSimulator, beam_search, greedy_grid_search
from repro.data import generate_tasks
from repro.hardware.memory import MemoryModel

SEARCH = SearchConfig(top_n=2, beam_width=1, max_steps=2, grid_points=3)


def _task(small_pool, seed: int):
    cfg = TaskConfig(
        num_devices=2,
        max_dim=64,
        min_tables=3,
        max_tables=8,
        memory_bytes=2 * 1024**3,
    )
    return generate_tasks(small_pool, cfg, count=1, seed=seed)[0]


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_grid_search_partitions_and_fits(tiny_bundle, small_pool, seed):
    task = _task(small_pool, seed)
    simulator = NeuroShardSimulator(tiny_bundle, CostCache())
    memory = MemoryModel(task.memory_bytes)
    result = greedy_grid_search(
        list(task.tables), 2, simulator, memory, SEARCH
    )
    if not result.feasible:
        return
    # Every table assigned to exactly one valid device.
    assert len(result.assignment) == task.num_tables
    assert all(d in (0, 1) for d in result.assignment)
    # Memory respected on both devices.
    per_device_bytes = [0, 0]
    for table, device in zip(task.tables, result.assignment):
        per_device_bytes[device] += memory.table_bytes(table)
    assert all(b <= memory.memory_bytes for b in per_device_bytes)
    # Reported cost equals the simulator's cost of the assignment.
    per_device = [[], []]
    for table, device in zip(task.tables, result.assignment):
        per_device[device].append(table)
    assert result.cost_ms == pytest.approx(
        simulator.plan_cost(per_device).max_cost_ms
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_beam_search_plan_is_legal(tiny_bundle, small_pool, seed):
    task = _task(small_pool, seed)
    simulator = NeuroShardSimulator(tiny_bundle, CostCache())
    memory = MemoryModel(task.memory_bytes)
    result = beam_search(list(task.tables), 2, simulator, memory, SEARCH)
    if not result.feasible:
        return
    plan = result.plan
    sharded = plan.sharded_tables(task.tables)
    # Dimension legality survives all splits.
    assert all(t.dim % 4 == 0 for t in sharded)
    # Total dimension is conserved by column splits.
    assert sum(t.dim for t in sharded) == task.total_dim
    # The plan's placement fits memory.
    assert memory.placement_fits(plan.per_device_tables(task.tables))


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_simulator_cost_dominates_compute(tiny_bundle, small_pool, seed):
    """Plan cost = compute + comm >= compute alone, per device."""
    task = _task(small_pool, seed)
    simulator = NeuroShardSimulator(tiny_bundle, CostCache())
    rng = np.random.default_rng(seed)
    per_device = [[], []]
    for table in task.tables:
        per_device[int(rng.integers(0, 2))].append(table)
    cost = simulator.plan_cost(per_device)
    for total, compute in zip(cost.device_costs_ms, cost.compute_ms):
        assert total >= compute - 1e-9


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_cache_reuse_does_not_change_results(
    tiny_bundle, small_pool, seed
):
    """Searching the same task twice through one lifelong cache gives the
    same plan and cost as a cold cache."""
    task = _task(small_pool, seed)
    memory = MemoryModel(task.memory_bytes)

    cold = beam_search(
        list(task.tables), 2,
        NeuroShardSimulator(tiny_bundle, CostCache()), memory, SEARCH,
    )
    shared_cache = CostCache()
    warm_sim = NeuroShardSimulator(tiny_bundle, shared_cache)
    beam_search(list(task.tables), 2, warm_sim, memory, SEARCH)
    warm = beam_search(list(task.tables), 2, warm_sim, memory, SEARCH)
    assert warm.feasible == cold.feasible
    if cold.feasible:
        assert warm.cost_ms == pytest.approx(cold.cost_ms, rel=1e-6)
