"""Parametrized CLI contract sweep: every subcommand, one set of rules.

Three contracts, enforced uniformly instead of piecemeal:

1. ``--help`` round-trips (exit 0, usage on stdout) for every subcommand
   and every ``deployment``/``scenario``/``simulate`` action;
2. usage errors exit 2 via argparse with usage on stderr, for every
   subcommand;
3. the shared all-infeasible contract: commands whose work can come back
   empty (``shard``, ``serve-batch``, ``deployment plan/apply``,
   ``scenario run``, ``validate``) exit 2 and name the failing units on
   stderr.

The sweep enumerates subcommands from the parser itself, so adding a
command without extending the contract is impossible.
"""

import json

import pytest

from repro.api import PlanStore, ShardingEngine, ShardingService
from repro.cli import EXIT_ALL_INFEASIBLE, build_parser, main
from repro.data import save_tasks
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask

TOP_COMMANDS = (
    "gen-data",
    "gen-tasks",
    "pretrain",
    "shard",
    "compare",
    "serve-batch",
    "serve",
    "deployment",
    "scenario",
    "simulate",
    "tune",
    "validate",
    "audit",
    "strategies",
    "list-bundles",
)
DEPLOYMENT_ACTIONS = (
    "create", "plan", "apply", "reshard", "rollback", "status", "history",
    "list",
)
SCENARIO_ACTIONS = ("list", "run", "compare")
SIMULATE_ACTIONS = ("list", "run", "compare")
TUNE_ACTIONS = ("run", "list", "show")


def _subcommands(parser):
    import argparse

    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("parser has no subcommands")


def test_sweep_covers_every_registered_subcommand():
    """A new subcommand must join this sweep to exist."""
    assert set(_subcommands(build_parser())) == set(TOP_COMMANDS)
    deployment = _subcommands(build_parser())["deployment"]
    assert set(_subcommands(deployment)) == set(DEPLOYMENT_ACTIONS)
    scenario = _subcommands(build_parser())["scenario"]
    assert set(_subcommands(scenario)) == set(SCENARIO_ACTIONS)
    simulate = _subcommands(build_parser())["simulate"]
    assert set(_subcommands(simulate)) == set(SIMULATE_ACTIONS)
    tune = _subcommands(build_parser())["tune"]
    assert set(_subcommands(tune)) == set(TUNE_ACTIONS)


HELP_INVOCATIONS = (
    [[command, "--help"] for command in TOP_COMMANDS]
    + [["deployment", action, "--help"] for action in DEPLOYMENT_ACTIONS]
    + [["scenario", action, "--help"] for action in SCENARIO_ACTIONS]
    + [["simulate", action, "--help"] for action in SIMULATE_ACTIONS]
    + [["tune", action, "--help"] for action in TUNE_ACTIONS]
)


@pytest.mark.parametrize(
    "argv", HELP_INVOCATIONS, ids=[" ".join(a[:-1]) for a in HELP_INVOCATIONS]
)
def test_help_round_trip(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("usage:")
    assert argv[0] in out


@pytest.mark.parametrize("command", TOP_COMMANDS)
def test_usage_error_exits_2_with_usage_on_stderr(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--definitely-not-a-flag"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err


def _oversized_task(num_devices=2) -> ShardingTask:
    table = TableConfig(
        table_id=0, hash_size=10_000_000, dim=128, pooling_factor=10.0,
        zipf_alpha=1.05,
    )
    return ShardingTask(
        tables=(table,), num_devices=num_devices, memory_bytes=1024**2
    )


@pytest.fixture(scope="module")
def contract_env(tmp_path_factory, tiny_bundle, cluster2):
    """Shared artifacts: a bundle, an unplannable workload, a corrupt store."""
    root = tmp_path_factory.mktemp("cli-contract")
    bundle_dir = root / "bundle"
    tiny_bundle.save(bundle_dir)
    tasks_file = root / "oversized.json"
    save_tasks([_oversized_task()], tasks_file)

    # A deployment whose workload no strategy can place.
    store = root / "deps"
    assert main([
        "deployment", "create", "bad", "--store", str(store),
        str(bundle_dir), "--tasks-file", str(tasks_file),
    ]) == 0
    # Record one (infeasible) plan so `apply` has history to refuse.
    assert main([
        "deployment", "plan", "bad", "--store", str(store), str(bundle_dir),
    ]) == EXIT_ALL_INFEASIBLE

    # A store whose only deployment's history is corrupted on disk.
    corrupt_store = root / "corrupt-deps"
    engine = ShardingEngine(cluster2)
    service = ShardingService(PlanStore(corrupt_store))
    service.create_deployment(
        "prod",
        engine,
        tables=(
            TableConfig(table_id=0, hash_size=2000, dim=16,
                        pooling_factor=4.0, zipf_alpha=0.8),
        ),
    )
    service.plan("prod")
    service.apply("prod")
    record_path = corrupt_store / "prod" / "plans" / "v1.json"
    record_path.write_text(record_path.read_text()[:100])
    return {
        "bundle": str(bundle_dir),
        "tasks_file": str(tasks_file),
        "store": str(store),
        "corrupt_store": str(corrupt_store),
    }


def _infeasible_cases():
    return [
        (
            "shard",
            lambda env: ["shard", env["bundle"], "--strategy", "dim_greedy",
                         "--tasks-file", env["tasks_file"]],
        ),
        (
            "serve-batch",
            lambda env: ["serve-batch", env["bundle"], env["tasks_file"],
                         "--strategy", "dim_greedy"],
        ),
        (
            "deployment plan",
            lambda env: ["deployment", "plan", "bad", "--store",
                         env["store"], env["bundle"]],
        ),
        (
            "deployment apply",
            lambda env: ["deployment", "apply", "bad", "--store",
                         env["store"], env["bundle"]],
        ),
        (
            "validate",
            lambda env: ["validate", "--store", env["corrupt_store"]],
        ),
        (
            "audit",
            lambda env: ["audit", "--store", env["corrupt_store"]],
        ),
    ]


@pytest.mark.parametrize(
    "label, argv_builder", _infeasible_cases(),
    ids=[label for label, _ in _infeasible_cases()],
)
def test_all_infeasible_exits_2_with_stderr(
    label, argv_builder, contract_env, capsys
):
    code = main(argv_builder(contract_env))
    captured = capsys.readouterr()
    assert code == EXIT_ALL_INFEASIBLE, captured.err
    assert "error" in captured.err.lower()


def test_scenario_run_unplannable_workload_exits_2(
    contract_env, capsys, monkeypatch
):
    """The scenario generator refuses to emit workloads its own budget
    cannot hold, so the unplannable-initial-workload path is driven by
    making the replay itself report it."""
    import repro.cli as cli

    def unplannable(*args, **kwargs):
        raise RuntimeError("the initial workload has no feasible plan")

    monkeypatch.setattr(cli, "replay_workload_trace", unplannable)
    code = main([
        "scenario", "run", "flash_crowd", contract_env["bundle"],
        "--tables", "6",
    ])
    captured = capsys.readouterr()
    assert code == EXIT_ALL_INFEASIBLE
    assert "no feasible plan" in captured.err


def test_simulate_run_unplannable_workload_exits_2(
    contract_env, capsys, monkeypatch
):
    """Same contract as ``scenario run``: an unplannable initial
    workload is the all-infeasible outcome, not a crash."""
    import repro.cli as cli

    def unplannable(*args, **kwargs):
        raise RuntimeError("the initial workload has no feasible plan")

    monkeypatch.setattr(cli, "simulate_policy", unplannable)
    code = main([
        "simulate", "run", "flash_crowd", contract_env["bundle"],
        "--tables", "6",
    ])
    captured = capsys.readouterr()
    assert code == EXIT_ALL_INFEASIBLE
    assert "no feasible plan" in captured.err


def test_deployment_status_surfaces_recovery_notes(contract_env, capsys):
    """Opening the corrupted store repairs it; `deployment status` must
    show the repair notes, not bury them in service internals."""
    code = main([
        "deployment", "status", "prod", "--store",
        contract_env["corrupt_store"], contract_env["bundle"],
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "recovery_notes" in captured.out
    # v1 (the applied record) was truncated on disk: the note names it.
    assert "v1" in captured.out


def test_simulate_unknown_policy_is_input_error(contract_env, capsys):
    code = main([
        "simulate", "run", "flash_crowd", contract_env["bundle"],
        "--policy", "wishful_thinking",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "wishful_thinking" in captured.err


class TestValidateCommand:
    def test_needs_a_target(self, capsys):
        assert main(["validate"]) == 1
        assert "--store" in capsys.readouterr().err

    def test_unknown_deployment_is_input_error(self, contract_env, capsys):
        code = main([
            "validate", "--store", contract_env["store"],
            "--deployment", "nope",
        ])
        assert code == 1
        assert "nope" in capsys.readouterr().err

    def test_clean_store_exits_0(self, contract_env, capsys):
        # The 'bad' deployment's records are infeasible but *coherent*:
        # validation passes (infeasibility is a search outcome, not a
        # corruption), so the command exits 0.
        code = main(["validate", "--store", contract_env["store"]])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "ok" in captured.out

    def test_corrupt_store_reports_units_on_stderr(self, contract_env, capsys):
        code = main(["validate", "--store", contract_env["corrupt_store"]])
        captured = capsys.readouterr()
        assert code == EXIT_ALL_INFEASIBLE
        assert "deployment:prod" in captured.err
        assert "violation" in captured.out + captured.err

    def test_json_output(self, contract_env, capsys):
        main(["validate", "--store", contract_env["corrupt_store"], "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload and payload[0]["subject"] == "deployment:prod"
        assert payload[0]["ok"] is False

    def test_bad_budget_field_keeps_applied_stack_audit(
        self, tmp_path, cluster2, capsys
    ):
        """A malformed memory_bytes in state.json is its own finding — it
        must not discard the parsed applied stack (and with it the
        state/applied-version and current-budget audits)."""
        store_dir = tmp_path / "deps"
        service = ShardingService(PlanStore(store_dir))
        service.create_deployment(
            "prod",
            ShardingEngine(cluster2),
            tables=(
                TableConfig(table_id=0, hash_size=2000, dim=16,
                            pooling_factor=4.0, zipf_alpha=0.8),
            ),
        )
        service.plan("prod")
        service.apply("prod")
        state_path = store_dir / "prod" / "state.json"
        state = json.loads(state_path.read_text())
        state["memory_bytes"] = "garbage"
        state_path.write_text(json.dumps(state))
        code = main(["validate", "--store", str(store_dir), "--json"])
        captured = capsys.readouterr()
        assert code == EXIT_ALL_INFEASIBLE
        assert "memory_bytes" in captured.err
        payload = json.loads(captured.out)
        # The stack survived the bad budget field: the applied version is
        # still audited (and reported).
        assert payload[0]["applied_version"] == 1
        assert "state/applied-version" in payload[0]["checks"]

    @pytest.mark.parametrize(
        "bad_state, needle",
        [
            ([1, 2], "expected an object"),
            ({"applied_stack": "12"}, "applied_stack"),
        ],
        ids=["non-dict-state", "string-applied-stack"],
    )
    def test_malformed_state_is_a_finding_not_a_crash(
        self, tmp_path, cluster2, capsys, bad_state, needle
    ):
        """Valid-JSON-but-wrong-shape state files are findings the audit
        reports, not tracebacks (a string stack must not misparse into
        per-character phantom versions either)."""
        store_dir = tmp_path / "deps"
        service = ShardingService(PlanStore(store_dir))
        service.create_deployment(
            "prod",
            ShardingEngine(cluster2),
            tables=(
                TableConfig(table_id=0, hash_size=2000, dim=16,
                            pooling_factor=4.0, zipf_alpha=0.8),
            ),
        )
        service.plan("prod")
        service.apply("prod")
        (store_dir / "prod" / "state.json").write_text(json.dumps(bad_state))
        code = main(["validate", "--store", str(store_dir)])
        captured = capsys.readouterr()
        assert code == EXIT_ALL_INFEASIBLE
        assert needle in captured.err

    def test_audit_unknown_deployment_is_input_error(
        self, contract_env, capsys
    ):
        code = main([
            "audit", "--store", contract_env["store"],
            "--deployment", "nope",
        ])
        assert code == 1
        assert "nope" in capsys.readouterr().err

    def test_audit_clean_store_exits_0(self, contract_env, capsys):
        code = main(["audit", "--store", contract_env["store"]])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "ok" in captured.out

    def test_audit_corrupt_store_names_first_broken_version(
        self, contract_env, capsys
    ):
        code = main(["audit", "--store", contract_env["corrupt_store"]])
        captured = capsys.readouterr()
        assert code == EXIT_ALL_INFEASIBLE
        # v1 was truncated on disk: the audit pinpoints it on stderr.
        assert "first broken: v1" in captured.err
        assert "chain/unreadable-record" in captured.err

    def test_audit_json_output(self, contract_env, capsys):
        code = main([
            "audit", "--store", contract_env["corrupt_store"], "--json",
        ])
        captured = capsys.readouterr()
        assert code == EXIT_ALL_INFEASIBLE
        payload = json.loads(captured.out)
        assert payload[0]["deployment"] == "prod"
        assert payload[0]["ok"] is False
        assert payload[0]["first_broken_version"] == 1

    def test_bundle_store_validation(self, tmp_path, tiny_bundle, capsys):
        from repro.api import BundleStore

        store = BundleStore(tmp_path / "bundles")
        store.save(tiny_bundle, "prod")
        assert main(["validate", "--bundle-store", str(tmp_path / "bundles")]) == 0
        assert "bundle:prod@v1" in capsys.readouterr().out
        # Corrupt the bundle payload: validation must flag it.
        (tmp_path / "bundles" / "prod" / "v1" / "compute.npz").write_bytes(
            b"garbage"
        )
        code = main(["validate", "--bundle-store", str(tmp_path / "bundles")])
        captured = capsys.readouterr()
        assert code == EXIT_ALL_INFEASIBLE
        assert "bundle:prod@v1" in captured.err


# ----------------------------------------------------------------------
# README examples are real commands, not aspirational prose
# ----------------------------------------------------------------------


def _readme_cli_lines():
    """Every ``python -m repro ...`` invocation in README fenced blocks,
    with backslash continuations joined."""
    import pathlib
    import re

    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    blocks = re.findall(r"```(?:bash|sh|console)\n(.*?)```", readme.read_text(), re.S)
    lines: list[str] = []
    for block in blocks:
        joined = block.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if line.startswith("python -m repro "):
                lines.append(line)
    return lines


def test_readme_has_cli_examples():
    assert len(_readme_cli_lines()) >= 10


@pytest.mark.parametrize(
    "line", _readme_cli_lines(), ids=lambda line: " ".join(line.split()[3:5])
)
def test_readme_cli_examples_parse(line):
    """Machine-verify the docs: every README invocation must be accepted
    by the real parser (flags exist, choices are legal, arity is right).
    A drive-by rename that silently rots the README fails here."""
    import shlex

    argv = shlex.split(line)[3:]  # strip "python -m repro"
    # Trailing "# comment" annotations are shell syntax, not argv.
    if "#" in [a[0] for a in argv if a]:
        argv = argv[: [a[0] for a in argv].index("#")]
    parser = build_parser()
    try:
        parser.parse_args(argv)
    except SystemExit as exc:  # pragma: no cover — failure reporting
        pytest.fail(f"README example no longer parses: {line!r} ({exc})")
