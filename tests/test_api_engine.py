"""Tests for the sharding service engine (repro.api.engine)."""

import json
import math

import pytest

from repro.api import (
    ShardingEngine,
    ShardingRequest,
    ShardingResponse,
    available_strategies,
    make_sharder,
)
from repro.config import TaskConfig
from repro.data import generate_tasks
from repro.evaluation import evaluate_sharder


@pytest.fixture(scope="module")
def engine(cluster2, tiny_bundle):
    return ShardingEngine(cluster2, tiny_bundle)


class TestShard:
    def test_beam_response_matches_facade(self, engine, cluster2, tiny_bundle, tasks2):
        response = engine.shard(ShardingRequest(tasks2[0], request_id="r0"))
        assert response.strategy == "beam"
        assert response.request_id == "r0"
        assert response.feasible
        assert response.plan is not None
        assert response.evaluations > 0
        assert 0.0 <= response.cache_hit_rate <= 1.0
        # Same plan as calling the facade directly.
        facade = make_sharder("beam", cluster=cluster2, bundle=tiny_bundle)
        assert facade.shard(tasks2[0]).plan == response.plan

    def test_baseline_gets_uniform_diagnostics(self, engine, tasks2):
        response = engine.shard(ShardingRequest(tasks2[0], strategy="dim_greedy"))
        assert response.strategy == "dim_greedy"
        assert response.feasible
        # A bare-plan baseline is scored on the engine's cost models.
        assert math.isfinite(response.simulated_cost_ms)
        assert response.simulated_cost_ms > 0

    def test_no_bundle_engine_serves_heuristics(self, cluster2, tasks2):
        engine = ShardingEngine(cluster2)
        assert engine.default_strategy == "dim_greedy"
        assert "beam" not in engine.available()
        response = engine.shard(ShardingRequest(tasks2[0]))
        assert response.feasible
        assert math.isnan(response.simulated_cost_ms)  # nothing to score with

    def test_errors_are_contained(self, engine, tasks2):
        # 'guided' without a policy raises inside the factory; the
        # engine reports it instead of crashing the server loop.
        response = engine.shard(ShardingRequest(tasks2[0], strategy="guided"))
        assert not response.feasible
        assert response.plan is None
        assert "policy" in response.error

    def test_unknown_strategy_is_contained(self, engine, tasks2):
        # A bad name in one request must not kill a whole batch.
        responses = engine.shard_batch(
            [
                ShardingRequest(tasks2[0], strategy="dim_greedy"),
                ShardingRequest(tasks2[0], strategy="not-a-strategy"),
            ],
            max_workers=2,
        )
        assert responses[0].feasible
        assert not responses[1].feasible
        assert "not-a-strategy" in responses[1].error

    def test_planner_uses_cluster_batch_size(self, cluster2, tiny_bundle):
        engine = ShardingEngine(cluster2, tiny_bundle)
        planner = engine.sharder_for("planner")
        assert planner.batch_size == cluster2.batch_size

    def test_lifelong_cache_opt_in_shares_engine_cache(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(
            cluster2,
            tiny_bundle,
            strategy_kwargs={"beam": {"lifelong_cache": True}},
        )
        engine.shard(ShardingRequest(tasks2[0]))
        # The beam search populated the engine's shared cache.
        assert engine.cache_stats()["entries"] > 0

    def test_device_mismatch_engine_construction(self, cluster4, tiny_bundle):
        with pytest.raises(ValueError, match="devices"):
            ShardingEngine(cluster4, tiny_bundle)

    def test_response_is_schema_valid_json(self, engine, tasks2):
        response = engine.shard(ShardingRequest(tasks2[1], request_id="x"))
        restored = ShardingResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert restored.deterministic_dict() == response.deterministic_dict()


class TestShardBatch:
    def test_batch_matches_sequential(self, cluster2, tiny_bundle, small_pool):
        """Acceptance: 8 concurrent requests == 8 sequential calls."""
        tasks = generate_tasks(
            small_pool,
            TaskConfig(
                num_devices=2,
                max_dim=64,
                min_tables=4,
                max_tables=10,
                memory_bytes=2 * 1024**3,
            ),
            count=8,
            seed=29,
        )
        requests = [
            ShardingRequest(task, strategy="beam", request_id=str(i))
            for i, task in enumerate(tasks)
        ]
        engine = ShardingEngine(cluster2, tiny_bundle)
        sequential = [engine.shard(request) for request in requests]
        batched = engine.shard_batch(requests, max_workers=4)
        assert [r.deterministic_dict() for r in batched] == [
            r.deterministic_dict() for r in sequential
        ]

    def test_order_preserved(self, engine, tasks2):
        requests = [
            ShardingRequest(task, strategy="dim_greedy", request_id=str(i))
            for i, task in enumerate(tasks2)
        ]
        responses = engine.shard_batch(requests, max_workers=3)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]

    def test_single_worker_is_sequential_path(self, engine, tasks2):
        responses = engine.shard_batch(
            [ShardingRequest(t, strategy="dim_greedy") for t in tasks2],
            max_workers=1,
        )
        assert all(r.feasible for r in responses)

    def test_invalid_workers(self, engine, tasks2):
        with pytest.raises(ValueError, match="max_workers"):
            engine.shard_batch([ShardingRequest(tasks2[0])], max_workers=0)


class TestCompare:
    def test_default_roster(self, engine, tasks2):
        responses = engine.compare(ShardingRequest(tasks2[0]))
        names = [r.strategy for r in responses]
        assert "beam" in names
        assert "milp" in names
        assert len(names) == len(set(names))
        feasible = [r for r in responses if r.feasible]
        assert feasible
        # NeuroShard's simulated cost is the roster's best (or tied).
        beam = next(r for r in responses if r.strategy == "beam")
        best = min(r.simulated_cost_ms for r in feasible)
        assert beam.simulated_cost_ms <= best * 1.25

    def test_explicit_strategies_in_order(self, engine, tasks2):
        responses = engine.compare(
            ShardingRequest(tasks2[0]), strategies=["milp", "random", "beam"]
        )
        assert [r.strategy for r in responses] == ["milp", "random", "beam"]


class TestEveryStrategyServes:
    def test_all_strategies_return_schema_valid_responses(
        self, cluster2, tiny_bundle, tasks2
    ):
        """Acceptance: every registered strategy answers through the
        engine with a schema-valid response."""
        policy = make_sharder(
            "imitation",
            cluster=cluster2,
            bundle=tiny_bundle,
            train_tasks=tasks2[:2],
            epochs=2,
        )
        engine = ShardingEngine(
            cluster2,
            tiny_bundle,
            strategy_kwargs={
                "guided": {"policy": policy},
                "imitation": {"train_tasks": tasks2[:2], "epochs": 2},
                "offline_rl": {"train_tasks": tasks2[:2], "epochs": 2},
                "rl": {"episodes": 2},
                "autoshard": {"episodes": 2},
                "surco": {"iterations": 2},
            },
        )
        task = tasks2[0]
        for name in available_strategies():
            response = engine.shard(ShardingRequest(task, strategy=name))
            assert response.error is None, f"{name}: {response.error}"
            assert response.strategy == name
            restored = ShardingResponse.from_dict(
                json.loads(json.dumps(response.to_dict()))
            )
            assert restored.deterministic_dict() == response.deterministic_dict()
            if response.feasible:
                # The plan must be executable against its table list.
                per_device = response.plan.per_device_tables(
                    response.plan_tables(task)
                )
                assert len(per_device) == task.num_devices


class TestEngineEvaluationIntegration:
    def test_engine_sharder_in_evaluation_harness(
        self, engine, cluster2, tasks2
    ):
        evaluation = evaluate_sharder(
            engine.sharder_for("beam"), tasks2, cluster2
        )
        assert evaluation.num_tasks == len(tasks2)
        assert evaluation.num_success >= 1

    def test_cache_stats_shape(self, engine, tasks2):
        engine.shard(ShardingRequest(tasks2[0], strategy="dim_greedy"))
        stats = engine.cache_stats()
        assert set(stats) == {
            "entries",
            "max_entries",
            "hits",
            "misses",
            "evictions",
            "hit_rate",
        }


class TestEngineKnobs:
    """The serving knobs: pool size and per-response cache diagnostics."""

    def test_max_workers_constructor_default_used_by_batch(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(cluster2, tiny_bundle, max_workers=2)
        assert engine.max_workers == 2
        requests = [
            ShardingRequest(t, strategy="dim_greedy", request_id=str(t.task_id))
            for t in tasks2[:3]
        ]
        batch = engine.shard_batch(requests)  # no per-call override
        sequential = [engine.shard(r) for r in requests]
        assert [r.deterministic_dict() for r in batch] == [
            r.deterministic_dict() for r in sequential
        ]

    def test_max_workers_per_call_override_wins(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(cluster2, tiny_bundle, max_workers=1)
        requests = [
            ShardingRequest(t, strategy="dim_greedy") for t in tasks2[:2]
        ]
        assert len(engine.shard_batch(requests, max_workers=4)) == 2

    def test_invalid_max_workers_rejected(self, cluster2, tiny_bundle):
        with pytest.raises(ValueError, match="max_workers"):
            ShardingEngine(cluster2, tiny_bundle, max_workers=0)

    def test_cache_stats_in_profile_off_by_default(self, engine, tasks2):
        response = engine.shard(ShardingRequest(tasks2[0], strategy="dim_greedy"))
        assert response.profile is None

    def test_cache_stats_attached_to_every_response(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(
            cluster2,
            tiny_bundle,
            cache_max_entries=64,
            cache_stats_in_profile=True,
        )
        first = engine.shard(ShardingRequest(tasks2[0], strategy="dim_greedy"))
        stats = first.profile["engine_cache"]
        assert set(stats) == {
            "entries", "max_entries", "hits", "misses", "evictions", "hit_rate",
        }
        assert stats["max_entries"] == 64
        # A later response observes the shared cache's evolution.
        second = engine.shard(ShardingRequest(tasks2[1], strategy="dim_greedy"))
        assert (
            second.profile["engine_cache"]["misses"]
            >= stats["misses"]
        )

    def test_cache_stats_merge_with_search_profile(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(
            cluster2, tiny_bundle, cache_stats_in_profile=True
        )
        response = engine.shard(
            ShardingRequest(tasks2[0], options={"profile": True})
        )
        assert "engine_cache" in response.profile
        assert "stage_seconds" in response.profile or len(response.profile) > 1

    def test_cache_stats_do_not_break_determinism_view(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(
            cluster2, tiny_bundle, cache_stats_in_profile=True
        )
        response = engine.shard(ShardingRequest(tasks2[0], strategy="dim_greedy"))
        assert "profile" not in response.deterministic_dict()
