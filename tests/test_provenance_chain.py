"""Unit tests of the provenance chain primitives and service wiring.

The digest discipline under test (see ``repro/provenance/chain.py``):
canonical digests survive JSON round-trips, the two-digest scheme keeps
validation stamps out of their own input while chain links cover the
report, and every record the service persists carries a verifiable link
back to the deployment metadata's genesis digest.
"""

import json

import pytest

from repro.api import PlanStore, ShardingEngine, ShardingService
from repro.data.table import TableConfig
from repro.provenance import (
    ProvenanceLink,
    chain_digest,
    content_digest,
    genesis_digest,
    link_digest_of_payload,
    link_record,
    raw_digest,
    record_digest,
    stamp_fingerprint,
    state_digest,
    state_stamp,
)
from repro.utils import source_fingerprint

TABLES = tuple(
    TableConfig(
        table_id=i, hash_size=2000, dim=16, pooling_factor=4.0,
        zipf_alpha=0.8,
    )
    for i in range(4)
)


@pytest.fixture()
def lifecycle(tmp_path, cluster2):
    """A store-backed deployment with a few versions of history."""
    store = PlanStore(tmp_path / "deps")
    service = ShardingService(store)
    service.create_deployment("prod", ShardingEngine(cluster2), tables=TABLES)
    service.plan("prod")
    service.apply("prod")
    service.plan("prod")
    service.apply("prod", version=2)
    return store, service


class TestDigests:
    def test_digests_are_key_order_independent(self):
        a = {"x": 1, "y": [1, 2], "z": {"a": 1, "b": 2}}
        b = {"z": {"b": 2, "a": 1}, "y": [1, 2], "x": 1}
        assert content_digest(a) == content_digest(b)
        assert record_digest(a) == record_digest(b)

    def test_digests_are_domain_separated(self):
        payload = {"version": 1}
        digests = {
            content_digest(payload),
            record_digest(payload),
            genesis_digest(payload),
            raw_digest(json.dumps(payload).encode()),
        }
        assert len(digests) == 4

    def test_record_digest_ignores_validation_and_provenance(self):
        base = {"version": 1, "plan": [1, 2]}
        decorated = dict(base, validation={"ok": True}, provenance={"x": 1})
        assert record_digest(base) == record_digest(decorated)

    def test_content_digest_covers_validation_but_not_provenance(self):
        base = {"version": 1, "plan": [1, 2], "validation": {"ok": True}}
        assert content_digest(base) != content_digest(
            dict(base, validation={"ok": False})
        )
        assert content_digest(base) == content_digest(
            dict(base, provenance={"x": 1})
        )

    def test_chain_digest_binds_version_and_link(self):
        base = chain_digest(3, 2, "p" * 64, "c" * 64)
        assert base != chain_digest(4, 2, "p" * 64, "c" * 64)
        assert base != chain_digest(3, 1, "p" * 64, "c" * 64)
        assert base != chain_digest(3, 2, "q" * 64, "c" * 64)
        assert base != chain_digest(3, 2, "p" * 64, "d" * 64)

    def test_link_round_trips(self):
        payload = {"version": 5, "plan": None}
        link = link_record(payload, 4, "p" * 64)
        assert ProvenanceLink.from_dict(link.to_dict()) == link
        assert link.chain_digest == chain_digest(
            5, 4, "p" * 64, content_digest(payload)
        )

    def test_link_digest_of_payload_prefers_stored_chain_digest(self):
        payload = {"version": 5, "plan": None}
        link = link_record(payload, 4, "p" * 64)
        chained = dict(payload, provenance=link.to_dict())
        assert link_digest_of_payload(chained) == link.chain_digest
        assert link_digest_of_payload(payload) == content_digest(payload)

    def test_state_stamp_self_verifies(self):
        stamp = state_stamp([1, 2], 1024, 2, "a" * 64)
        assert stamp["digest"] == state_digest([1, 2], 1024, 2, "a" * 64)
        assert stamp["digest"] != state_digest([1], 1024, 2, "a" * 64)

    def test_stamp_fingerprint_is_cached_and_stable(self):
        assert stamp_fingerprint() == stamp_fingerprint()
        assert len(stamp_fingerprint()) == 64


class TestSharedFingerprint:
    def test_bundle_fingerprint_delegates_to_shared_helper(self):
        entries = ("config.py", "costmodel", "data", "hardware", "nn")
        assert source_fingerprint(*entries) == source_fingerprint(*entries)
        # Different entry sets produce different digests.
        assert source_fingerprint("config.py") != source_fingerprint(*entries)

    def test_fingerprint_matches_committed_bundle_caches(self):
        """The shared helper must reproduce the digest historical bundle
        caches were written with — otherwise every committed bundle
        would spuriously retrain."""
        import pathlib

        cache = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "_cache"
        )
        fingerprints = sorted(cache.glob("*/code_fingerprint.txt"))
        if not fingerprints:
            pytest.skip("no committed bundle caches")
        current = source_fingerprint(
            "config.py", "costmodel", "data", "hardware", "nn"
        )
        for path in fingerprints:
            assert path.read_text().strip() == current, (
                f"{path} was written by different source; bundles would "
                "retrain — regenerate the caches if the change is real"
            )


class TestServiceWiring:
    def test_records_carry_verifiable_links(self, lifecycle):
        store, service = lifecycle
        meta = store.load_meta("prod")
        genesis = genesis_digest(meta)
        v1 = store.load_record("prod", 1)
        v2 = store.load_record("prod", 2)
        assert v1["provenance"]["prev_version"] == 0
        assert v1["provenance"]["prev_digest"] == genesis
        assert v1["provenance"]["content_digest"] == content_digest(v1)
        assert v2["provenance"]["prev_version"] == 1
        assert v2["provenance"]["prev_digest"] == v1["provenance"]["chain_digest"]

    def test_validation_reports_are_stamped(self, lifecycle):
        store, _ = lifecycle
        payload = store.load_record("prod", 1)
        validation = payload["validation"]
        assert validation["code_fingerprint"] == stamp_fingerprint()
        assert validation["validated_digest"] == record_digest(payload)

    def test_state_is_stamped_and_anchored(self, lifecycle):
        store, _ = lifecycle
        state = store.load_state("prod")
        stamp = state["provenance"]
        assert stamp["anchor_version"] == 2
        v2 = store.load_record("prod", 2)
        assert stamp["anchor_digest"] == v2["provenance"]["chain_digest"]
        assert stamp["digest"] == state_digest(
            state["applied_stack"], state["memory_bytes"], 2,
            stamp["anchor_digest"],
        )

    def test_records_survive_round_trip_with_provenance(self, lifecycle):
        from repro.api.service import PlanRecord

        store, _ = lifecycle
        payload = store.load_record("prod", 2)
        assert PlanRecord.from_dict(payload).to_dict() == payload

    def test_storeless_service_still_chains(self, cluster2):
        service = ShardingService(store=None)
        service.create_deployment(
            "mem", ShardingEngine(cluster2), tables=TABLES
        )
        r1 = service.plan("mem")
        service.apply("mem")
        r2 = service.plan("mem")
        assert r1.provenance is not None
        assert r2.provenance is not None
        assert r2.provenance.prev_version == 1
        assert r2.provenance.prev_digest == r1.provenance.chain_digest

    def test_reopened_service_continues_the_chain(self, lifecycle, cluster2):
        store, _ = lifecycle
        engine = ShardingEngine(cluster2)
        reopened = ShardingService.open(store, lambda meta: engine)
        record = reopened.plan("prod")
        v_prev = store.load_record("prod", record.version - 1)
        assert record.provenance.prev_version == record.version - 1
        assert (
            record.provenance.prev_digest
            == v_prev["provenance"]["chain_digest"]
        )

    def test_unstamped_validation_serializes_without_stamp_keys(self):
        """Legacy byte-identity: a report without stamps must serialize
        exactly as it did before the stamp fields existed."""
        from repro.validation import ValidationReport

        report = ValidationReport(subject="x", checks=("a",))
        assert "code_fingerprint" not in report.to_dict()
        assert "validated_digest" not in report.to_dict()
        stamped = report.stamped("f" * 64, "d" * 64)
        assert stamped.to_dict()["code_fingerprint"] == "f" * 64
        assert ValidationReport.from_dict(stamped.to_dict()) == stamped
