"""Tests for repro.hardware.comm — including Observation 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import AllToAllModel

BATCH = 65536


@pytest.fixture(scope="module")
def comm() -> AllToAllModel:
    return AllToAllModel()


class TestBasics:
    def test_single_device_is_free(self, comm):
        m = comm.measure([100], BATCH)
        assert m.costs_ms == (0.0,)

    def test_costs_positive(self, comm):
        m = comm.measure([100, 200, 300], BATCH)
        assert all(c > 0 for c in m.costs_ms)

    def test_backward_slower_than_forward(self, comm):
        dims = [400, 500, 450, 480]
        fwd = comm.measure(dims, BATCH, noisy=False)
        bwd = comm.measure(dims, BATCH, backward=True, noisy=False)
        assert bwd.max_cost_ms > fwd.max_cost_ms

    def test_deterministic(self, comm):
        a = comm.measure([100, 200], BATCH, start_times_ms=[1.0, 0.0])
        b = comm.measure([100, 200], BATCH, start_times_ms=[1.0, 0.0])
        assert a == b

    def test_validation(self, comm):
        with pytest.raises(ValueError):
            comm.measure([], BATCH)
        with pytest.raises(ValueError):
            comm.measure([100, -5], BATCH)
        with pytest.raises(ValueError):
            comm.measure([100, 200], 0)
        with pytest.raises(ValueError):
            comm.measure([100, 200], BATCH, start_times_ms=[0.0])
        with pytest.raises(ValueError):
            comm.measure([100, 200], BATCH, start_times_ms=[-1.0, 0.0])


class TestSynchronousSemantics:
    def test_late_starter_makes_others_wait(self, comm):
        dims = [300, 300, 300, 300]
        aligned = comm.measure(dims, BATCH, noisy=False)
        skewed = comm.measure(
            dims, BATCH, start_times_ms=[10.0, 0.0, 0.0, 0.0], noisy=False
        )
        # The early starters pay the late starter's delay.
        assert skewed.costs_ms[1] > aligned.costs_ms[1] + 9.0
        # The late starter itself pays only the wire time.
        assert skewed.costs_ms[0] == pytest.approx(aligned.costs_ms[0], rel=0.01)

    def test_shift_invariance(self, comm):
        """Adding a constant to every start leaves measured costs alone."""
        dims = [300, 400, 350, 360]
        a = comm.measure(dims, BATCH, start_times_ms=[0.0, 2.0, 4.0, 1.0], noisy=False)
        b = comm.measure(dims, BATCH, start_times_ms=[5.0, 7.0, 9.0, 6.0], noisy=False)
        assert a.costs_ms == pytest.approx(b.costs_ms)

    def test_completion_equals_start_plus_cost(self, comm):
        starts = [0.0, 3.0, 1.0]
        m = comm.measure([100, 200, 300], BATCH, start_times_ms=starts)
        for s, c, done in zip(starts, m.costs_ms, m.completion_ms):
            assert done == pytest.approx(s + c)


class TestObservation3:
    """Max communication cost tracks the max device dimension
    (paper Figure 4)."""

    @pytest.mark.parametrize("num_devices", [4, 8])
    def test_max_cost_increases_with_max_dim(self, comm, num_devices):
        base = [420] * num_devices
        max_costs = []
        for max_dim in (500, 600, 700, 800):
            dims = list(base)
            dims[0] = max_dim
            m = comm.measure(dims, BATCH, noisy=False)
            max_costs.append(m.max_cost_ms)
        assert max_costs == sorted(max_costs)
        assert max_costs[-1] > max_costs[0] * 1.1

    def test_more_devices_cost_more(self, comm):
        four = comm.measure([500] * 4, BATCH, noisy=False)
        eight = comm.measure([500] * 8, BATCH, noisy=False)
        assert eight.max_cost_ms > four.max_cost_ms


@settings(max_examples=30, deadline=None)
@given(
    dims=st.lists(st.integers(min_value=0, max_value=2000), min_size=2, max_size=8),
    skew=st.floats(min_value=0.0, max_value=30.0),
)
def test_property_max_cost_at_least_wire_time(dims, skew):
    comm = AllToAllModel()
    starts = [skew] + [0.0] * (len(dims) - 1)
    skewed = comm.measure(dims, BATCH, start_times_ms=starts, noisy=False)
    aligned = comm.measure(dims, BATCH, noisy=False)
    # Skew can only increase the bottleneck cost.
    assert skewed.max_cost_ms >= aligned.max_cost_ms - 1e-9
