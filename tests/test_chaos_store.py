"""Fault-injection tests: crash every named PlanStore write point.

The crash-consistency contract under test: whatever write the process
dies in, ``ShardingService.open`` recovers the **last consistent applied
version** — atomic writes guarantee a crash never tears a file, and the
corrupted-tail recovery path handles files torn by pre-atomic writers or
disk corruption.  Marked ``chaos``; the suite is small enough to run in
tier-1 and is also driven by CI's ``soak-smoke`` job.
"""

import dataclasses
import json

import pytest

from repro.api import (
    PlanStore,
    ShardingEngine,
    ShardingService,
    WorkloadDelta,
)
from repro.data.table import TableConfig
from repro.validation import CrashPoint, FaultyFS

pytestmark = pytest.mark.chaos

TABLES = tuple(
    TableConfig(
        table_id=i, hash_size=2000, dim=16, pooling_factor=4.0,
        zipf_alpha=0.8,
    )
    for i in range(4)
)


@pytest.fixture()
def light_engine(cluster2):
    """A bundle-less engine (dim_greedy default): plans instantly."""
    return ShardingEngine(cluster2)


def _open(store, engine):
    return ShardingService.open(store, lambda meta: engine)


class TestCrashAtEveryWritePoint:
    """The acceptance sweep: a crash at every named write point."""

    @pytest.mark.parametrize("point", PlanStore.WRITE_POINTS)
    def test_recovers_last_consistent_applied_version(
        self, point, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        kind = point.split("#")[0]

        if kind == "meta":
            fs.arm(point)
            with pytest.raises(CrashPoint):
                service.create_deployment("prod", light_engine, tables=TABLES)
            reopened = _open(store, light_engine)
            assert reopened.deployments() == []
            return

        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        fs.arm(point)
        if kind == "state":
            service.plan("prod")
            with pytest.raises(CrashPoint):
                service.apply("prod", version=2)
        else:  # record: the crash hits v2's record write itself
            with pytest.raises(CrashPoint):
                service.plan("prod")

        reopened = _open(store, light_engine)
        assert reopened.status("prod")["applied_version"] == 1
        # Atomic writes mean a pure crash never needs file repair.
        assert reopened.recovery_notes == {}
        report = reopened.validate_deployment("prod")
        assert report.ok, report.errors

    def test_crash_during_reshard_keeps_previous_version_live(
        self, tmp_path, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(cluster2, tiny_bundle)
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        service.plan("prod")
        service.apply("prod")
        added = tuple(
            dataclasses.replace(t, table_id=95_000 + i)
            for i, t in enumerate(tasks2[1].tables[:1])
        )
        fs.arm("record#write")
        with pytest.raises(CrashPoint):
            service.reshard("prod", WorkloadDelta(add_tables=added))
        reopened = _open(store, engine)
        assert reopened.status("prod")["applied_version"] == 1
        assert reopened.validate_deployment("prod").ok


class TestFailedWriteLeavesMemoryConsistent:
    """Disk before memory: a failed state write must leave the live
    in-process service on exactly the state a restart would recover —
    a caller that catches the error must not keep serving a version (or
    budget) that durable state never saw."""

    def test_apply_state_crash_keeps_memory_on_old_version(
        self, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        service.plan("prod")
        fs.arm("state#write")
        with pytest.raises(CrashPoint):
            service.apply("prod", version=2)
        assert service.status("prod")["applied_version"] == 1
        assert _open(store, light_engine).status("prod")["applied_version"] == 1

    def test_rollback_state_crash_keeps_memory_on_current_version(
        self, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        service.plan("prod")
        service.apply("prod", version=2)
        fs.arm("state#write")
        with pytest.raises(CrashPoint):
            service.rollback("prod")
        assert service.status("prod")["applied_version"] == 2
        assert _open(store, light_engine).status("prod")["applied_version"] == 2

    def test_reshard_budget_crash_keeps_memory_budget(
        self, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        budget = service.status("prod")["memory_bytes"]
        fs.arm("state#write")
        with pytest.raises(CrashPoint):
            service.reshard("prod", WorkloadDelta(), memory_bytes=budget // 2)
        assert service.status("prod")["memory_bytes"] == budget
        assert _open(store, light_engine).status("prod")["memory_bytes"] == budget


class TestAtomicity:
    def test_state_file_is_old_or_new_never_torn(self, tmp_path, light_engine):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        before = (tmp_path / "deps" / "prod" / "state.json").read_text()
        service.plan("prod")
        for phase in ("write", "rename"):
            fs.arm(f"state#{phase}")
            with pytest.raises(CrashPoint):
                service.apply("prod", version=2)
            after = (tmp_path / "deps" / "prod" / "state.json").read_text()
            assert after == before  # crash before the swap: old bytes intact
            json.loads(after)      # and the old bytes still parse

    def test_record_files_never_half_written_on_crash(
        self, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        fs.arm("record#write")
        with pytest.raises(CrashPoint):
            service.plan("prod")
        plans = tmp_path / "deps" / "prod" / "plans"
        assert not plans.exists() or not list(plans.glob("v*.json"))


class TestTornWrites:
    """`torn` mode lands half the payload on the destination — the
    legacy non-atomic failure shape the recovery path exists for."""

    def test_torn_record_is_dropped_with_note(self, tmp_path, light_engine):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        fs.arm("record#rename", mode="torn")
        with pytest.raises(CrashPoint):
            service.plan("prod")
        reopened = _open(store, light_engine)
        assert reopened.status("prod")["applied_version"] == 1
        notes = reopened.recovery_notes["prod"]
        assert any("v2" in n for n in notes)
        assert reopened.validate_deployment("prod").ok
        # The dropped record's file still occupies v2 on disk; new plans
        # must allocate past it, not collide with it.
        replanned = reopened.plan("prod")
        assert replanned.version == 3
        reopened.apply("prod", version=3)
        assert reopened.status("prod")["applied_version"] == 3

    def test_torn_state_resets_with_note(self, tmp_path, light_engine):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        fs.arm("state#rename", mode="torn")
        with pytest.raises(CrashPoint):
            service.apply("prod")
        reopened = _open(store, light_engine)
        # The stack is unknowable from a torn file: recover to "nothing
        # applied" (records intact), never to a guess.
        assert reopened.status("prod")["applied_version"] is None
        assert reopened.status("prod")["num_records"] == 1
        assert any(
            "state" in n for n in reopened.recovery_notes["prod"]
        )

    def test_torn_meta_skips_deployment(self, tmp_path, light_engine):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        fs.arm("meta#rename", mode="torn")
        with pytest.raises(CrashPoint):
            service.create_deployment("prod", light_engine, tables=TABLES)
        reopened = ShardingService.open(
            store, lambda meta: light_engine, on_error="skip"
        )
        assert reopened.deployments() == []
        assert "prod" in reopened.skipped_deployments


class TestCorruptedTailRecovery:
    def test_stack_truncated_at_first_unreadable_record(
        self, tmp_path, light_engine
    ):
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        service.plan("prod")
        service.apply("prod", version=2)
        # Corrupt v2 on disk after the fact (bit rot / legacy torn write).
        path = tmp_path / "deps" / "prod" / "plans" / "v2.json"
        path.write_text(path.read_text()[:120])
        reopened = _open(store, light_engine)
        assert reopened.status("prod")["applied_version"] == 1
        notes = reopened.recovery_notes["prod"]
        assert any("truncated applied stack at v2" in n for n in notes)
        assert reopened.validate_deployment("prod").ok
        # Operators see the repair without reaching into service
        # internals: status() carries the notes verbatim (and with it
        # the CLI's `deployment status` and the HTTP status route).
        assert reopened.status("prod")["recovery_notes"] == notes

    def test_clean_store_has_no_recovery_notes(self, tmp_path, light_engine):
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        reopened = _open(store, light_engine)
        assert reopened.recovery_notes == {}
        assert reopened.status("prod")["applied_version"] == 1
        assert reopened.status("prod")["recovery_notes"] == []


class TestFaultyFS:
    def test_rejects_unknown_mode_and_point(self):
        fs = FaultyFS()
        with pytest.raises(ValueError, match="mode"):
            fs.arm("state#write", mode="explode")
        with pytest.raises(ValueError, match="point"):
            fs.arm("state")

    def test_faults_are_one_shot(self, tmp_path):
        fs = FaultyFS()
        fs.arm("state#write")
        assert fs.armed == {"state#write": "crash"}
        with pytest.raises(CrashPoint):
            fs.write_text(tmp_path / "x", "data", point="state#write")
        assert fs.armed == {}
        fs.write_text(tmp_path / "x", "data", point="state#write")
        assert (tmp_path / "x").read_text() == "data"
        assert fs.crashes == ["state#write"]
        assert fs.writes == ["state#write"]
