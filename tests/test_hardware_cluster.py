"""Tests for repro.hardware.cluster (the facade)."""

import pytest

from repro.config import ClusterConfig
from repro.data import synthesize_table_pool
from repro.hardware import OutOfMemoryError, SimulatedCluster


@pytest.fixture(scope="module")
def tables():
    # Keep only tables small enough that any split fits the 4 GB budget.
    pool = synthesize_table_pool(num_tables=60, seed=6)
    small = [t for t in pool if t.size_bytes < 200 * 1024**2]
    assert len(small) >= 12
    return small[:12]


@pytest.fixture(scope="module")
def cluster() -> SimulatedCluster:
    return SimulatedCluster(ClusterConfig(num_devices=2, memory_bytes=4 * 1024**3))


class TestMicroBenchmarks:
    def test_measure_compute_matches_kernel(self, cluster, tables):
        cost = cluster.measure_compute(tables[:3])
        direct = cluster.kernel.total_ms(tables[:3], cluster.batch_size)
        assert cost == direct

    def test_measure_comm_matches_model(self, cluster):
        m = cluster.measure_comm([100, 200], start_times_ms=[0.0, 1.0])
        direct = cluster.comm.measure(
            [100, 200], cluster.batch_size, start_times_ms=[0.0, 1.0]
        )
        assert m == direct


class TestPlanExecution:
    def test_evaluate_plan_breakdown(self, cluster, tables):
        per_device = [tables[:6], tables[6:]]
        execution = cluster.evaluate_plan(per_device)
        assert execution.num_devices == 2
        costs = execution.device_costs_ms
        for d in range(2):
            assert costs[d] == pytest.approx(
                execution.compute_costs_ms[d]
                + execution.fwd_comm_costs_ms[d]
                + execution.bwd_comm_costs_ms[d]
            )
        assert execution.max_cost_ms == max(costs)
        assert execution.iteration_ms > 0
        assert execution.throughput_samples_per_s > 0

    def test_oom_raises(self, tables):
        tiny = SimulatedCluster(
            ClusterConfig(num_devices=2, memory_bytes=1024)
        )
        with pytest.raises(OutOfMemoryError):
            tiny.evaluate_plan([tables[:6], tables[6:]])

    def test_device_count_validated(self, cluster, tables):
        with pytest.raises(ValueError):
            cluster.evaluate_plan([tables])  # 1 list for a 2-device cluster

    def test_plan_fits(self, cluster, tables):
        assert cluster.plan_fits([tables[:2], tables[2:4]]) in (True, False)
        with pytest.raises(ValueError):
            cluster.plan_fits([tables])

    def test_balanced_beats_imbalanced(self, cluster, tables):
        balanced = [tables[0::2], tables[1::2]]
        imbalanced = [list(tables), []]
        if cluster.plan_fits(balanced) and cluster.plan_fits(imbalanced):
            b = cluster.evaluate_plan(balanced).max_cost_ms
            i = cluster.evaluate_plan(imbalanced).max_cost_ms
            assert b < i

    def test_deterministic(self, cluster, tables):
        per_device = [tables[:6], tables[6:]]
        a = cluster.evaluate_plan(per_device)
        b = cluster.evaluate_plan(per_device)
        assert a == b
