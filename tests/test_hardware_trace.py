"""Tests for repro.hardware.trace (Figure 1 timeline mechanics)."""

import pytest

from repro.data import synthesize_table_pool
from repro.hardware import TraceSimulator
from repro.hardware.trace import EVENT_KINDS, TraceEvent


@pytest.fixture(scope="module")
def tables():
    return synthesize_table_pool(num_tables=16, seed=4)


@pytest.fixture(scope="module")
def tracer() -> TraceSimulator:
    return TraceSimulator(batch_size=65536)


def split_round_robin(tables, num_devices):
    return [list(tables[d::num_devices]) for d in range(num_devices)]


class TestTraceEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TraceEvent(0, "mystery", 0.0, 1.0, 0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TraceEvent(0, "dense", 2.0, 1.0, 0)

    def test_duration(self):
        assert TraceEvent(0, "dense", 1.0, 3.5, 0).duration_ms == 2.5


class TestSimulation:
    def test_event_count_and_kinds(self, tracer, tables):
        per_device = split_round_robin(tables, 4)
        traces = tracer.simulate(per_device, num_iterations=2)
        assert len(traces) == 2
        for trace in traces:
            assert len(trace.events) == 4 * len(EVENT_KINDS)
            for d in range(4):
                kinds = [e.kind for e in trace.device_events(d)]
                assert kinds == list(EVENT_KINDS)

    def test_events_are_sequential_per_device(self, tracer, tables):
        per_device = split_round_robin(tables, 4)
        trace = tracer.simulate(per_device, num_iterations=1)[0]
        for d in range(4):
            events = trace.device_events(d)
            for a, b in zip(events, events[1:]):
                assert b.start_ms == pytest.approx(a.end_ms)

    def test_collectives_synchronize(self, tracer, tables):
        """No device's comm completes before the last device arrives."""
        per_device = split_round_robin(tables, 4)
        trace = tracer.simulate(per_device, num_iterations=1)[0]
        fwd_comm = [e for e in trace.events if e.kind == "fwd_comm"]
        last_arrival = max(e.start_ms for e in fwd_comm)
        assert all(e.end_ms >= last_arrival for e in fwd_comm)

    def test_embedding_cost_decomposition(self, tracer, tables):
        per_device = split_round_robin(tables, 2)
        trace = tracer.simulate(per_device, num_iterations=1)[0]
        for d in range(2):
            total = (
                trace.compute_costs_ms[d]
                + trace.fwd_comm_costs_ms[d]
                + trace.bwd_comm_costs_ms[d]
            )
            assert trace.embedding_costs_ms[d] == pytest.approx(total)

    def test_max_embedding_cost(self, tracer, tables):
        per_device = split_round_robin(tables, 4)
        trace = tracer.steady_state(per_device)
        assert trace.max_embedding_cost_ms == max(trace.embedding_costs_ms)

    def test_iteration_time_positive_and_stable(self, tracer, tables):
        per_device = split_round_robin(tables, 4)
        traces = tracer.simulate(per_device, num_iterations=4)
        times = [t.iteration_ms for t in traces]
        assert all(t > 0 for t in times)
        # Steady state: consecutive iterations converge.
        assert times[-1] == pytest.approx(times[-2], rel=0.05)

    def test_validation(self, tracer, tables):
        with pytest.raises(ValueError):
            tracer.simulate([], num_iterations=1)
        with pytest.raises(ValueError):
            tracer.simulate([[tables[0]]], num_iterations=0)
        with pytest.raises(ValueError):
            TraceSimulator(batch_size=0)


class TestStragglerEffect:
    def test_imbalance_raises_iteration_time(self, tracer, tables):
        """Piling every table on one device (imbalanced) must be slower
        than spreading them (balanced) — the Figure 1 story."""
        balanced = split_round_robin(tables, 4)
        imbalanced = [list(tables), [], [], []]
        t_bal = tracer.steady_state(balanced).iteration_ms
        t_imb = tracer.steady_state(imbalanced).iteration_ms
        assert t_imb > t_bal

    def test_imbalance_creates_waiting(self, tracer, tables):
        imbalanced = [list(tables), [], [], []]
        trace = tracer.steady_state(imbalanced)
        # The empty devices wait in the collectives for the loaded one.
        assert trace.idle_ms(1) > trace.idle_ms(0) * 0.5

    def test_throughput_favors_balance(self, tracer, tables):
        balanced = split_round_robin(tables, 4)
        imbalanced = [list(tables), [], [], []]
        assert tracer.throughput_samples_per_s(
            balanced
        ) > tracer.throughput_samples_per_s(imbalanced)
