"""Tests for repro.extensions (row-wise sharding, feature ablation)."""

import numpy as np
import pytest

from repro.baselines import GreedySharder
from repro.config import SearchConfig
from repro.core import NeuroShard
from repro.data import ShardingTask
from repro.data.table import TableConfig
from repro.extensions import (
    FEATURE_GROUPS,
    AblatedFeaturizer,
    RowWisePreprocessor,
    RowWiseSharder,
)
from repro.hardware.memory import MemoryModel


def big_table(hash_size=50_000_000, dim=8) -> TableConfig:
    return TableConfig(
        table_id=99,
        hash_size=hash_size,
        dim=dim,
        pooling_factor=20.0,
        zipf_alpha=1.4,
    )


class TestRowHalved:
    def test_splits_rows_and_pooling(self):
        t = big_table()
        hot, cold = t.row_halved()
        assert hot.hash_size + cold.hash_size == t.hash_size
        assert hot.dim == cold.dim == t.dim
        assert hot.pooling_factor + cold.pooling_factor == pytest.approx(
            t.pooling_factor, rel=0.01
        )

    def test_hot_shard_gets_most_lookups(self):
        hot, cold = big_table().row_halved()
        assert hot.pooling_factor > cold.pooling_factor

    def test_cold_shard_is_flatter(self):
        t = big_table()
        _, cold = t.row_halved()
        assert cold.zipf_alpha < t.zipf_alpha

    def test_memory_halves(self):
        t = big_table()
        hot, cold = t.row_halved()
        assert hot.size_bytes + cold.size_bytes == t.size_bytes

    def test_uids_differ(self):
        t = big_table()
        hot, cold = t.row_halved()
        assert hot.uid != cold.uid != t.uid

    def test_single_row_rejected(self):
        t = TableConfig(
            table_id=0, hash_size=1, dim=4, pooling_factor=1.0, zipf_alpha=1.0
        )
        with pytest.raises(ValueError):
            t.row_halved()


class TestRowWisePreprocessor:
    def test_splits_only_oversized(self):
        small = TableConfig(
            table_id=1, hash_size=1000, dim=8, pooling_factor=2.0, zipf_alpha=1.0
        )
        memory = MemoryModel(1 * 1024**3)
        pre = RowWisePreprocessor(max_fraction=0.5)
        decision = pre.preprocess([big_table(), small], memory)
        assert decision.num_splits >= 1
        assert 99 in decision.split_table_ids
        assert 1 not in decision.split_table_ids
        # Every output table fits the fraction limit.
        limit = 0.5 * memory.memory_bytes
        assert all(memory.table_bytes(t) <= limit for t in decision.tables)

    def test_preserves_total_bytes(self):
        memory = MemoryModel(1 * 1024**3)
        decision = RowWisePreprocessor().preprocess([big_table()], memory)
        assert sum(t.size_bytes for t in decision.tables) == big_table().size_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            RowWisePreprocessor(max_fraction=0.0)
        with pytest.raises(ValueError):
            RowWisePreprocessor(max_splits_per_table=0)


class TestRowWiseSharder:
    def test_enables_infeasible_dim4_tasks(self):
        """A dim-4 giant cannot be column-split (dimension floor) but can
        be row-split — the case the paper's future work targets."""
        giant = big_table(hash_size=60_000_000, dim=4)  # ~0.96 GB + opt
        filler = [
            TableConfig(
                table_id=i, hash_size=10_000, dim=4,
                pooling_factor=2.0, zipf_alpha=1.0,
            )
            for i in range(4)
        ]
        task = ShardingTask(
            tables=(giant, *filler),
            num_devices=2,
            memory_bytes=int(0.7 * 1024**3),
        )
        base = GreedySharder("Dim-based")
        assert base.shard(task) is None  # giant fits nowhere
        rowwise = RowWiseSharder(base)
        plan, decision = rowwise.shard_with_tables(task)
        assert plan is not None
        assert decision.num_splits >= 1
        per_device = plan.per_device_tables(decision.tables)
        assert MemoryModel(task.memory_bytes).placement_fits(per_device)

    def test_composes_with_neuroshard(self, tiny_bundle, tasks2):
        sharder = RowWiseSharder(
            NeuroShard(
                tiny_bundle,
                search=SearchConfig(top_n=2, beam_width=1, max_steps=2,
                                    grid_points=3),
            ),
            RowWisePreprocessor(max_fraction=0.4),
        )
        plan, decision = sharder.shard_with_tables(tasks2[0])
        assert plan is not None
        # The plan indexes the preprocessed table list.
        sharded = plan.sharded_tables(decision.tables)
        assert len(sharded) == len(decision.tables) + plan.num_splits

    def test_name_reflects_base(self):
        sharder = RowWiseSharder(GreedySharder("Dim-based"))
        assert sharder.name == "RowWise+Dim-based"


class TestAblatedFeaturizer:
    def test_zeroes_selected_groups(self):
        full = AblatedFeaturizer(65536, drop_groups=())
        ablated = AblatedFeaturizer(65536, drop_groups=("distribution",))
        t = big_table()
        fv_full = full.features(t)
        fv_ablated = ablated.features(t)
        for index in FEATURE_GROUPS["distribution"]:
            assert fv_ablated[index] == 0.0
        kept = [
            i
            for i in range(full.num_features)
            if i not in FEATURE_GROUPS["distribution"]
        ]
        assert np.allclose(fv_full[kept], fv_ablated[kept])

    def test_same_width_as_full(self):
        ablated = AblatedFeaturizer(65536, drop_groups=("pooling", "size"))
        assert ablated.num_features == AblatedFeaturizer(65536, ()).num_features

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            AblatedFeaturizer(65536, drop_groups=("nope",))

    def test_groups_cover_all_informative_features(self):
        """Every feature except the constant belongs to exactly one group."""
        covered = sorted(i for idxs in FEATURE_GROUPS.values() for i in idxs)
        assert covered == list(range(14))  # feature 14 is the constant
