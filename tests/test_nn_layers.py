"""Tests for repro.nn.layers, including numeric gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear, MSELoss, Parameter, ReLU, SegmentSum, Sequential


def numeric_gradient(f, param: Parameter, index, eps=1e-6) -> float:
    orig = param.data[index]
    param.data[index] = orig + eps
    up = f()
    param.data[index] = orig - eps
    down = f()
    param.data[index] = orig
    return (up - down) / (2 * eps)


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert np.all(p.grad == 0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer.forward(rng.normal(size=(3, 4)))
        assert out.shape == (3, 7)

    def test_rejects_wrong_width(self, rng):
        layer = Linear(4, 7, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 5)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng=rng).backward(np.zeros((1, 2)))

    def test_gradients_match_numeric(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(6, 5))
        y = rng.normal(size=(6, 3))
        loss = MSELoss()

        def run():
            return loss(layer.forward(x), y)

        run()
        layer.zero_grad()
        layer.backward(loss.backward())
        for index in [(0, 0), (2, 1), (4, 2)]:
            numeric = numeric_gradient(run, layer.weight, index)
            assert layer.weight.grad[index] == pytest.approx(numeric, abs=1e-6)
        numeric_b = numeric_gradient(run, layer.bias, (1,))
        assert layer.bias.grad[1] == pytest.approx(numeric_b, abs=1e-6)

    def test_input_gradient(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        grad_x = layer.backward(np.ones((4, 2)))
        expected = np.ones((4, 2)) @ layer.weight.data.T
        assert np.allclose(grad_x, expected)


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 3.0]]))
        grad = relu.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])


class TestSequential:
    def test_mlp_builder_layer_count(self, rng):
        net = Sequential.mlp([4, 8, 8, 1], rng=rng)
        linears = [m for m in net.modules if isinstance(m, Linear)]
        relus = [m for m in net.modules if isinstance(m, ReLU)]
        assert len(linears) == 3
        assert len(relus) == 2  # no ReLU after the output layer

    def test_mlp_final_activation(self, rng):
        net = Sequential.mlp([4, 8], rng=rng, final_activation=True)
        assert isinstance(net.modules[-1], ReLU)
        out = net.forward(rng.normal(size=(10, 4)))
        assert np.all(out >= 0)

    def test_end_to_end_gradient(self, rng):
        net = Sequential.mlp([3, 6, 1], rng=rng)
        x = rng.normal(size=(5, 3))
        y = rng.normal(size=(5, 1))
        loss = MSELoss()

        def run():
            return loss(net.forward(x), y)

        run()
        net.zero_grad()
        net.backward(loss.backward())
        p = next(net.parameters())
        numeric = numeric_gradient(run, p, (0, 0))
        assert p.grad[0, 0] == pytest.approx(numeric, abs=1e-6)

    def test_state_dict_roundtrip(self, rng):
        a = Sequential.mlp([3, 5, 1], rng=np.random.default_rng(1))
        b = Sequential.mlp([3, 5, 1], rng=np.random.default_rng(2))
        x = rng.normal(size=(4, 3))
        assert not np.allclose(a.forward(x), b.forward(x))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.forward(x), b.forward(x))

    def test_load_state_dict_shape_mismatch(self, rng):
        a = Sequential.mlp([3, 5, 1], rng=rng)
        b = Sequential.mlp([3, 4, 1], rng=rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_num_parameters(self, rng):
        net = Sequential.mlp([3, 5, 1], rng=rng)
        assert net.num_parameters() == 3 * 5 + 5 + 5 * 1 + 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequential()


class TestSegmentSum:
    def test_forward_sums_segments(self, rng):
        ss = SegmentSum()
        x = rng.normal(size=(5, 3))
        segments = np.array([0, 0, 1, 2, 2])
        out = ss.forward(x, segments, 3)
        assert np.allclose(out[0], x[:2].sum(axis=0))
        assert np.allclose(out[1], x[2])
        assert np.allclose(out[2], x[3:].sum(axis=0))

    def test_empty_segment_is_zero(self, rng):
        ss = SegmentSum()
        x = rng.normal(size=(2, 3))
        out = ss.forward(x, np.array([0, 2]), 3)
        assert np.allclose(out[1], 0.0)

    def test_backward_scatters(self, rng):
        ss = SegmentSum()
        x = rng.normal(size=(4, 2))
        segments = np.array([1, 0, 1, 1])
        ss.forward(x, segments, 2)
        grad_out = rng.normal(size=(2, 2))
        grad_x = ss.backward(grad_out)
        assert np.allclose(grad_x, grad_out[segments])

    def test_validation(self, rng):
        ss = SegmentSum()
        with pytest.raises(ValueError):
            ss.forward(rng.normal(size=(3, 2)), np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            ss.forward(rng.normal(size=(2, 2)), np.array([0, 5]), 2)

    def test_permutation_invariance_of_sums(self, rng):
        """Summing a segment is order-invariant — the property that makes
        the compute cost model permutation-invariant."""
        ss = SegmentSum()
        x = rng.normal(size=(6, 4))
        seg = np.zeros(6, dtype=np.int64)
        out1 = ss.forward(x, seg, 1)
        perm = rng.permutation(6)
        out2 = ss.forward(x[perm], seg, 1)
        assert np.allclose(out1, out2)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=20),
    segments=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_segment_sum_conserves_mass(rows, segments, seed):
    rng = np.random.default_rng(seed)
    ss = SegmentSum()
    x = rng.normal(size=(rows, 3))
    seg = rng.integers(0, segments, size=rows)
    out = ss.forward(x, seg, segments)
    assert np.allclose(out.sum(axis=0), x.sum(axis=0))
