"""Tests for the request/response wire schema (repro.api.schema)."""

import json
import math

import pytest

from repro.api import (
    SCHEMA_VERSION,
    ShardingRequest,
    ShardingResponse,
    plan_from_dict,
    plan_to_dict,
)
from repro.core import ShardingPlan


def _plan() -> ShardingPlan:
    return ShardingPlan(column_plan=(1, 0), assignment=(0, 1, 0, 1), num_devices=2)


class TestPlanDict:
    def test_round_trip(self):
        plan = _plan()
        assert plan_from_dict(plan_to_dict(plan)) == plan


class TestShardingRequest:
    def test_round_trip_through_json(self, tasks2):
        request = ShardingRequest(
            tasks2[0],
            strategy="beam",
            request_id="job-1",
            options={"lifelong_cache": True},
        )
        payload = json.loads(json.dumps(request.to_dict()))
        restored = ShardingRequest.from_dict(payload)
        assert restored.task == tasks2[0]
        assert restored.strategy == "beam"
        assert restored.request_id == "job-1"
        assert restored.options == {"lifelong_cache": True}

    def test_version_tag_present_and_checked(self, tasks2):
        payload = ShardingRequest(tasks2[0]).to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            ShardingRequest.from_dict(payload)

    def test_with_strategy_copies(self, tasks2):
        request = ShardingRequest(tasks2[0], strategy="beam", request_id="x")
        other = request.with_strategy("milp")
        assert other.strategy == "milp"
        assert other.request_id == "x"
        assert request.strategy == "beam"


class TestShardingResponse:
    def test_round_trip_through_json(self):
        response = ShardingResponse(
            request_id="job-1",
            strategy="beam",
            feasible=True,
            plan=_plan(),
            simulated_cost_ms=12.5,
            sharding_time_s=0.25,
            cache_hit_rate=0.9,
            evaluations=42,
        )
        payload = json.loads(json.dumps(response.to_dict()))
        restored = ShardingResponse.from_dict(payload)
        assert restored == response

    def test_infeasible_inf_cost_is_json_safe(self):
        response = ShardingResponse(
            request_id="",
            strategy="random",
            feasible=False,
            plan=None,
            simulated_cost_ms=math.inf,
            sharding_time_s=0.0,
        )
        payload = response.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["simulated_cost_ms"] is None
        restored = ShardingResponse.from_dict(payload)
        assert math.isinf(restored.simulated_cost_ms)
        assert restored.plan is None

    def test_version_checked(self):
        payload = ShardingResponse(
            request_id="",
            strategy="beam",
            feasible=False,
            plan=None,
            simulated_cost_ms=math.inf,
            sharding_time_s=0.0,
        ).to_dict()
        payload["schema_version"] = 0
        with pytest.raises(ValueError, match="schema version"):
            ShardingResponse.from_dict(payload)

    def test_deterministic_dict_drops_only_wall_clock(self):
        response = ShardingResponse(
            request_id="r",
            strategy="beam",
            feasible=True,
            plan=_plan(),
            simulated_cost_ms=1.0,
            sharding_time_s=123.0,
        )
        deterministic = response.deterministic_dict()
        assert "sharding_time_s" not in deterministic
        # The profile carries wall-clock stage timers, so it is dropped
        # from the deterministic view alongside sharding_time_s.
        assert "profile" not in deterministic
        full = response.to_dict()
        full.pop("sharding_time_s")
        full.pop("profile")
        assert deterministic == full
