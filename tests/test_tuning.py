"""The budget-aware auto-tuner and its TunedProfile artifact.

Four contracts:

1. ``TunedProfile``/``TunedCandidate`` JSON round-trips exactly for
   arbitrary valid instances (hypothesis) and rejects foreign schema
   versions — the house versioned-payload rule.
2. Candidate enumeration is validated, deterministic, and cheapest-first;
   pruning only fires on proof; the frontier is the exact Pareto set.
3. The disk cache is deterministic: one config hash maps to one byte
   representation, a warm rerun evaluates nothing, and a stale code
   fingerprint is a miss.
4. End to end, a tuned profile's chosen config is what a deployment
   created with it actually plans (and reshards) with.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    PlanStore,
    ReshardConfig,
    ShardingEngine,
    ShardingService,
    WorkloadDelta,
)
from repro.config import SearchConfig
from repro.evaluation.production import REPLAY_SEARCH_CONFIG
from repro.tuning import (
    DEFAULT_SEARCH_SPACE,
    PROFILE_SCHEMA_VERSION,
    EvaluationCache,
    TunedCandidate,
    TunedProfile,
    candidate_work,
    default_candidate,
    enumerate_candidates,
    list_profiles,
    load_profile,
    pareto_frontier,
    profile_path,
    proven_dominated,
    save_profile,
    tune_scenario,
)

_SETTINGS = settings(max_examples=25, deadline=None)

#: A 3-candidate space (+ the always-evaluated default) that keeps the
#: end-to-end tuning tests fast.
TINY_SPACE = {
    "top_n": (2,),
    "beam_width": (1,),
    "max_steps": (2, 4),
    "grid_points": (3,),
    "grid_end_factor": (1.5,),
    "migration_lambda": (1e-4, 1e-3),
    "migration_budget_ms": (None,),
}


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

search_st = st.builds(
    SearchConfig,
    top_n=st.integers(min_value=1, max_value=12),
    beam_width=st.integers(min_value=1, max_value=4),
    max_steps=st.integers(min_value=0, max_value=10),
    grid_points=st.integers(min_value=1, max_value=11),
    grid_end_factor=st.floats(min_value=1.0, max_value=3.0,
                              allow_nan=False, allow_infinity=False),
)

reshard_st = st.builds(
    ReshardConfig,
    migration_budget_ms=st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=1e4,
                  allow_nan=False, allow_infinity=False),
    ),
    migration_lambda=st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False, allow_infinity=False),
    allow_full_search=st.booleans(),
    max_refine_steps=st.integers(min_value=0, max_value=64),
)

costs_st = st.one_of(
    st.just(math.inf),
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
)

candidate_st = st.builds(
    TunedCandidate,
    search=search_st,
    reshard=reshard_st,
    cost_ms=costs_st,
    peak_cost_ms=costs_st,
    feasible=st.booleans(),
    from_cache=st.booleans(),
)


@st.composite
def profile_st(draw):
    return TunedProfile(
        scenario=draw(st.sampled_from(["flash_crowd", "table_churn", "x"])),
        chosen=draw(candidate_st),
        default=draw(candidate_st),
        frontier=tuple(draw(st.lists(candidate_st, max_size=3))),
        seed=draw(st.integers(min_value=0, max_value=99)),
        num_devices=draw(st.integers(min_value=1, max_value=8)),
        memory_bytes=draw(st.integers(min_value=1, max_value=2**40)),
        num_tables=draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=64))),
        steps=draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=64))),
        budget_s=draw(st.floats(min_value=0.1, max_value=1e4,
                                allow_nan=False, allow_infinity=False)),
        elapsed_s=draw(st.floats(min_value=0.0, max_value=1e4,
                                 allow_nan=False, allow_infinity=False)),
        code_fingerprint=draw(st.sampled_from(["", "abc123"])),
        bundle_key=draw(st.sampled_from(["", "prod@v1", "shape:2dev"])),
        evaluated=draw(st.integers(min_value=0, max_value=999)),
        pruned=draw(st.integers(min_value=0, max_value=999)),
        skipped=draw(st.integers(min_value=0, max_value=999)),
        cache_hits=draw(st.integers(min_value=0, max_value=999)),
        created_at=draw(st.floats(min_value=0.0, max_value=2e9,
                                  allow_nan=False, allow_infinity=False)),
        scenario_kwargs=draw(st.dictionaries(
            st.sampled_from(["spike_factor", "churn"]),
            st.integers(min_value=0, max_value=9),
            max_size=2,
        )),
    )


# ----------------------------------------------------------------------
# 1. profile round-trips
# ----------------------------------------------------------------------


class TestProfileSchema:
    @_SETTINGS
    @given(candidate_st)
    def test_candidate_round_trip(self, candidate):
        payload = json.loads(json.dumps(candidate.to_dict()))
        assert TunedCandidate.from_dict(payload) == candidate

    @_SETTINGS
    @given(profile_st())
    def test_profile_round_trip(self, profile):
        payload = json.loads(json.dumps(profile.to_dict()))
        assert TunedProfile.from_dict(payload) == profile

    def test_infinite_cost_serializes_as_null(self):
        candidate = TunedCandidate(
            search=SearchConfig(), reshard=ReshardConfig(),
            cost_ms=math.inf, peak_cost_ms=math.inf, feasible=False,
        )
        payload = candidate.to_dict()
        assert payload["cost_ms"] is None
        assert payload["peak_cost_ms"] is None
        assert TunedCandidate.from_dict(payload).cost_ms == math.inf

    @pytest.mark.parametrize("version", [0, 2, None, "1"])
    def test_foreign_schema_version_is_rejected(self, version):
        payload = _profile_fixture().to_dict()
        payload["schema_version"] = version
        with pytest.raises(ValueError, match="schema version"):
            TunedProfile.from_dict(payload)

    def test_out_of_range_knob_in_payload_fails_loudly(self):
        payload = _profile_fixture().to_dict()
        payload["chosen"]["search"]["top_n"] = 0
        with pytest.raises(ValueError, match="top_n must be >= 1, got 0"):
            TunedProfile.from_dict(payload)

    def test_unknown_knob_in_payload_fails_loudly(self):
        payload = _profile_fixture().to_dict()
        payload["chosen"]["search"]["beem_width"] = 2
        with pytest.raises(ValueError, match="unknown SearchConfig knobs"):
            TunedProfile.from_dict(payload)

    def test_profile_path_rejects_traversal(self, tmp_path):
        for name in ("", "../etc", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="invalid scenario name"):
                profile_path(tmp_path, name)

    def test_save_load_list(self, tmp_path):
        profile = _profile_fixture()
        path = save_profile(profile, tmp_path)
        assert path == tmp_path / "flash_crowd.json"
        assert load_profile(path) == profile
        assert list_profiles(tmp_path) == [profile]
        assert list_profiles(tmp_path / "missing") == []


def _profile_fixture() -> TunedProfile:
    search, reshard = default_candidate(16)
    candidate = TunedCandidate(
        search=search, reshard=reshard, cost_ms=10.0, peak_cost_ms=12.0,
    )
    return TunedProfile(
        scenario="flash_crowd",
        chosen=candidate,
        default=candidate,
        frontier=(candidate,),
        seed=0,
        num_devices=2,
        memory_bytes=2 * 1024**3,
        num_tables=8,
        steps=6,
        budget_s=30.0,
        elapsed_s=1.0,
        code_fingerprint="abc",
        bundle_key="shape:2dev:b65536",
        evaluated=1,
        pruned=0,
        skipped=0,
        cache_hits=0,
        created_at=0.0,
    )


# ----------------------------------------------------------------------
# 2. enumeration / pruning / frontier
# ----------------------------------------------------------------------


class TestEnumeration:
    def test_default_space_size_and_order(self):
        candidates = enumerate_candidates()
        expected = 1
        for values in DEFAULT_SEARCH_SPACE.values():
            expected *= len(values)
        assert len(candidates) == expected
        works = [candidate_work(search) for search, _ in candidates]
        assert works == sorted(works)

    def test_deterministic(self):
        assert enumerate_candidates() == enumerate_candidates()

    def test_unknown_knob_fails(self):
        with pytest.raises(ValueError, match="unknown tuning knobs"):
            enumerate_candidates({"beem_width": (1,)})

    def test_empty_grid_fails(self):
        with pytest.raises(ValueError, match="empty value grid"):
            enumerate_candidates({"top_n": ()})

    def test_out_of_range_value_fails(self):
        with pytest.raises(ValueError, match="top_n must be >= 1, got 0"):
            enumerate_candidates({"top_n": (0,)})
        with pytest.raises(ValueError,
                           match="migration_lambda must be >= 0"):
            enumerate_candidates({"migration_lambda": (-1.0,)})

    def test_shared_refine_steps(self):
        for _, reshard in enumerate_candidates(TINY_SPACE,
                                               max_refine_steps=7):
            assert reshard.max_refine_steps == 7


class TestPruning:
    def _cand(self, cost, **knobs):
        return TunedCandidate(
            search=SearchConfig(**knobs), reshard=ReshardConfig(),
            cost_ms=cost, peak_cost_ms=cost,
        )

    def test_plateau_proves_domination(self):
        # Cost did not improve from work 40 -> 160 along the pending
        # config's own knob directions: the pending 640 is pruned.
        evidence = [
            self._cand(10.0, top_n=2, beam_width=2, max_steps=1,
                       grid_points=5),
            self._cand(10.0, top_n=4, beam_width=2, max_steps=2,
                       grid_points=10),
        ]
        assert proven_dominated(
            SearchConfig(top_n=8, beam_width=2, max_steps=4,
                         grid_points=10),
            ReshardConfig(), evidence,
        )

    def test_improving_cost_is_not_proof(self):
        evidence = [
            self._cand(10.0, top_n=2, beam_width=2, max_steps=1,
                       grid_points=5),
            self._cand(9.0, top_n=4, beam_width=2, max_steps=2,
                       grid_points=10),
        ]
        assert not proven_dominated(
            SearchConfig(top_n=8, beam_width=2, max_steps=4,
                         grid_points=10),
            ReshardConfig(), evidence,
        )

    def test_other_reshard_pair_is_no_evidence(self):
        evidence = [
            self._cand(10.0, top_n=2, beam_width=2, max_steps=1,
                       grid_points=5),
            self._cand(10.0, top_n=4, beam_width=2, max_steps=2,
                       grid_points=10),
        ]
        assert not proven_dominated(
            SearchConfig(top_n=8, beam_width=2, max_steps=4,
                         grid_points=10),
            ReshardConfig(migration_lambda=0.5), evidence,
        )

    def test_frontier_is_the_pareto_set(self):
        a = self._cand(10.0, top_n=1, beam_width=1, max_steps=1,
                       grid_points=1)
        b = self._cand(8.0, top_n=2, beam_width=1, max_steps=1,
                       grid_points=1)
        c = self._cand(9.0, top_n=4, beam_width=1, max_steps=1,
                       grid_points=1)  # dominated by b
        assert pareto_frontier([a, b, c]) == (a, b)


# ----------------------------------------------------------------------
# 3. tuning runs + cache determinism
# ----------------------------------------------------------------------


def _tune(tiny_bundle, small_pool, **kwargs):
    kwargs.setdefault("budget_s", 600.0)
    kwargs.setdefault("steps", 6)
    kwargs.setdefault("num_tables", 8)
    kwargs.setdefault("search_space", TINY_SPACE)
    return tune_scenario("flash_crowd", tiny_bundle, small_pool, **kwargs)


class TestTuneScenario:
    def test_input_validation(self, tiny_bundle, small_pool):
        with pytest.raises(ValueError, match="budget_s must be > 0"):
            _tune(tiny_bundle, small_pool, budget_s=0.0)
        with pytest.raises(ValueError, match="max_candidates must be >= 1"):
            _tune(tiny_bundle, small_pool, max_candidates=0)

    def test_chosen_never_loses_to_default(self, tiny_bundle, small_pool):
        profile = _tune(tiny_bundle, small_pool)
        assert profile.chosen.feasible
        assert profile.chosen.cost_ms <= profile.default.cost_ms
        assert profile.default.search == REPLAY_SEARCH_CONFIG
        # The frontier is non-dominated and ascending in work.
        works = [c.work for c in profile.frontier]
        costs = [c.cost_ms for c in profile.frontier]
        assert works == sorted(works)
        assert costs == sorted(costs, reverse=True)

    def test_deterministic_across_runs(self, tiny_bundle, small_pool):
        first = _tune(tiny_bundle, small_pool)
        second = _tune(tiny_bundle, small_pool)
        # Wall-clock provenance aside, reruns are bit-identical.
        for field in ("chosen", "default", "frontier", "evaluated",
                      "pruned", "code_fingerprint", "bundle_key"):
            assert getattr(first, field) == getattr(second, field)

    def test_max_candidates_caps_evaluations(self, tiny_bundle, small_pool):
        profile = _tune(tiny_bundle, small_pool, max_candidates=1)
        assert profile.evaluated == 1
        assert profile.skipped > 0
        # The only evaluation is the always-first default baseline.
        assert profile.chosen == profile.default

    def test_cache_hash_maps_to_one_byte_representation(
        self, tiny_bundle, small_pool, tmp_path
    ):
        cold = _tune(tiny_bundle, small_pool, cache_dir=tmp_path / "a")
        again = _tune(tiny_bundle, small_pool, cache_dir=tmp_path / "b")
        assert cold.cache_hits == again.cache_hits == 0
        files_a = sorted(p.name for p in (tmp_path / "a").glob("*.json"))
        files_b = sorted(p.name for p in (tmp_path / "b").glob("*.json"))
        assert files_a and files_a == files_b
        for name in files_a:
            assert (tmp_path / "a" / name).read_bytes() == \
                (tmp_path / "b" / name).read_bytes()

    def test_warm_rerun_evaluates_nothing(self, tiny_bundle, small_pool,
                                          tmp_path):
        cold = _tune(tiny_bundle, small_pool, cache_dir=tmp_path)
        warm = _tune(tiny_bundle, small_pool, cache_dir=tmp_path)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.evaluated == cold.evaluated
        # Identical outcome; only the cache provenance flag differs.
        assert warm.chosen.search == cold.chosen.search
        assert warm.chosen.reshard == cold.chosen.reshard
        assert warm.chosen.cost_ms == cold.chosen.cost_ms
        assert all(c.from_cache for c in (warm.chosen, warm.default))

    def test_stale_code_fingerprint_re_evaluates(
        self, tiny_bundle, small_pool, tmp_path, monkeypatch
    ):
        cold = _tune(tiny_bundle, small_pool, cache_dir=tmp_path)
        assert cold.cache_hits == 0
        import repro.tuning.tuner as tuner_module

        monkeypatch.setattr(
            tuner_module, "tuning_code_fingerprint", lambda: "stale"
        )
        rerun = _tune(tiny_bundle, small_pool, cache_dir=tmp_path)
        assert rerun.cache_hits == 0
        assert rerun.code_fingerprint == "stale"
        assert rerun.chosen.search == cold.chosen.search

    def test_cache_ignores_garbage_entries(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        cache.path("deadbeef").write_text("{not json")
        assert cache.get("deadbeef", "fp") is None
        cache.put("deadbeef", {"code_fingerprint": "fp", "cost_ms": 1.0})
        assert cache.get("deadbeef", "fp")["cost_ms"] == 1.0
        assert cache.get("deadbeef", "other-fp") is None


# ----------------------------------------------------------------------
# 4. end to end: tune -> save -> create --profile -> plan
# ----------------------------------------------------------------------


class TestProfileApplication:
    @pytest.fixture()
    def tuned_profile(self, tiny_bundle, small_pool, tmp_path):
        profile = _tune(tiny_bundle, small_pool)
        return load_profile(save_profile(profile, tmp_path / "profiles"))

    def _service(self, cluster2, tiny_bundle, tmp_path, name):
        engine = ShardingEngine(cluster2, tiny_bundle)
        return ShardingService(PlanStore(tmp_path / name)), engine

    def test_plan_uses_the_chosen_search_config(
        self, tuned_profile, cluster2, tiny_bundle, small_pool, tmp_path
    ):
        service, engine = self._service(
            cluster2, tiny_bundle, tmp_path, "store"
        )
        tables = tuple(small_pool.tables[:6])
        service.create_deployment(
            "tuned", engine, tables=tables, profile=tuned_profile
        )
        service.create_deployment("plain", engine, tables=tables)

        injected = service.plan("tuned")
        explicit = service.plan(
            "plain",
            options={"search": tuned_profile.chosen.search.to_dict()},
        )
        assert injected.feasible and explicit.feasible
        assert injected.plan == explicit.plan
        assert injected.simulated_cost_ms == explicit.simulated_cost_ms
        # An explicit per-request search config still wins.
        override = service.plan(
            "tuned", options={"search": SearchConfig().to_dict()}
        )
        assert override.feasible

    def test_reshard_defaults_to_the_chosen_reshard_config(
        self, tuned_profile, cluster2, tiny_bundle, small_pool, tmp_path
    ):
        service, engine = self._service(
            cluster2, tiny_bundle, tmp_path, "store"
        )
        tables = tuple(small_pool.tables[:6])
        service.create_deployment(
            "tuned", engine, tables=tables, profile=tuned_profile
        )
        service.plan("tuned")
        service.apply("tuned")
        record = service.reshard(
            "tuned", WorkloadDelta(add_tables=(small_pool.tables[7],))
        )
        assert record.metadata["reshard_config"] == \
            tuned_profile.chosen.reshard.to_dict()

    def test_profile_survives_service_restart(
        self, tuned_profile, cluster2, tiny_bundle, small_pool, tmp_path
    ):
        service, engine = self._service(
            cluster2, tiny_bundle, tmp_path, "store"
        )
        tables = tuple(small_pool.tables[:6])
        service.create_deployment(
            "tuned", engine, tables=tables, profile=tuned_profile
        )
        first = service.plan("tuned")

        reopened = ShardingService.open(
            PlanStore(tmp_path / "store"), lambda meta: engine
        )
        assert reopened.status("tuned")["tuned_profile"] == "flash_crowd"
        second = reopened.plan("tuned")
        assert second.plan == first.plan
        assert second.simulated_cost_ms == first.simulated_cost_ms

    def test_device_count_mismatch_is_rejected(
        self, tuned_profile, cluster4, tiny_bundle, small_pool, tmp_path
    ):
        service = ShardingService(PlanStore(tmp_path / "store"))
        engine = ShardingEngine(cluster4)
        with pytest.raises(ValueError, match="tuned for 2 devices"):
            service.create_deployment(
                "tuned",
                engine,
                tables=tuple(small_pool.tables[:6]),
                profile=tuned_profile,
            )

    def test_profile_type_is_validated(self, cluster2, tiny_bundle,
                                       small_pool, tmp_path):
        service, engine = self._service(
            cluster2, tiny_bundle, tmp_path, "store"
        )
        with pytest.raises(TypeError, match="profile must be a TunedProfile"):
            service.create_deployment(
                "bad",
                engine,
                tables=tuple(small_pool.tables[:6]),
                profile="profiles/flash_crowd.json",
            )
