"""Extended property-based tests and failure injection.

Covers invariants across the newer substrates (hetero comm, topology,
JSON I/O, linear models) plus adversarial inputs for the persistence
layers.  Complements ``test_search_properties.py`` (search invariants)
and the per-module hypothesis tests.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import LinearComputeCostModel
from repro.data import load_tasks, save_tasks, table_from_dict, table_to_dict
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask
from repro.hardware import (
    AllToAllModel,
    EmbeddingKernelModel,
    HeteroAllToAllModel,
    HierarchicalAllToAllModel,
    MemoryModel,
    TopologySpec,
    cpu_host,
    gpu_2080ti,
    gpu_a100,
)

BATCH = 2048

# A strategy over legal table configurations (dims are multiples of 4).
tables_st = st.builds(
    TableConfig,
    table_id=st.integers(min_value=0, max_value=10_000),
    hash_size=st.integers(min_value=1, max_value=10**8),
    dim=st.sampled_from([4, 8, 16, 32, 64, 128, 256]),
    pooling_factor=st.floats(min_value=0.01, max_value=200.0),
    zipf_alpha=st.floats(min_value=0.0, max_value=2.5),
    bytes_per_element=st.sampled_from([1, 2, 4, 8]),
)

dims_st = st.lists(
    st.integers(min_value=0, max_value=4096), min_size=2, max_size=12
)


class TestTableSerializationProperties:
    @given(table=tables_st)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_is_identity(self, table):
        encoded = json.dumps(table_to_dict(table))
        assert table_from_dict(json.loads(encoded)) == table

    @given(table=tables_st)
    @settings(max_examples=50, deadline=None)
    def test_task_round_trip_is_identity(self, table, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "tasks.json"
        task = ShardingTask(
            tables=(table,), num_devices=2, memory_bytes=1024**4
        )
        save_tasks([task], path)
        assert load_tasks(path) == [task]


class TestMemoryModelProperties:
    @given(tables=st.lists(tables_st, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_device_bytes_additive(self, tables):
        memory = MemoryModel(1024**3)
        total = memory.device_bytes(tables)
        assert total == sum(memory.table_bytes(t) for t in tables)

    @given(table=tables_st.filter(lambda t: t.dim >= 8))
    @settings(max_examples=60, deadline=None)
    def test_column_split_never_reduces_footprint(self, table):
        """Column sharding duplicates the row-wise optimizer state, so
        the shards' combined footprint is >= the parent's."""
        memory = MemoryModel(1024**3)
        a, b = table.halved()
        assert memory.table_bytes(a) + memory.table_bytes(b) >= (
            memory.table_bytes(table)
        )

    @given(table=tables_st.filter(lambda t: t.hash_size >= 2))
    @settings(max_examples=60, deadline=None)
    def test_row_split_conserves_rows_and_lookups(self, table):
        hot, cold = table.row_halved()
        assert hot.hash_size + cold.hash_size == table.hash_size
        combined = hot.pooling_factor + cold.pooling_factor
        # Pooling splits by access mass, floored at 0.01 per shard.
        assert combined == pytest.approx(table.pooling_factor, abs=0.025)


class TestKernelProperties:
    @given(
        table=tables_st.filter(lambda t: t.dim <= 128),
        factor=st.floats(min_value=1.5, max_value=8.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_cost_monotone_in_pooling(self, table, factor):
        kernel = EmbeddingKernelModel(gpu_2080ti())
        import dataclasses

        heavier = dataclasses.replace(
            table, pooling_factor=table.pooling_factor * factor
        )
        assert kernel.total_ms([heavier], BATCH, noisy=False) > (
            kernel.total_ms([table], BATCH, noisy=False)
        )

    # Parents are drawn from the supported dimension grid (<= 128, like
    # DIMENSION_GRID / task max_dim): Hypothesis found that the analytic
    # cache-residency term breaks the guarantee for out-of-domain dim-256
    # parents (e.g. hash_size=663, pooling=200, 8-byte elements), where
    # halving the working set shifts traffic from gather to cache
    # bandwidth faster than the saturated transaction-efficiency penalty
    # grows — see the Observation 1 note in repro.hardware.kernel.
    @given(table=tables_st.filter(lambda t: 8 <= t.dim <= 128))
    @settings(max_examples=40, deadline=None)
    def test_observation1_holds_for_arbitrary_tables(self, table):
        """Each half-dim shard costs more than half the parent — for any
        legal table on the supported dimension grid, not just the
        figures' samples."""
        kernel = EmbeddingKernelModel(gpu_2080ti())
        parent = kernel.total_ms([table], BATCH, noisy=False)
        shard, _ = table.halved()
        shard_cost = kernel.total_ms([shard], BATCH, noisy=False)
        assert shard_cost > parent / 2

    @given(tables=st.lists(tables_st, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_observation2_fused_subadditive(self, tables):
        kernel = EmbeddingKernelModel(gpu_2080ti())
        fused = kernel.total_ms(tables, BATCH, noisy=False)
        singles = kernel.sum_of_single_table_ms(tables, BATCH, noisy=False)
        assert fused < singles


class TestCommProperties:
    @given(dims=dims_st)
    @settings(max_examples=60, deadline=None)
    def test_hetero_matches_flat_on_identical_specs(self, dims):
        spec = gpu_2080ti()
        flat = AllToAllModel(spec).measure(dims, BATCH, noisy=False)
        hetero = HeteroAllToAllModel([spec] * len(dims)).measure(
            dims, BATCH, noisy=False
        )
        np.testing.assert_allclose(flat.costs_ms, hetero.costs_ms, rtol=1e-12)

    @given(dims=dims_st, bump=st.integers(min_value=1, max_value=2048))
    @settings(max_examples=60, deadline=None)
    def test_growing_any_dim_never_reduces_max_cost(self, dims, bump):
        specs = [gpu_2080ti(), gpu_a100(), cpu_host()] * 4
        model = HeteroAllToAllModel(specs[: len(dims)])
        base = model.measure(dims, BATCH, noisy=False).max_cost_ms
        grown = list(dims)
        grown[0] += bump
        bigger = model.measure(grown, BATCH, noisy=False).max_cost_ms
        assert bigger >= base - 1e-9

    @given(dims=dims_st, node_size=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_topology_costs_finite_and_nonnegative(self, dims, node_size):
        model = HierarchicalAllToAllModel(
            topology=TopologySpec(node_size=node_size)
        )
        meas = model.measure(dims, BATCH, noisy=False)
        assert all(np.isfinite(c) and c >= 0 for c in meas.costs_ms)

    @given(
        dims=dims_st,
        starts=st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=12
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_barrier_cost_lower_bound(self, dims, starts):
        """Every device's measured cost is at least its wait for the
        barrier: completion >= latest start."""
        n = min(len(dims), len(starts))
        dims, starts = dims[:n], starts[:n]
        if n < 2:
            return
        model = AllToAllModel(gpu_2080ti())
        meas = model.measure(dims, BATCH, start_times_ms=starts, noisy=False)
        barrier = max(starts)
        for cost, start in zip(meas.costs_ms, starts):
            assert cost >= barrier - start - 1e-9


class TestLinearModelProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_samples=st.integers(min_value=30, max_value=120),
    )
    @settings(max_examples=20, deadline=None)
    def test_ridge_recovers_linear_ground_truth(self, seed, n_samples):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=5)
        count_w = float(rng.normal())
        bias = float(rng.normal())
        mats = [
            rng.normal(size=(int(rng.integers(1, 7)), 5))
            for _ in range(n_samples)
        ]
        y = [float(m.sum(axis=0) @ w + count_w * len(m) + bias) for m in mats]
        model = LinearComputeCostModel(num_features=5, l2=1e-12)
        model.fit(mats, y)
        preds = model.predict_many(mats)
        np.testing.assert_allclose(preds, y, atol=1e-5)

    @given(l2=st.floats(min_value=1e-6, max_value=1e3))
    @settings(max_examples=20, deadline=None)
    def test_predictions_finite_for_any_penalty(self, l2):
        rng = np.random.default_rng(0)
        mats = [rng.normal(size=(3, 4)) for _ in range(50)]
        y = rng.normal(size=50)
        model = LinearComputeCostModel(num_features=4, l2=l2)
        model.fit(mats, list(y))
        assert np.all(np.isfinite(model.predict_many(mats[:5])))


class TestFailureInjection:
    def test_bundle_with_corrupted_metadata_rejected(self, tiny_bundle, tmp_path):
        from repro.costmodel import PretrainedCostModels

        directory = tmp_path / "bundle"
        tiny_bundle.save(directory)
        meta = json.loads((directory / "metadata.json").read_text())
        meta["num_features"] = meta["num_features"] + 3
        (directory / "metadata.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="feature layout"):
            PretrainedCostModels.load(directory)

    def test_bundle_with_missing_weights_rejected(self, tiny_bundle, tmp_path):
        from repro.costmodel import PretrainedCostModels

        directory = tmp_path / "bundle"
        tiny_bundle.save(directory)
        (directory / "compute.npz").unlink()
        with pytest.raises((FileNotFoundError, OSError)):
            PretrainedCostModels.load(directory)

    def test_tasks_file_with_corrupt_table_rejected(self, tmp_path):
        task = ShardingTask(
            tables=(
                TableConfig(table_id=0, hash_size=10, dim=8,
                            pooling_factor=1.0, zipf_alpha=0.5),
            ),
            num_devices=2,
            memory_bytes=1024**3,
        )
        path = tmp_path / "tasks.json"
        save_tasks([task], path)
        data = json.loads(path.read_text())
        data["tasks"][0]["tables"][0]["hash_size"] = -5
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="hash_size"):
            load_tasks(path)

    def test_tasks_file_with_truncated_json_rejected(self, tmp_path):
        path = tmp_path / "tasks.json"
        path.write_text('{"format": "neuroshard-repro/sharding-tasks", "ver')
        with pytest.raises(json.JSONDecodeError):
            load_tasks(path)

    def test_nan_features_do_not_crash_linear_model(self):
        model = LinearComputeCostModel(num_features=3, l2=1.0)
        mats = [np.ones((2, 3))] * 10
        model.fit(mats, [1.0] * 10)
        pred = model.predict_one(np.full((2, 3), np.nan))
        assert np.isnan(pred)  # NaN in, NaN out — never a wrong number
