"""Hypothesis properties of the discrete-event simulator.

Three laws of :mod:`repro.simulator`:

1. **Stable clock ordering** — the :class:`~repro.simulator.events
   .EventClock` pops time-ascending, and events sharing a timestamp pop
   in push order, for *every* push sequence (the heap must never fall
   back to comparing payloads).
2. **Seed determinism** — one ``(trace, policy, sim_seed)`` triple
   yields a byte-identical :class:`~repro.simulator.report
   .SimulationReport` JSON on every run, machine processes included.
3. **Replay equivalence** — a pure atlas trace (quiet fleet) driven
   through :func:`~repro.simulator.runner.simulate_policy` with the
   ``immediate`` policy reproduces :func:`~repro.evaluation.production
   .replay_workload_trace` decision for decision: same reshard
   outcomes, same moved bytes, same serving cost after every step.

Like ``test_scenario_properties.py``, the engine quantifies over the
*harness* with a hand-built linear bundle — deterministic and
training-free, so the properties can afford real end-to-end runs.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ShardingEngine
from repro.config import ClusterConfig
from repro.costmodel.features import TableFeaturizer
from repro.costmodel.linear_model import (
    LinearCommCostModel,
    LinearComputeCostModel,
)
from repro.costmodel.pretrain import PretrainedCostModels
from repro.evaluation import replay_workload_trace
from repro.hardware import SimulatedCluster
from repro.scenarios import available_scenarios, make_trace
from repro.simulator import (
    Event,
    EventClock,
    FleetSpec,
    SimulationConfig,
    make_policy,
    simulate_policy,
)
from repro.simulator.events import EVENT_KINDS, POLICY_TICK

_SETTINGS = settings(max_examples=10, deadline=None)
_NUM_DEVICES = 2
_BATCH = 4096
_MEMORY = 2 * 1024**3


# ----------------------------------------------------------------------
# 1. clock ordering
# ----------------------------------------------------------------------

# A coarse time grid forces plenty of equal timestamps.
_events_st = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0]),
        st.sampled_from(sorted(EVENT_KINDS)),
    ),
    max_size=40,
)


@_SETTINGS
@given(_events_st)
def test_clock_pops_time_ascending_with_stable_ties(items):
    clock = EventClock()
    for index, (time, kind) in enumerate(items):
        clock.push(Event(time, kind, payload=index))
    popped = [clock.pop() for _ in range(len(items))]
    assert [e.time for e in popped] == sorted(e.time for e in popped)
    for time in {e.time for e in popped}:
        same_time = [e.payload for e in popped if e.time == time]
        assert same_time == sorted(same_time)  # push order preserved


@_SETTINGS
@given(_events_st)
def test_pop_simultaneous_partitions_the_stream(items):
    clock = EventClock()
    for index, (time, kind) in enumerate(items):
        clock.push(Event(time, kind, payload=index))
    batches = []
    while not clock.empty:
        batches.append(clock.pop_simultaneous())
    # Batches partition the events, strictly time-ascending, and each
    # batch is single-timestamp in push order.
    assert sum(len(b) for b in batches) == len(items)
    times = [b[0].time for b in batches]
    assert times == sorted(set(times))
    for batch in batches:
        assert len({e.time for e in batch}) == 1
        payloads = [e.payload for e in batch]
        assert payloads == sorted(payloads)


@given(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
@settings(max_examples=10, deadline=None)
def test_clock_rejects_time_travel(delta):
    clock = EventClock()
    clock.push(Event(delta, POLICY_TICK))
    clock.pop()
    with pytest.raises(ValueError):
        clock.push(Event(delta / 2, POLICY_TICK))


# ----------------------------------------------------------------------
# deterministic engine (no training)
# ----------------------------------------------------------------------


def _linear_bundle() -> PretrainedCostModels:
    """A hand-built bundle: deterministic, training-free, plausible."""
    featurizer = TableFeaturizer(_BATCH)
    compute = LinearComputeCostModel(featurizer.num_features)
    coef = np.zeros(featurizer.num_features + 2)
    coef[13] = 0.5   # dim * pooling / 1000
    coef[-2] = 0.02  # table count
    coef[-1] = 0.1   # bias
    compute._coef = coef
    comm_width = 2 * _NUM_DEVICES + 1
    forward = LinearCommCostModel(_NUM_DEVICES)
    forward._coef = np.zeros((comm_width, _NUM_DEVICES))
    backward = LinearCommCostModel(_NUM_DEVICES)
    backward._coef = np.zeros((comm_width, _NUM_DEVICES))
    return PretrainedCostModels(
        compute=compute,
        forward_comm=forward,
        backward_comm=backward,
        featurizer=featurizer,
        num_devices=_NUM_DEVICES,
        batch_size=_BATCH,
    )


@pytest.fixture(scope="module")
def engine():
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=_NUM_DEVICES, memory_bytes=_MEMORY)
    )
    return ShardingEngine(cluster, _linear_bundle())


# ----------------------------------------------------------------------
# 2. seed determinism
# ----------------------------------------------------------------------


@settings(max_examples=5, deadline=None)
@given(
    sim_seed=st.integers(min_value=0, max_value=10_000),
    policy_name=st.sampled_from(["periodic", "cost_of_delay"]),
)
def test_same_seed_means_byte_identical_report_json(
    engine, small_pool, sim_seed, policy_name
):
    trace = make_trace(
        "table_churn", small_pool, seed=2, num_tables=6,
        num_devices=_NUM_DEVICES, memory_bytes=_MEMORY,
    )
    config = SimulationConfig(
        sim_seed=sim_seed,
        horizon_hours=24.0,
        fleet=FleetSpec(mtbf_hours=12.0, straggler_rate_per_hour=0.25),
    )
    payloads = [
        json.dumps(
            simulate_policy(
                trace, engine, make_policy(policy_name), config=config
            ).to_dict(),
            sort_keys=True,
        )
        for _ in range(2)
    ]
    assert payloads[0] == payloads[1]


def test_different_fleet_seeds_differ(engine, small_pool):
    """The seed must actually reach the machine processes."""
    trace = make_trace(
        "table_churn", small_pool, seed=2, num_tables=6,
        num_devices=_NUM_DEVICES, memory_bytes=_MEMORY,
    )
    flaky = dict(
        horizon_hours=48.0,
        fleet=FleetSpec(mtbf_hours=6.0, straggler_rate_per_hour=0.5),
    )
    a = simulate_policy(
        trace, engine, make_policy("periodic"),
        config=SimulationConfig(sim_seed=0, **flaky),
    )
    b = simulate_policy(
        trace, engine, make_policy("periodic"),
        config=SimulationConfig(sim_seed=1, **flaky),
    )
    assert a.to_dict() != b.to_dict()


# ----------------------------------------------------------------------
# 3. replay equivalence (the adapter's contract)
# ----------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(
    scenario=st.sampled_from(sorted(available_scenarios())),
    seed=st.integers(min_value=0, max_value=3),
)
def test_immediate_policy_on_quiet_fleet_matches_replay(
    engine, small_pool, scenario, seed
):
    trace = make_trace(
        scenario, small_pool, seed=seed, num_tables=6,
        num_devices=_NUM_DEVICES, memory_bytes=_MEMORY,
    )
    replay = replay_workload_trace(trace, engine)
    sim = simulate_policy(trace, engine, make_policy("immediate"))

    # Decision for decision: one simulated reshard per resharded step,
    # with identical outcomes and migration spend.
    replayed = [s for s in replay.steps if s.resharded]
    assert len(sim.reshards) == len(replayed)
    for step, decision in zip(replayed, sim.reshards):
        assert decision.time_hours == step.timestamp
        assert decision.feasible == step.feasible
        assert decision.chosen == step.chosen
        assert decision.moved_mb == pytest.approx(step.moved_mb)
        assert decision.migration_ms == pytest.approx(step.migration_ms)
        assert decision.within_budget == step.within_budget
    assert sim.total_moved_mb == pytest.approx(
        replay.steps[-1].cumulative_moved_mb
    )

    # Cost for cost: the segment opened at each step's timestamp serves
    # at exactly the replayed step's serving cost.
    by_start = {s.start_hours: s for s in sim.segments}
    for step in replay.steps[1:]:
        if step.timestamp >= sim.horizon_hours:
            continue
        segment = by_start[step.timestamp]
        assert segment.serving_cost_ms == pytest.approx(
            step.serving_cost_ms, rel=1e-12
        )
    assert sim.final_tables == replay.steps[-1].num_tables
