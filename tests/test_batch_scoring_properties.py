"""Property tests for the vectorized batch-scoring kernel.

Three invariants make whole-frontier batching safe, and each is pinned
here with Hypothesis rather than a handful of fixed cases:

1. **Batch composition freedom** — ``predict_rows`` over many candidate
   sets equals scoring each set alone, element-wise and with *exact*
   float equality (the chunk-stable kernels of
   :mod:`repro.costmodel.kernels` pin every GEMM to a fixed chunk
   shape, so merging calls cannot shift a single low bit).
2. **Row-order freedom** — within a set, any permutation of the feature
   rows predicts the bitwise-same cost
   (:func:`~repro.costmodel.kernels.stable_segment_sum` pools in a
   canonical content order), and the feature bank itself is independent
   of interning order.
3. **Bank integrity** — geometric growth of the preallocated feature
   bank never aliases or corrupts previously issued rows, and ids from
   before a :meth:`~repro.costmodel.features.TableFeaturizer.clear_cache`
   fail loudly instead of resolving against re-interned rows.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.features import TableFeaturizer
from repro.costmodel.kernels import stable_segment_sum

# Candidate sets are drawn as lists of indices into the 48-table pool;
# duplicates are legal (a set scoring the same uid twice simply repeats
# the row, as the reference scorer would).
_table_idx = st.integers(min_value=0, max_value=47)
_candidate_set = st.lists(_table_idx, min_size=0, max_size=6)


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact equality including the sign of zero (no tolerance)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and bool(
        np.all(a.view(np.uint64) == b.view(np.uint64))
    )


def _stack_sets(featurizer, pool_tables, sets):
    """Concatenate the sets' feature rows with a segment-id vector."""
    rows = []
    segments = []
    for seg, indices in enumerate(sets):
        for i in indices:
            rows.append(featurizer.features(pool_tables[i]))
            segments.append(seg)
    flat = (
        np.stack(rows)
        if rows
        else np.zeros((0, featurizer.num_features))
    )
    return flat, np.asarray(segments, dtype=np.int64)


class TestBatchCompositionFreedom:
    """Merging candidate sets into one ``predict_rows`` call is free."""

    @settings(max_examples=30, deadline=None)
    @given(sets=st.lists(_candidate_set, min_size=1, max_size=8))
    def test_batched_equals_per_candidate(self, tiny_bundle, small_pool, sets):
        model = tiny_bundle.compute
        featurizer = tiny_bundle.featurizer
        tables = small_pool.tables

        flat, segments = _stack_sets(featurizer, tables, sets)
        batched = model.predict_rows(flat, segments, len(sets))

        solo = np.empty(len(sets), dtype=np.float64)
        for seg, indices in enumerate(sets):
            one, one_seg = _stack_sets(featurizer, tables, [indices])
            solo[seg] = model.predict_rows(one, one_seg, 1)[0]
        assert _bitwise_equal(batched, solo)

    @settings(max_examples=30, deadline=None)
    @given(
        sets=st.lists(_candidate_set, min_size=2, max_size=8),
        data=st.data(),
    )
    def test_split_point_is_irrelevant(
        self, tiny_bundle, small_pool, sets, data
    ):
        """Scoring a frontier in one call or in two arbitrary halves
        produces bitwise-identical per-set results."""
        model = tiny_bundle.compute
        featurizer = tiny_bundle.featurizer
        tables = small_pool.tables
        cut = data.draw(st.integers(min_value=1, max_value=len(sets) - 1))

        flat, segments = _stack_sets(featurizer, tables, sets)
        merged = model.predict_rows(flat, segments, len(sets))

        halves = []
        for part in (sets[:cut], sets[cut:]):
            part_flat, part_seg = _stack_sets(featurizer, tables, part)
            halves.append(model.predict_rows(part_flat, part_seg, len(part)))
        assert _bitwise_equal(merged, np.concatenate(halves))

    @settings(max_examples=20, deadline=None)
    @given(sets=st.lists(_candidate_set, min_size=1, max_size=6))
    def test_comm_predict_batch_equals_rowwise(
        self, tiny_bundle, small_pool, sets
    ):
        """The collective models' batched entry point matches the
        single-query path row for row."""
        from repro.costmodel.comm_model import comm_features

        tables = small_pool.tables
        for model in (tiny_bundle.forward_comm, tiny_bundle.backward_comm):
            feats = np.stack(
                [
                    comm_features(
                        [
                            tables[indices[0]].dim if indices else 4,
                            tables[indices[-1]].dim if len(indices) > 1 else 4,
                        ],
                        [0.0, float(len(indices))],
                        512,
                    )
                    for indices in sets
                ]
            )
            batched = model.predict_batch(feats)
            solo = np.stack([model.predict_batch(f[None, :])[0] for f in feats])
            assert _bitwise_equal(batched, solo)


class TestRowOrderFreedom:
    """Within a set, feature-row order never changes the prediction."""

    @settings(max_examples=30, deadline=None)
    @given(indices=st.lists(_table_idx, min_size=1, max_size=8), data=st.data())
    def test_prediction_is_permutation_invariant(
        self, tiny_bundle, small_pool, indices, data
    ):
        model = tiny_bundle.compute
        featurizer = tiny_bundle.featurizer
        tables = small_pool.tables
        perm = data.draw(st.permutations(range(len(indices))))

        flat, segments = _stack_sets(featurizer, tables, [indices])
        base = model.predict_rows(flat, segments, 1)
        shuffled = model.predict_rows(flat[list(perm)], segments, 1)
        assert _bitwise_equal(base, shuffled)

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.lists(
            st.lists(
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    width=64,
                ).map(lambda x: -0.0 if x == 0.0 else x),
                min_size=3,
                max_size=3,
            ),
            min_size=0,
            max_size=12,
        ),
        data=st.data(),
    )
    def test_stable_segment_sum_permutation_invariant(self, rows, data):
        """The pooling kernel itself: any permutation of (row, segment)
        pairs — including duplicate rows and ±0.0 entries — sums to the
        bitwise-same per-segment result."""
        mat = (
            np.asarray(rows, dtype=np.float64)
            if rows
            else np.zeros((0, 3))
        )
        segments = np.asarray(
            [data.draw(st.integers(min_value=0, max_value=3)) for _ in rows],
            dtype=np.int64,
        )
        perm = list(data.draw(st.permutations(range(len(rows)))))
        base = stable_segment_sum(mat, segments, 4)
        shuffled = stable_segment_sum(mat[perm], segments[perm], 4)
        assert _bitwise_equal(base, shuffled)
        # Empty segments pool to exactly +0.0 (the bias-only input).
        empty = np.flatnonzero(np.isin(np.arange(4), segments, invert=True))
        assert _bitwise_equal(base[empty], np.zeros((len(empty), 3)))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_feature_rows_independent_of_interning_order(
        self, small_pool, data
    ):
        """Two featurizers fed the same tables in different orders hold
        bitwise-identical rows, whatever bank slots they land in."""
        tables = list(small_pool.tables[:16])
        order = data.draw(st.permutations(range(len(tables))))

        forward = TableFeaturizer(batch_size=512)
        shuffled = TableFeaturizer(batch_size=512)
        for t in tables:
            forward.row_index(t)
        for i in order:
            shuffled.row_index(tables[i])
        for t in tables:
            assert _bitwise_equal(forward.features(t), shuffled.features(t))
        assert _bitwise_equal(
            forward.features_matrix(tables), shuffled.features_matrix(tables)
        )


class TestBankIntegrity:
    """Geometric growth and epoch invalidation of the feature bank."""

    def _synthetic_tables(self, pool_tables, count):
        """Fabricate ``count`` distinct-uid tables from the pool."""
        return [
            dataclasses.replace(
                pool_tables[i % len(pool_tables)], table_id=10_000 + i
            )
            for i in range(count)
        ]

    @settings(max_examples=15, deadline=None)
    @given(
        count=st.integers(min_value=65, max_value=160),
        probe=st.data(),
    )
    def test_growth_never_aliases_stale_rows(self, small_pool, count, probe):
        """Interning past capacity (64 → 128 → 256) must preserve every
        previously issued row id, row value and view object."""
        featurizer = TableFeaturizer(batch_size=512)
        tables = self._synthetic_tables(small_pool.tables, count)

        ids, views, snapshots = [], [], []
        for t in tables:
            ids.append(featurizer.row_index(t))
            views.append(featurizer.features(t))
            snapshots.append(featurizer.features(t).copy())

        assert ids == list(range(count))  # interning is dense + stable
        assert featurizer.num_interned == count
        assert featurizer.bank.shape[0] >= count

        # Every row survives growth bit-for-bit, via gather and via the
        # pre-growth view objects (which alias the retired buffer).
        gathered = featurizer.gather(np.asarray(ids))
        for i in probe.draw(
            st.lists(
                st.integers(min_value=0, max_value=count - 1),
                min_size=5,
                max_size=20,
            )
        ):
            assert _bitwise_equal(gathered[i], snapshots[i])
            assert _bitwise_equal(views[i], snapshots[i])
            assert featurizer.row_index(tables[i]) == ids[i]

    def test_clear_cache_rejects_stale_ids(self, small_pool):
        featurizer = TableFeaturizer(batch_size=512)
        stale = featurizer.row_indices(small_pool.tables[:8])
        featurizer.clear_cache()
        with pytest.raises(IndexError, match="stale feature row id"):
            featurizer.gather(stale)
        # Re-interning starts a fresh epoch with correct values.
        fresh = featurizer.row_indices(small_pool.tables[:8])
        assert list(fresh) == list(range(8))
        assert _bitwise_equal(
            featurizer.features_matrix(small_pool.tables[:8]),
            TableFeaturizer(batch_size=512).features_matrix(
                small_pool.tables[:8]
            ),
        )
