"""Tests for pool/task JSON persistence and the artifact-style CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.config import TaskConfig
from repro.data import (
    TablePool,
    generate_tasks,
    load_pool,
    load_tasks,
    save_pool,
    save_tasks,
    synthesize_table_pool,
    table_from_dict,
    table_to_dict,
)
from repro.data.table import TableConfig


@pytest.fixture()
def pool():
    return TablePool(
        synthesize_table_pool(num_tables=12, seed=3), augment_dims=(4, 8, 16)
    )


@pytest.fixture()
def tasks(pool):
    cfg = TaskConfig(
        num_devices=2, max_dim=16, min_tables=3, max_tables=6,
        memory_bytes=2 * 1024**3,
    )
    return generate_tasks(pool, cfg, count=3, seed=1)


class TestTableDicts:
    def test_round_trip(self):
        table = TableConfig(
            table_id=7, hash_size=123_456, dim=32, pooling_factor=9.5,
            zipf_alpha=1.07, bytes_per_element=2,
        )
        assert table_from_dict(table_to_dict(table)) == table

    def test_bytes_per_element_defaults(self):
        data = table_to_dict(
            TableConfig(table_id=0, hash_size=10, dim=4, pooling_factor=1.0,
                        zipf_alpha=0.5)
        )
        del data["bytes_per_element"]
        assert table_from_dict(data).bytes_per_element == 4

    def test_missing_field_raises(self):
        with pytest.raises(ValueError, match="missing field"):
            table_from_dict({"table_id": 1})

    def test_invalid_values_rejected_by_constructor(self):
        data = table_to_dict(
            TableConfig(table_id=0, hash_size=10, dim=4, pooling_factor=1.0,
                        zipf_alpha=0.5)
        )
        data["dim"] = 5  # not a multiple of 4
        with pytest.raises(ValueError, match="dim"):
            table_from_dict(data)


class TestPoolIO:
    def test_round_trip(self, pool, tmp_path):
        path = tmp_path / "pool.json"
        save_pool(pool, path)
        loaded = load_pool(path)
        assert loaded.tables == pool.tables
        assert loaded.augment_dims == pool.augment_dims

    def test_creates_parent_directories(self, pool, tmp_path):
        path = tmp_path / "nested" / "dir" / "pool.json"
        save_pool(pool, path)
        assert path.exists()

    def test_rejects_wrong_format(self, pool, tmp_path):
        path = tmp_path / "tasks-as-pool.json"
        save_tasks(
            generate_tasks(
                pool,
                TaskConfig(num_devices=2, max_dim=16, min_tables=2,
                           max_tables=4, memory_bytes=2 * 1024**3),
                count=1,
                seed=0,
            ),
            path,
        )
        with pytest.raises(ValueError, match="not a"):
            load_pool(path)

    def test_rejects_wrong_version(self, pool, tmp_path):
        path = tmp_path / "pool.json"
        save_pool(pool, path)
        data = json.loads(path.read_text())
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            load_pool(path)

    def test_file_is_human_readable_json(self, pool, tmp_path):
        path = tmp_path / "pool.json"
        save_pool(pool, path)
        data = json.loads(path.read_text())
        assert data["format"].endswith("table-pool")
        assert len(data["tables"]) == len(pool)


class TestTasksIO:
    def test_round_trip(self, tasks, tmp_path):
        path = tmp_path / "tasks.json"
        save_tasks(tasks, path)
        loaded = load_tasks(path)
        assert loaded == tasks

    def test_rejects_empty_batch(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_tasks([], tmp_path / "x.json")

    def test_rejects_pool_file(self, pool, tasks, tmp_path):
        path = tmp_path / "pool.json"
        save_pool(pool, path)
        with pytest.raises(ValueError, match="not a"):
            load_tasks(path)

    def test_missing_task_field_raises(self, tasks, tmp_path):
        path = tmp_path / "tasks.json"
        save_tasks(tasks, path)
        data = json.loads(path.read_text())
        del data["tasks"][0]["num_devices"]
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="missing field"):
            load_tasks(path)


class TestCliDataCommands:
    def test_gen_data_writes_pool(self, tmp_path, capsys):
        out = tmp_path / "pool.json"
        rc = main(["gen-data", str(out), "--tables", "10", "--seed", "4"])
        assert rc == 0
        assert "saved pool" in capsys.readouterr().out
        assert len(load_pool(out)) == 10

    def test_gen_tasks_from_generated_pool(self, tmp_path, capsys):
        pool_path = tmp_path / "pool.json"
        tasks_path = tmp_path / "tasks.json"
        main(["gen-data", str(pool_path), "--tables", "30", "--seed", "4"])
        rc = main(
            [
                "gen-tasks", str(tasks_path), "--pool", str(pool_path),
                "--gpus", "4", "--max-dim", "16", "--tasks", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 sharding tasks generated!" in out
        loaded = load_tasks(tasks_path)
        assert len(loaded) == 3
        assert all(t.num_devices == 4 for t in loaded)

    def test_compare_accepts_tasks_file(self, tmp_path, capsys):
        pool_path = tmp_path / "pool.json"
        tasks_path = tmp_path / "tasks.json"
        main(["gen-data", str(pool_path), "--tables", "30", "--seed", "4"])
        main(
            [
                "gen-tasks", str(tasks_path), "--pool", str(pool_path),
                "--gpus", "2", "--max-dim", "16", "--tasks", "2",
            ]
        )
        rc = main(
            ["compare", "dim_greedy", "--tasks-file", str(tasks_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Valid" in out
