"""CLI tests for the artifact-style tasks-file workflow."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.data import save_tasks


class TestShardWithTasksFile:
    @pytest.fixture()
    def bundle_dir(self, tiny_bundle, tmp_path):
        directory = tmp_path / "bundle"
        tiny_bundle.save(directory)
        return str(directory)

    def test_shard_reads_tasks_file(self, bundle_dir, tasks2, tmp_path, capsys):
        tasks_path = tmp_path / "tasks.json"
        save_tasks(tasks2[:2], tasks_path)
        rc = main(["shard", bundle_dir, "--tasks-file", str(tasks_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NeuroShard on 2 tasks" in out
        assert "Valid" in out

    def test_shard_rejects_device_mismatch(self, bundle_dir, tasks2, tmp_path,
                                           capsys):
        import dataclasses

        tasks_path = tmp_path / "tasks.json"
        bad = [dataclasses.replace(tasks2[0], num_devices=6)]
        save_tasks(bad, tasks_path)
        rc = main(["shard", bundle_dir, "--tasks-file", str(tasks_path)])
        assert rc == 1
        assert "different device count" in capsys.readouterr().err
