"""Tests for budgeted incremental resharding (repro.api.reshard)."""

import dataclasses
import json
import math

import pytest

from repro.api import (
    PlanDiff,
    ReshardConfig,
    ShardingEngine,
    ShardingRequest,
    WorkloadDelta,
    incremental_reshard,
)
from repro.costmodel.drift import DriftReport
from repro.data.tasks import ShardingTask


@pytest.fixture(scope="module")
def engine(cluster2, tiny_bundle):
    return ShardingEngine(cluster2, tiny_bundle)


@pytest.fixture(scope="module")
def applied(engine, tasks2):
    """An applied state: the beam plan of the first benchmark task."""
    task = tasks2[0]
    response = engine.shard(ShardingRequest(task, strategy="beam"))
    assert response.feasible
    return task, response.plan, response.plan_tables(task)


def _fresh_tables(tasks2, count=2, start_id=90_000):
    """Tables from another task, re-identified as brand-new tables."""
    return tuple(
        dataclasses.replace(t, table_id=start_id + i)
        for i, t in enumerate(tasks2[1].tables[:count])
    )


class TestWorkloadDelta:
    def test_round_trip_through_json(self, tasks2):
        delta = WorkloadDelta(
            add_tables=tuple(tasks2[1].tables[:2]),
            remove_table_ids=(3, 7),
            drift=DriftReport(
                probe_mse=1.5, rolling_mse=1.2, needs_retraining=True
            ),
        )
        restored = WorkloadDelta.from_dict(
            json.loads(json.dumps(delta.to_dict()))
        )
        assert restored == delta

    def test_version_mismatch_rejected(self):
        payload = WorkloadDelta().to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            WorkloadDelta.from_dict(payload)

    def test_empty_flag(self, tasks2):
        assert WorkloadDelta().is_empty
        assert not WorkloadDelta(add_tables=(tasks2[0].tables[0],)).is_empty


class TestReshardConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="migration_budget_ms"):
            ReshardConfig(migration_budget_ms=-1.0)
        with pytest.raises(ValueError, match="migration_lambda"):
            ReshardConfig(migration_lambda=-0.1)
        with pytest.raises(ValueError, match="max_refine_steps"):
            ReshardConfig(max_refine_steps=-1)

    def test_round_trip(self):
        config = ReshardConfig(
            migration_budget_ms=123.0,
            migration_lambda=0.5,
            allow_full_search=False,
            max_refine_steps=7,
        )
        assert ReshardConfig.from_dict(config.to_dict()) == config


class TestIncrementalReshard:
    def test_empty_delta_moves_nothing(self, engine, applied):
        _, plan, base = applied
        result = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(),
            config=ReshardConfig(allow_full_search=False, max_refine_steps=0),
        )
        assert result.chosen == "incremental"
        assert result.diff.num_changes == 0
        assert result.response.feasible
        # The unchanged workload keeps the exact applied assignment.
        assert result.response.plan.assignment == plan.assignment

    def test_added_tables_placed_survivors_stay(self, engine, applied, tasks2):
        _, plan, base = applied
        added = _fresh_tables(tasks2)
        result = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(add_tables=added),
            config=ReshardConfig(allow_full_search=False, max_refine_steps=0),
        )
        assert result.response.feasible
        # Without refinement, surviving shards never move.
        assert result.diff.moves == ()
        assert {c.uid for c in result.diff.created} == {t.uid for t in added}

    def test_removed_tables_disappear(self, engine, applied):
        task, plan, base = applied
        victim = base[0].table_id
        result = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(remove_table_ids=(victim,)),
            config=ReshardConfig(allow_full_search=False, max_refine_steps=0),
        )
        tables = result.response.plan_tables(
            ShardingTask(
                tables=tuple(t for t in base if t.table_id != victim),
                num_devices=task.num_devices,
                memory_bytes=task.memory_bytes,
            )
        )
        assert all(t.table_id != victim for t in tables)
        assert any(c.uid.startswith(f"t{victim}:") for c in result.diff.removed)

    def test_budget_respected_by_refinement(self, engine, applied, tasks2):
        _, plan, base = applied
        added = _fresh_tables(tasks2)
        tight = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(add_tables=added),
            config=ReshardConfig(
                migration_budget_ms=0.0, allow_full_search=False
            ),
        )
        # Creations are unavoidable ingress, but no surviving shard may
        # move under a zero budget... unless creations alone exceed it,
        # in which case the result is flagged over budget.
        if tight.within_budget:
            assert tight.diff.moved_bytes == 0
        else:
            assert tight.diff.migration_cost_ms > 0.0

    def test_full_search_chosen_when_warm_impossible(self, engine, applied):
        task, plan, base = applied
        # Remove nothing but shrink memory below the applied layout's
        # most loaded device: the warm candidate cannot exist, so only
        # the full search (or nothing) can serve the reshard.
        device_bytes = [0] * task.num_devices
        for shard, device in zip(base, plan.assignment):
            device_bytes[device] += shard.size_bytes
        result = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(),
            config=ReshardConfig(allow_full_search=True),
            memory_bytes=max(device_bytes) - 1,
        )
        assert result.chosen in ("full", "none")

    def test_drift_flag_propagates(self, engine, applied):
        _, plan, base = applied
        drift = DriftReport(probe_mse=9.0, rolling_mse=9.0, needs_retraining=True)
        result = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(drift=drift),
            config=ReshardConfig(allow_full_search=False, max_refine_steps=0),
        )
        assert result.drift_triggered

    def test_needs_bundle(self, cluster2, applied):
        _, plan, base = applied
        bare = ShardingEngine(cluster2)
        with pytest.raises(ValueError, match="bundle"):
            incremental_reshard(bare, plan, base, WorkloadDelta())

    def test_removing_everything_rejected(self, engine, applied):
        _, plan, base = applied
        ids = tuple({t.table_id for t in base})
        with pytest.raises(ValueError, match="removes every table"):
            incremental_reshard(
                engine, plan, base, WorkloadDelta(remove_table_ids=ids)
            )

    def test_objective_is_cost_plus_weighted_migration(
        self, engine, applied, tasks2
    ):
        _, plan, base = applied
        added = _fresh_tables(tasks2)
        result = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(add_tables=added),
            config=ReshardConfig(allow_full_search=False, migration_lambda=0.5),
        )
        expected = (
            result.response.simulated_cost_ms
            + 0.5 * result.diff.migration_cost_ms
        )
        assert math.isclose(result.objective_ms, expected)

    def test_diff_consistent_with_applied_plan(self, engine, applied, tasks2):
        task, plan, base = applied
        added = _fresh_tables(tasks2)
        result = incremental_reshard(
            engine, plan, base, WorkloadDelta(add_tables=added)
        )
        new_task = ShardingTask(
            tables=base + added,
            num_devices=task.num_devices,
            memory_bytes=task.memory_bytes,
        )
        recomputed = PlanDiff.between(
            plan,
            base,
            result.response.plan,
            result.response.plan_tables(new_task),
        )
        assert recomputed.moved_bytes == result.diff.moved_bytes
        assert recomputed.created_bytes == result.diff.created_bytes


class TestFullSearchFlag:
    def test_disabled_full_search_is_honored_even_when_warm_fails(
        self, engine, applied
    ):
        # Surviving layout illegal under a shrunken budget: with the
        # full search disabled the reshard reports infeasible instead of
        # silently overriding the flag.
        from repro.hardware.memory import MemoryModel

        task, plan, base = applied
        model = MemoryModel(task.memory_bytes)
        per_device_bytes = [
            sum(model.table_bytes(t) for t in dev)
            for dev in plan.per_device_tables(base)
        ]
        result = incremental_reshard(
            engine,
            plan,
            base,
            WorkloadDelta(),
            config=ReshardConfig(allow_full_search=False),
            memory_bytes=max(per_device_bytes) - 1,
        )
        assert result.chosen == "none"
        assert not result.response.feasible
        assert result.full_response is None
