"""Tests for policy-guided search (Appendix H meta-policy + search)."""

from __future__ import annotations

import math

import pytest

from repro.baselines import GreedySharder, RandomSharder
from repro.config import SearchConfig, TaskConfig
from repro.core import NeuroShard
from repro.core.cache import CostCache
from repro.core.simulator import NeuroShardSimulator
from repro.data import generate_tasks
from repro.extensions import (
    ImitationSharder,
    OfflineRLSharder,
    PolicyGuidedSharder,
)
from repro.hardware.memory import MemoryModel

from tests.conftest import TEST_MEMORY_BYTES


@pytest.fixture(scope="module")
def train_tasks(small_pool):
    cfg = TaskConfig(
        num_devices=2,
        max_dim=64,
        min_tables=4,
        max_tables=10,
        memory_bytes=TEST_MEMORY_BYTES,
    )
    return generate_tasks(small_pool, cfg, count=6, seed=41)


@pytest.fixture(scope="module")
def trained_policy(tiny_bundle, train_tasks):
    policy = OfflineRLSharder(tiny_bundle, seed=2)
    policy.fit_from_log(
        train_tasks,
        [
            GreedySharder("Dim-based"),
            GreedySharder("Lookup-based"),
            RandomSharder(seed=0),
        ],
        epochs=30,
    )
    return policy


@pytest.fixture(scope="module")
def guided(tiny_bundle, trained_policy):
    return PolicyGuidedSharder(tiny_bundle, trained_policy, device_top_k=1)


class TestValidation:
    def test_hyperparameters(self, tiny_bundle, trained_policy):
        with pytest.raises(ValueError):
            PolicyGuidedSharder(tiny_bundle, trained_policy, device_top_k=0)
        with pytest.raises(ValueError):
            PolicyGuidedSharder(tiny_bundle, trained_policy, grid_points=0)
        with pytest.raises(ValueError):
            PolicyGuidedSharder(
                tiny_bundle, trained_policy, grid_end_factor=0.9
            )

    def test_untrained_policy_rejected(self, tiny_bundle):
        raw = ImitationSharder(tiny_bundle)
        with pytest.raises(ValueError, match="trained"):
            PolicyGuidedSharder(tiny_bundle, raw)

    def test_device_count_mismatch(self, guided, tasks2):
        import dataclasses

        bad = dataclasses.replace(tasks2[0], num_devices=9)
        with pytest.raises(ValueError, match="devices"):
            guided.shard_with_stats(bad)


class TestGuidedSearch:
    def test_produces_legal_plans(self, guided, tasks2):
        for task in tasks2:
            plan = guided.shard(task)
            if plan is None:
                continue
            memory = MemoryModel(task.memory_bytes)
            assert memory.placement_fits(plan.per_device_tables(task.tables))

    def test_stats_populated(self, guided, tasks2):
        result = guided.shard_with_stats(tasks2[0])
        assert result.plan is not None
        assert math.isfinite(result.simulated_cost_ms)
        assert result.evaluations > 0
        assert 0.0 <= result.policy_agreement <= 1.0

    def test_top_k_full_width_matches_unguided_shape(self, tiny_bundle,
                                                     trained_policy, tasks2):
        """With device_top_k = D the policy cannot prune anything, so
        costs match a full-width guided pass with any other policy."""
        full = PolicyGuidedSharder(
            tiny_bundle, trained_policy, device_top_k=2
        )
        result = full.shard_with_stats(tasks2[0])
        assert result.plan is not None
        # Full-width: the policy's first choice only wins when it is
        # genuinely the cheapest, so agreement reflects policy quality.
        assert result.policy_agreement <= 1.0

    def test_guidance_reduces_evaluations(self, tiny_bundle, trained_policy,
                                          tasks2):
        """Pruned search must issue fewer cost-model predictions than the
        full-width search (the Appendix H speed story)."""
        pruned = PolicyGuidedSharder(
            tiny_bundle, trained_policy, device_top_k=1
        )
        full = PolicyGuidedSharder(
            tiny_bundle, trained_policy, device_top_k=2
        )
        pruned_evals = 0
        full_evals = 0
        for task in tasks2:
            pruned_evals += pruned.shard_with_stats(task).evaluations
            full_evals += full.shard_with_stats(task).evaluations
        assert pruned_evals < full_evals

    def test_cost_gap_vs_unguided_greedy_bounded(self, tiny_bundle,
                                                 trained_policy, tasks2):
        """Apples to apples: the guided inner loop stays within 10% of
        the unguided greedy grid search on average.  (The full NeuroShard
        beam additionally applies column splits, which guidance does not
        replace — it accelerates the inner loop only.)"""
        from repro.core.greedy_grid import greedy_grid_search

        guided = PolicyGuidedSharder(
            tiny_bundle, trained_policy, device_top_k=2, grid_points=5
        )
        gaps = []
        for task in tasks2:
            g = guided.shard_with_stats(task)
            simulator = NeuroShardSimulator(tiny_bundle, CostCache())
            unguided = greedy_grid_search(
                list(task.tables),
                task.num_devices,
                simulator,
                MemoryModel(task.memory_bytes),
                SearchConfig(grid_points=5),
            )
            if g.plan is None or not unguided.feasible:
                continue
            g_cost = NeuroShardSimulator(tiny_bundle, CostCache()).plan_cost(
                g.plan.per_device_tables(task.tables)
            ).max_cost_ms
            gaps.append(g_cost / max(unguided.cost_ms, 1e-9))
        assert gaps, "no commonly-solved task"
        assert sum(gaps) / len(gaps) < 1.10

    def test_deterministic(self, guided, tasks2):
        a = guided.shard_with_stats(tasks2[0])
        b = guided.shard_with_stats(tasks2[0])
        assert a.plan == b.plan
        assert a.evaluations == b.evaluations
