"""Tests for the offline-RL (advantage-weighted regression) sharder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GreedySharder, RandomSharder
from repro.core.cache import CostCache
from repro.core.simulator import NeuroShardSimulator
from repro.config import TaskConfig
from repro.data import generate_tasks
from repro.extensions import (
    OfflineDataset,
    OfflineLogEntry,
    OfflineRLSharder,
    collect_sharding_log,
)
from repro.hardware.memory import MemoryModel

from tests.conftest import TEST_MEMORY_BYTES


@pytest.fixture(scope="module")
def train_tasks(small_pool):
    config = TaskConfig(
        num_devices=2,
        max_dim=64,
        min_tables=4,
        max_tables=10,
        memory_bytes=TEST_MEMORY_BYTES,
    )
    return generate_tasks(small_pool, config, count=8, seed=29)


@pytest.fixture(scope="module")
def log_sharders():
    return [
        GreedySharder("Size-based"),
        GreedySharder("Dim-based"),
        GreedySharder("Lookup-based"),
        RandomSharder(seed=1),
    ]


@pytest.fixture(scope="module")
def sharding_log(train_tasks, log_sharders, tiny_bundle):
    return collect_sharding_log(train_tasks, log_sharders, tiny_bundle)


@pytest.fixture(scope="module")
def trained_policy(train_tasks, sharding_log, tiny_bundle):
    policy = OfflineRLSharder(tiny_bundle, seed=3)
    dataset = policy.build_offline_dataset(train_tasks, sharding_log)
    policy.fit_offline(dataset, epochs=40)
    return policy


def simulated_cost(bundle, task, plan):
    simulator = NeuroShardSimulator(bundle, CostCache())
    return simulator.plan_cost(plan.per_device_tables(task.tables)).max_cost_ms


class TestLogCollection:
    def test_log_covers_tasks_and_sharders(self, sharding_log, train_tasks,
                                           log_sharders):
        assert len(sharding_log) > len(train_tasks)  # multiple plans per task
        indices = {e.task_index for e in sharding_log}
        assert indices <= set(range(len(train_tasks)))

    def test_log_costs_positive(self, sharding_log):
        assert all(e.cost_ms > 0 for e in sharding_log)

    def test_entry_validation(self, sharding_log):
        entry = sharding_log[0]
        with pytest.raises(ValueError):
            OfflineLogEntry(task_index=-1, plan=entry.plan, cost_ms=1.0)
        with pytest.raises(ValueError):
            OfflineLogEntry(task_index=0, plan=entry.plan, cost_ms=float("nan"))


class TestOfflineDataset:
    def test_builds_aligned_arrays(self, train_tasks, sharding_log, tiny_bundle):
        policy = OfflineRLSharder(tiny_bundle)
        dataset = policy.build_offline_dataset(train_tasks, sharding_log)
        assert len(dataset.states) == len(dataset.actions) == len(dataset.weights)
        assert dataset.states.ndim == 2

    def test_better_plans_get_larger_weights(self, train_tasks, sharding_log,
                                             tiny_bundle):
        """Within a task, the cheapest logged plan's decisions must carry
        more weight than the most expensive one's."""
        policy = OfflineRLSharder(tiny_bundle)
        dataset = policy.build_offline_dataset(train_tasks, sharding_log)
        # Reconstruct per-entry weights: decisions of one entry share one
        # weight, and entries appear in log order.
        by_task: dict[int, list[OfflineLogEntry]] = {}
        for e in sharding_log:
            by_task.setdefault(e.task_index, []).append(e)
        # Walk the flattened weights entry by entry.
        pos = 0
        entry_weight = {}
        for e in sharding_log:
            n = len(e.plan.assignment)
            entry_weight[id(e)] = dataset.weights[pos]
            pos += n
        for task_index, entries in by_task.items():
            if len(entries) < 2:
                continue
            best = min(entries, key=lambda e: e.cost_ms)
            worst = max(entries, key=lambda e: e.cost_ms)
            if best.cost_ms < worst.cost_ms - 1e-9:
                assert entry_weight[id(best)] > entry_weight[id(worst)]

    def test_weights_clipped(self, train_tasks, sharding_log, tiny_bundle):
        policy = OfflineRLSharder(tiny_bundle, temperature=0.01, max_weight=5.0)
        dataset = policy.build_offline_dataset(train_tasks, sharding_log)
        assert dataset.weights.max() <= 5.0 + 1e-12

    def test_rejects_empty_log(self, train_tasks, tiny_bundle):
        policy = OfflineRLSharder(tiny_bundle)
        with pytest.raises(ValueError, match="empty"):
            policy.build_offline_dataset(train_tasks, [])

    def test_rejects_out_of_range_task_index(self, train_tasks, sharding_log,
                                             tiny_bundle):
        policy = OfflineRLSharder(tiny_bundle)
        bad = OfflineLogEntry(
            task_index=len(train_tasks), plan=sharding_log[0].plan, cost_ms=1.0
        )
        with pytest.raises(ValueError, match="task"):
            policy.build_offline_dataset(train_tasks, [bad])

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            OfflineDataset(
                states=np.zeros((2, 3)),
                actions=np.zeros(2, dtype=np.int64),
                weights=np.array([-1.0, 1.0]),
            )
        with pytest.raises(ValueError):
            OfflineDataset(
                states=np.zeros((0, 3)),
                actions=np.zeros(0, dtype=np.int64),
                weights=np.zeros(0),
            )


class TestOfflineRLSharder:
    def test_hyperparameter_validation(self, tiny_bundle):
        with pytest.raises(ValueError):
            OfflineRLSharder(tiny_bundle, temperature=0.0)
        with pytest.raises(ValueError):
            OfflineRLSharder(tiny_bundle, max_weight=0.0)

    def test_requires_training_before_shard(self, tiny_bundle, tasks2):
        with pytest.raises(RuntimeError, match="fit"):
            OfflineRLSharder(tiny_bundle).shard(tasks2[0])

    def test_loss_decreases(self, train_tasks, sharding_log, tiny_bundle):
        policy = OfflineRLSharder(tiny_bundle, seed=7)
        dataset = policy.build_offline_dataset(train_tasks, sharding_log)
        curve = policy.fit_offline(dataset, epochs=30)
        assert curve[-1] < curve[0]

    def test_produces_legal_plans(self, trained_policy, tasks2):
        for task in tasks2:
            plan = trained_policy.shard(task)
            if plan is None:
                continue
            memory = MemoryModel(task.memory_bytes)
            assert memory.placement_fits(plan.per_device_tables(task.tables))

    def test_beats_mean_heuristic_on_held_out_tasks(
        self, trained_policy, log_sharders, tiny_bundle, tasks2
    ):
        """Trained on the heuristics' log, the AWR policy should be at
        least as good as the *average* logged heuristic on unseen tasks
        (it preferentially clones the per-task winners)."""
        policy_costs, mean_heuristic_costs = [], []
        for task in tasks2:
            plan = trained_policy.shard(task)
            if plan is None:
                continue
            heuristic_costs = []
            for sharder in log_sharders:
                h_plan = sharder.shard(task)
                if h_plan is not None:
                    heuristic_costs.append(
                        simulated_cost(tiny_bundle, task, h_plan)
                    )
            if not heuristic_costs:
                continue
            policy_costs.append(simulated_cost(tiny_bundle, task, plan))
            mean_heuristic_costs.append(float(np.mean(heuristic_costs)))
        assert policy_costs, "policy solved no held-out task"
        assert np.mean(policy_costs) <= np.mean(mean_heuristic_costs) * 1.05

    def test_fit_from_log_end_to_end(self, train_tasks, log_sharders, tiny_bundle):
        policy = OfflineRLSharder(tiny_bundle, seed=11)
        curve = policy.fit_from_log(train_tasks[:4], log_sharders, epochs=10)
        assert len(curve) == 10
        assert policy._trained
