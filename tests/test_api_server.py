"""Tests for the lifecycle HTTP server (repro.api.server)."""

import dataclasses
import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    ShardingEngine,
    ShardingHTTPServer,
    ShardingRequest,
    ShardingService,
)
from repro.data.io import table_to_dict
from repro.data.tasks import ShardingTask


@pytest.fixture(scope="module")
def engine(cluster2, tiny_bundle):
    return ShardingEngine(cluster2, tiny_bundle)


@pytest.fixture()
def server(engine, tasks2):
    service = ShardingService()
    service.create_deployment("prod", engine, tables=tasks2[0].tables)
    server = ShardingHTTPServer(
        service, engine, port=0, max_batch=4, batch_wait_s=0.02
    )
    server.start()
    yield server
    server.close()


def _get(server, path):
    url = f"http://127.0.0.1:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=60) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, body):
    url = f"http://127.0.0.1:{server.port}{path}"
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestRoutes:
    def test_strategies_listing(self, server):
        status, payload = _get(server, "/v1/strategies")
        assert status == 200
        names = {s["name"] for s in payload["strategies"]}
        assert {"beam", "dim_greedy", "random"} <= names

    def test_deployments_listing(self, server):
        status, payload = _get(server, "/v1/deployments")
        assert status == 200
        assert payload == {"deployments": ["prod"]}

    def test_status_and_history(self, server):
        _post(server, "/v1/deployments/prod/plan", {})
        status, payload = _get(server, "/v1/deployments/prod/status")
        assert status == 200
        assert payload["name"] == "prod"
        assert payload["num_records"] == 1
        # The store-recovery audit trail is part of the HTTP status
        # surface (empty for this in-memory service, but present).
        assert payload["recovery_notes"] == []
        status, payload = _get(server, "/v1/deployments/prod/history")
        assert status == 200
        assert [r["version"] for r in payload["history"]] == [1]

    def test_unknown_deployment_is_404(self, server):
        status, payload = _post(server, "/v1/deployments/nope/plan", {})
        assert status == 404
        assert "nope" in payload["error"]

    def test_unknown_path_is_404(self, server):
        status, _ = _post(server, "/v1/deployments/prod/frobnicate", {})
        assert status == 404

    def test_bad_body_is_400(self, server):
        status, payload = _post(server, "/v1/deployments/prod/reshard", {})
        assert status == 400
        assert "delta" in payload["error"]


class TestLifecycleOverHTTP:
    def test_plan_apply_reshard_rollback_round_trip(self, server, tasks2):
        status, v1 = _post(
            server, "/v1/deployments/prod/plan", {"strategy": "beam"}
        )
        assert status == 200 and v1["feasible"]
        status, applied = _post(server, "/v1/deployments/prod/apply", {})
        assert status == 200 and applied["version"] == v1["version"]

        added = [
            table_to_dict(dataclasses.replace(t, table_id=91_000 + i))
            for i, t in enumerate(tasks2[1].tables[:2])
        ]
        delta = {
            "schema_version": 1,
            "add_tables": added,
            "remove_table_ids": [],
            "drift": None,
        }
        status, v2 = _post(
            server,
            "/v1/deployments/prod/reshard",
            {"delta": delta, "config": {"migration_budget_ms": 1e9}},
        )
        assert status == 200 and v2["feasible"]
        assert v2["kind"] == "reshard"
        assert v2["diff"] is not None

        status, restored = _post(
            server, "/v1/deployments/prod/rollback", {}
        )
        assert status == 200
        assert restored["version"] == v1["version"]
        assert restored["plan"] == v1["plan"]

    def test_create_deployment_over_http(self, server, tasks2):
        body = {
            "name": "canary",
            "tables": [table_to_dict(t) for t in tasks2[2].tables],
        }
        status, payload = _post(server, "/v1/deployments", body)
        assert status == 200
        assert payload["name"] == "canary"
        status, payload = _get(server, "/v1/deployments")
        assert payload["deployments"] == ["canary", "prod"]


class TestConcurrencyAndBatching:
    def test_concurrent_plans_match_sequential_engine(
        self, server, engine, tasks2
    ):
        """Acceptance: concurrent HTTP plans == sequential engine.shard."""
        task = ShardingTask(
            tables=tasks2[0].tables,
            num_devices=tasks2[0].num_devices,
            memory_bytes=engine.cluster.config.memory_bytes,
        )
        expected = engine.shard(ShardingRequest(task, strategy="beam"))

        def plan(i):
            return _post(
                server,
                "/v1/deployments/prod/plan",
                {"strategy": "beam", "request_id": f"c{i}"},
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(plan, range(6)))
        versions = set()
        for status, record in results:
            assert status == 200
            assert record["feasible"]
            assert record["plan"]["assignment"] == list(expected.plan.assignment)
            assert record["plan"]["column_plan"] == list(expected.plan.column_plan)
            assert record["simulated_cost_ms"] == expected.simulated_cost_ms
            versions.add(record["version"])
        # Every request got its own record version.
        assert len(versions) == 6
        assert {r["request_id"] for _, r in results} == {
            f"c{i}" for i in range(6)
        }

    def test_start_request_shutdown_round_trip(self, engine, tasks2):
        """The CI smoke: boot a fresh server, serve one plan, shut down."""
        service = ShardingService()
        service.create_deployment("smoke", engine, tables=tasks2[0].tables)
        server = ShardingHTTPServer(service, engine, port=0)
        server.start()
        try:
            status, record = _post(
                server, "/v1/deployments/smoke/plan", {"strategy": "dim_greedy"}
            )
            assert status == 200
            assert record["strategy"] == "dim_greedy"
        finally:
            server.close()
        # The socket is released: a fresh server can bind immediately.
        again = ShardingHTTPServer(service, engine, port=0)
        again.start()
        again.close()


class TestKeepAliveBodyDrain:
    def test_404_with_body_does_not_desync_the_connection(self, server):
        """Persistent connections survive an error response: the unread
        request body must be drained before replying, or the next
        request on the same socket parses garbage."""
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            body = json.dumps({"x": 1})
            conn.request(
                "POST", "/v1/deployments/prod/frobnicate", body=body,
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 404
            first.read()
            # Same connection: a valid follow-up must still work.
            conn.request("GET", "/v1/deployments")
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read()) == {"deployments": ["prod"]}
        finally:
            conn.close()

    def test_rollback_with_body_keeps_connection_synchronized(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/deployments/prod/rollback",
                body=json.dumps({"ignored": True}),
            )
            first = conn.getresponse()
            assert first.status == 400  # nothing applied yet: clean error
            first.read()
            conn.request("GET", "/v1/deployments/prod/status")
            second = conn.getresponse()
            assert second.status == 200
            second.read()
        finally:
            conn.close()


class TestRequestTimeout:
    def test_stalled_client_does_not_pin_a_handler_thread(
        self, engine, tasks2
    ):
        """A client that opens a connection and never finishes its
        request must be torn down by ``request_timeout_s`` — while it
        stalls, other clients are still served."""
        import socket
        import time

        service = ShardingService()
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        server = ShardingHTTPServer(
            service, engine, port=0, request_timeout_s=1.0
        )
        server.start()
        try:
            stalled = socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            )
            # Half a request line, then silence — never a full request.
            stalled.sendall(b"POST /v1/deployments/prod/pl")

            # Parallel traffic is unaffected by the stalled connection.
            status, payload = _get(server, "/v1/deployments")
            assert status == 200 and payload == {"deployments": ["prod"]}

            # The server hangs up on the staller once the socket idles
            # past the timeout: the next read sees EOF, not a hang.
            stalled.settimeout(30)
            deadline = time.monotonic() + 30
            data = b"x"
            while data and time.monotonic() < deadline:
                data = stalled.recv(4096)
            assert data == b"", "stalled connection was never closed"
            stalled.close()

            status, _ = _get(server, "/v1/deployments/prod/status")
            assert status == 200
        finally:
            server.close()

    def test_rejects_nonpositive_timeout(self, engine, tasks2):
        service = ShardingService()
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        with pytest.raises(ValueError, match="request_timeout_s"):
            ShardingHTTPServer(service, engine, port=0, request_timeout_s=0)


class TestGracefulDrain:
    def test_close_delivers_accepted_plan_jobs(self, engine, tasks2):
        """Plan jobs accepted before shutdown deliver a real outcome:
        the drain waits for in-flight micro-batches instead of dropping
        them on the floor."""
        import http.client
        import threading

        service = ShardingService()
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        server = ShardingHTTPServer(
            service, engine, port=0, max_batch=4, batch_wait_s=0.05,
            drain_s=30.0,
        )
        server.start()
        results: list[int] = []

        def plan() -> None:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=60
            )
            try:
                conn.request(
                    "POST", "/v1/deployments/prod/plan",
                    body=json.dumps({"strategy": "dim_greedy"}),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                results.append(response.status)
            finally:
                conn.close()

        threads = [threading.Thread(target=plan) for _ in range(3)]
        for t in threads:
            t.start()
        # The drain covers *accepted* jobs: wait until every request has
        # reached the batcher (still inside the micro-batch collection
        # window), then close — all three must be settled, not dropped.
        import time

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if server.batcher._inflight + len(results) >= 3:
                break
            time.sleep(0.002)
        server.close()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        # Every client got an answer — a planned record (200) or an
        # explicit shutting-down error (500), never a dropped socket.
        assert len(results) == 3
        assert set(results) <= {200, 500}


class TestValidateEndpoint:
    def test_validate_reports_clean_history(self, server):
        _post(server, "/v1/deployments/prod/plan", {"strategy": "dim_greedy"})
        _post(server, "/v1/deployments/prod/apply", {})
        status, payload = _get(server, "/v1/deployments/prod/validate")
        assert status == 200
        assert payload["ok"] is True
        assert payload["subject"] == "deployment:prod"
        assert "state/applied-version" in payload["checks"]
        assert payload["errors"] == []

    def test_validate_unknown_deployment_is_404(self, server):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/v1/deployments/nope/validate")
        assert excinfo.value.code == 404

    def test_plan_response_carries_validation_report(self, server):
        status, record = _post(
            server, "/v1/deployments/prod/plan", {"strategy": "dim_greedy"}
        )
        assert status == 200
        assert record["validation"]["ok"] is True
        assert "plan/memory" in record["validation"]["checks"]

    def test_plan_response_carries_provenance_link(self, server):
        status, record = _post(
            server, "/v1/deployments/prod/plan", {"strategy": "dim_greedy"}
        )
        assert status == 200
        link = record["provenance"]
        assert link["prev_version"] == record["version"] - 1
        assert len(link["chain_digest"]) == 64


class TestAuditEndpoint:
    @pytest.fixture()
    def store_server(self, engine, tasks2, tmp_path):
        from repro.api import PlanStore

        service = ShardingService(PlanStore(tmp_path / "deps"))
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        server = ShardingHTTPServer(service, engine, port=0)
        server.start()
        yield server
        server.close()

    def test_audit_clean_store_backed_deployment(self, store_server):
        _post(store_server, "/v1/deployments/prod/plan", {})
        _post(store_server, "/v1/deployments/prod/apply", {})
        status, payload = _get(store_server, "/v1/deployments/prod/audit")
        assert status == 200
        assert payload["ok"] is True
        assert payload["deployment"] == "prod"
        assert payload["first_broken_version"] is None
        assert payload["findings"] == []

    def test_audit_names_the_tampered_version(self, store_server, tmp_path):
        _post(store_server, "/v1/deployments/prod/plan", {})
        _post(store_server, "/v1/deployments/prod/apply", {})
        _post(store_server, "/v1/deployments/prod/plan", {})
        path = tmp_path / "deps" / "prod" / "plans" / "v1.json"
        data = json.loads(path.read_text())
        data["simulated_cost_ms"] = 1.0
        path.write_text(json.dumps(data))
        status, payload = _get(store_server, "/v1/deployments/prod/audit")
        assert status == 200  # the audit ran; the verdict is in the body
        assert payload["ok"] is False
        assert payload["first_broken_version"] == 1
        codes = {f["code"] for f in payload["findings"]}
        assert "chain/content-mismatch" in codes

    def test_audit_memory_only_service_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/v1/deployments/prod/audit")
        assert excinfo.value.code == 400

    def test_audit_unknown_deployment_is_404(self, store_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(store_server, "/v1/deployments/nope/audit")
        assert excinfo.value.code == 404
