"""Tests for repro.costmodel.compute_model and comm_model."""

import numpy as np
import pytest

from repro.costmodel import CommCostModel, ComputeCostModel, comm_features
from repro.nn import Adam, MSELoss


class TestComputeCostModel:
    @pytest.fixture()
    def model(self) -> ComputeCostModel:
        return ComputeCostModel(num_features=6, rng=np.random.default_rng(0))

    def test_batch_shapes(self, model, rng):
        inputs = [rng.normal(size=(t, 6)) for t in (1, 3, 7)]
        out = model.forward_batch(inputs)
        assert out.shape == (3,)

    def test_permutation_invariance(self, model, rng):
        mat = rng.normal(size=(5, 6))
        a = model.predict_one(mat)
        b = model.predict_one(mat[::-1])
        assert a == pytest.approx(b)

    def test_feature_width_validated(self, model, rng):
        with pytest.raises(ValueError):
            model.forward_batch([rng.normal(size=(2, 4))])

    def test_empty_batch_rejected(self, model):
        with pytest.raises(ValueError):
            model.forward_batch([])

    def test_target_stats_affect_predictions(self, model, rng):
        mat = rng.normal(size=(3, 6))
        raw = model.predict_one(mat)
        model.set_target_stats(mean=100.0, std=10.0)
        scaled = model.predict_one(mat)
        assert scaled == pytest.approx(100.0 + 10.0 * raw)

    def test_set_target_stats_validates(self, model):
        with pytest.raises(ValueError):
            model.set_target_stats(0.0, 0.0)

    def test_gradient_flow_trains_set_function(self, rng):
        """The model can learn a simple set-additive function."""
        model = ComputeCostModel(
            num_features=3, table_hidden=(16, 8), head_hidden=(16,),
            rng=np.random.default_rng(1),
        )
        loss = MSELoss()
        opt = Adam(model.parameters(), lr=3e-3)
        def sample(batch=32):
            inputs, targets = [], []
            for _ in range(batch):
                t = rng.integers(1, 6)
                m = rng.normal(size=(t, 3))
                inputs.append(m)
                targets.append(m[:, 0].sum())
            return inputs, np.array(targets)
        first = None
        for step in range(400):
            inputs, targets = sample()
            pred = model.forward_batch(inputs)
            value = loss(pred, targets)
            if first is None:
                first = value
            opt.zero_grad()
            model.backward_batch(loss.backward())
            opt.step()
        assert value < first / 10

    def test_paper_architecture_sizes(self):
        """Default sizes follow the paper: 128-32 shared MLP, 32-64 head."""
        model = ComputeCostModel(num_features=15)
        from repro.nn import Linear

        table_linears = [
            m for m in model.table_mlp.modules if isinstance(m, Linear)
        ]
        head_linears = [m for m in model.head_mlp.modules if isinstance(m, Linear)]
        assert [(l.in_features, l.out_features) for l in table_linears] == [
            (15, 128),
            (128, 32),
        ]
        assert [(l.in_features, l.out_features) for l in head_linears] == [
            (32, 64),
            (64, 1),
        ]


class TestCommFeatures:
    def test_layout(self):
        feats = comm_features([100, 200], [1.0, 2.0], batch_size=65536)
        assert feats.shape == (4,)
        # First half: scaled starts; second half: scaled sizes.
        assert feats[0] == pytest.approx(0.1)
        assert feats[2] == pytest.approx(100 * 65536 * 4.0 / 1e8)

    def test_validates_alignment(self):
        with pytest.raises(ValueError):
            comm_features([100, 200], [0.0], batch_size=65536)
        with pytest.raises(ValueError):
            comm_features([100], [0.0], batch_size=0)


class TestCommCostModel:
    def test_shapes(self, rng):
        model = CommCostModel(num_devices=4, rng=rng)
        out = model.forward_batch(rng.normal(size=(6, 8)))
        assert out.shape == (6, 4)

    def test_predict_applies_target_stats(self, rng):
        model = CommCostModel(num_devices=2, rng=rng)
        raw = model.forward_batch(
            comm_features([10, 20], [0.0, 1.0], 1024)[None, :]
        )[0]
        model.set_target_stats(5.0, 2.0)
        scaled = model.predict([10, 20], [0.0, 1.0], 1024)
        assert np.allclose(scaled, 5.0 + 2.0 * raw)

    def test_wrong_device_count_rejected(self, rng):
        model = CommCostModel(num_devices=4, rng=rng)
        with pytest.raises(ValueError):
            model.predict([10, 20], [0.0, 1.0], 1024)

    def test_input_width_validated(self, rng):
        model = CommCostModel(num_devices=4, rng=rng)
        with pytest.raises(ValueError):
            model.forward_batch(rng.normal(size=(3, 6)))

    def test_paper_architecture(self):
        """Hidden sizes 128-64-32-16 per the paper."""
        from repro.nn import Linear

        model = CommCostModel(num_devices=4)
        widths = [
            (l.in_features, l.out_features)
            for l in model.mlp.modules
            if isinstance(l, Linear)
        ]
        assert widths == [(8, 128), (128, 64), (64, 32), (32, 16), (16, 4)]

    def test_learns_linear_map(self, rng):
        model = CommCostModel(num_devices=2, hidden=(16,), rng=np.random.default_rng(2))
        loss = MSELoss()
        opt = Adam(model.parameters(), lr=5e-3)
        x = rng.normal(size=(256, 4))
        y = np.stack([x[:, 2] * 3, x[:, 3] * 2], axis=1)
        first = None
        for _ in range(300):
            pred = model.forward_batch(x)
            value = loss(pred, y)
            if first is None:
                first = value
            opt.zero_grad()
            model.backward_batch(loss.backward())
            opt.step()
        assert value < first / 10
