"""Shared fixtures.

Heavyweight artifacts (the table pool, a trained cost-model bundle) are
session-scoped: the bundle in particular takes a few seconds to pre-train
and is reused by every search/baseline test.  Test sizes are deliberately
small — benchmark-grade fidelity lives in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    CollectionConfig,
    TaskConfig,
    TrainConfig,
)
from repro.costmodel import pretrain_cost_models
from repro.data import TablePool, generate_tasks, synthesize_table_pool
from repro.hardware import SimulatedCluster

TEST_MEMORY_BYTES = 2 * 1024**3


@pytest.fixture(scope="session")
def small_pool() -> TablePool:
    """A 48-table pool — enough diversity, fast to augment."""
    return TablePool(synthesize_table_pool(num_tables=48, seed=7))


@pytest.fixture(scope="session")
def cluster2() -> SimulatedCluster:
    """A 2-device cluster with a 2 GB budget."""
    return SimulatedCluster(
        ClusterConfig(num_devices=2, memory_bytes=TEST_MEMORY_BYTES)
    )


@pytest.fixture(scope="session")
def cluster4() -> SimulatedCluster:
    """A 4-device cluster with a 2 GB budget."""
    return SimulatedCluster(
        ClusterConfig(num_devices=4, memory_bytes=TEST_MEMORY_BYTES)
    )


@pytest.fixture(scope="session")
def tiny_collection() -> CollectionConfig:
    return CollectionConfig(
        num_compute_samples=600,
        num_comm_samples=300,
        max_tables=8,
        min_placement_tables=4,
        max_placement_tables=12,
    )


@pytest.fixture(scope="session")
def tiny_train() -> TrainConfig:
    # Small batches: the tiny datasets need enough optimizer steps.
    return TrainConfig(epochs=100, batch_size=64)


@pytest.fixture(scope="session")
def tiny_bundle(small_pool, cluster2, tiny_collection, tiny_train):
    """A small pre-trained cost-model bundle for the 2-device cluster."""
    bundle, _ = pretrain_cost_models(
        cluster2, small_pool, tiny_collection, tiny_train, seed=11
    )
    return bundle


@pytest.fixture(scope="session")
def tasks2(small_pool):
    """Five small 2-device sharding tasks."""
    config = TaskConfig(
        num_devices=2,
        max_dim=64,
        min_tables=4,
        max_tables=10,
        memory_bytes=TEST_MEMORY_BYTES,
    )
    return generate_tasks(small_pool, config, count=5, seed=13)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
