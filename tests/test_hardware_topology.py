"""Tests for the hierarchical (NVLink islands / RDMA fabric) topology."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.data.table import TableConfig
from repro.hardware import (
    AllToAllModel,
    HierarchicalAllToAllModel,
    SimulatedCluster,
    TopologySpec,
)

BATCH = 4096


class TestTopologySpec:
    def test_defaults_valid(self):
        spec = TopologySpec()
        assert spec.node_size == 8
        assert spec.intra_bandwidth_bytes_per_ms > spec.inter_bandwidth_bytes_per_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(node_size=0)
        with pytest.raises(ValueError):
            TopologySpec(intra_bandwidth_bytes_per_ms=0)
        with pytest.raises(ValueError):
            TopologySpec(inter_bandwidth_bytes_per_ms=-1)
        with pytest.raises(ValueError):
            TopologySpec(intra_latency_ms=-0.1)


class TestHierarchicalAllToAll:
    def test_node_of(self):
        model = HierarchicalAllToAllModel(topology=TopologySpec(node_size=4))
        assert [model.node_of(d) for d in range(10)] == [
            0, 0, 0, 0, 1, 1, 1, 1, 2, 2,
        ]
        with pytest.raises(ValueError):
            model.node_of(-1)

    def test_single_device_free(self):
        model = HierarchicalAllToAllModel()
        assert model.measure([500], BATCH, noisy=False).costs_ms == (0.0,)

    def test_input_validation(self):
        model = HierarchicalAllToAllModel()
        with pytest.raises(ValueError):
            model.measure([], BATCH)
        with pytest.raises(ValueError):
            model.measure([-1, 2], BATCH)
        with pytest.raises(ValueError):
            model.measure([1, 2], 0)
        with pytest.raises(ValueError):
            model.measure([1, 2], BATCH, start_times_ms=[0.0])
        with pytest.raises(ValueError):
            model.measure([1, 2], BATCH, start_times_ms=[-1.0, 0.0])

    def test_intra_node_collective_cheaper_than_cross_node(self):
        """The same 4-device collective costs less inside one node than
        spread over four nodes (one device each)."""
        dims = [256] * 4
        one_node = HierarchicalAllToAllModel(
            topology=TopologySpec(node_size=4)
        ).measure(dims, BATCH, noisy=False)
        four_nodes = HierarchicalAllToAllModel(
            topology=TopologySpec(node_size=1)
        ).measure(dims, BATCH, noisy=False)
        assert one_node.max_cost_ms < four_nodes.max_cost_ms

    def test_observation3_survives_topology(self):
        """Max measured cost still tracks max device dimension on a
        hierarchical fabric — the property NeuroShard's communication
        balancing relies on (and why it deploys on RDMA clusters)."""
        model = HierarchicalAllToAllModel(topology=TopologySpec(node_size=4))
        rng = np.random.default_rng(0)
        max_dims, max_costs = [], []
        for _ in range(30):
            dims = rng.integers(64, 1024, size=16)
            meas = model.measure(list(dims), BATCH, noisy=False)
            max_dims.append(int(dims.max()))
            max_costs.append(meas.max_cost_ms)
        corr = np.corrcoef(max_dims, max_costs)[0, 1]
        assert corr > 0.9

    def test_backward_slower(self):
        model = HierarchicalAllToAllModel()
        dims = [128] * 16
        fwd = model.measure(dims, BATCH, noisy=False)
        bwd = model.measure(dims, BATCH, backward=True, noisy=False)
        assert bwd.max_cost_ms > fwd.max_cost_ms

    def test_barrier_semantics(self):
        model = HierarchicalAllToAllModel(topology=TopologySpec(node_size=2))
        sync = model.measure([100, 100], BATCH, noisy=False)
        skew = model.measure(
            [100, 100], BATCH, start_times_ms=[0.0, 7.0], noisy=False
        )
        assert skew.costs_ms[0] == pytest.approx(sync.costs_ms[0] + 7.0)
        assert skew.costs_ms[1] == pytest.approx(sync.costs_ms[1])

    def test_fat_fabric_converges_to_flat_shape(self):
        """With inter-node links as fast as intra-node and node size 1,
        the hierarchical wire time is within a small factor of the flat
        model's (different but comparable analytic forms)."""
        flat = AllToAllModel().measure([256] * 8, BATCH, noisy=False)
        spec = TopologySpec(
            node_size=1,
            inter_bandwidth_bytes_per_ms=6.0e6,
            intra_bandwidth_bytes_per_ms=6.0e6,
            inter_latency_ms=0.25,
            intra_latency_ms=0.25,
        )
        hier = HierarchicalAllToAllModel(topology=spec).measure(
            [256] * 8, BATCH, noisy=False
        )
        assert hier.max_cost_ms == pytest.approx(flat.max_cost_ms, rel=0.2)

    @given(node_size=st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_costs_positive_for_any_node_size(self, node_size):
        model = HierarchicalAllToAllModel(
            topology=TopologySpec(node_size=node_size)
        )
        meas = model.measure([64] * 12, BATCH, noisy=False)
        assert all(c > 0 for c in meas.costs_ms)

    def test_ragged_last_node(self):
        """Device counts that do not divide evenly still work: the last
        node simply has fewer devices."""
        model = HierarchicalAllToAllModel(topology=TopologySpec(node_size=4))
        meas = model.measure([128] * 10, BATCH, noisy=False)  # nodes 4+4+2
        assert len(meas.costs_ms) == 10
        assert all(np.isfinite(c) for c in meas.costs_ms)


class TestTopologyInCluster:
    def table(self, tid=0):
        return TableConfig(
            table_id=tid, hash_size=100_000, dim=32, pooling_factor=8.0,
            zipf_alpha=1.05,
        )

    def test_cluster_accepts_comm_override(self):
        config = ClusterConfig(num_devices=4, batch_size=BATCH)
        topo_comm = HierarchicalAllToAllModel(
            topology=TopologySpec(node_size=2)
        )
        cluster = SimulatedCluster(config, comm=topo_comm)
        assert cluster.comm is topo_comm
        assert cluster.tracer.comm is topo_comm

    def test_topology_changes_measured_plan_costs(self):
        config = ClusterConfig(num_devices=4, batch_size=BATCH)
        tables = [self.table(i) for i in range(8)]
        placement = [tables[:2], tables[2:4], tables[4:6], tables[6:]]
        flat = SimulatedCluster(config).evaluate_plan(placement)
        hier = SimulatedCluster(
            config,
            comm=HierarchicalAllToAllModel(topology=TopologySpec(node_size=2)),
        ).evaluate_plan(placement)
        # Compute identical, communication different.
        np.testing.assert_allclose(
            flat.compute_costs_ms, hier.compute_costs_ms, rtol=1e-9
        )
        assert flat.fwd_comm_costs_ms != hier.fwd_comm_costs_ms
