"""Tests for the linear (ridge) cost models — the Section 4.2 ablation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.costmodel import (
    LinearCommCostModel,
    LinearComputeCostModel,
    collect_comm_data,
    collect_compute_data,
    fit_linear_comm_model,
    fit_linear_compute_model,
    kendall_tau,
    mse,
)
from repro.costmodel.features import TableFeaturizer


@pytest.fixture(scope="module")
def compute_data(cluster2, small_pool, tiny_collection):
    featurizer = TableFeaturizer(batch_size=cluster2.batch_size)
    return (
        collect_compute_data(cluster2, small_pool, featurizer, tiny_collection, 3),
        featurizer,
    )


@pytest.fixture(scope="module")
def comm_data(cluster2, small_pool, tiny_collection):
    fwd, _ = collect_comm_data(cluster2, small_pool, tiny_collection, 5)
    return fwd


class TestLinearComputeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinearComputeCostModel(num_features=0)
        with pytest.raises(ValueError):
            LinearComputeCostModel(num_features=4, l2=-1.0)

    def test_predict_before_fit_raises(self):
        model = LinearComputeCostModel(num_features=4)
        with pytest.raises(RuntimeError, match="fit"):
            model.predict_many([np.zeros((2, 4))])

    def test_rejects_feature_width_mismatch(self):
        model = LinearComputeCostModel(num_features=4)
        model.fit([np.ones((2, 4))], [1.0])
        with pytest.raises(ValueError, match="features"):
            model.predict_one(np.ones((2, 5)))

    def test_fits_exactly_linear_data(self):
        """On data that *is* linear in pooled features, ridge is exact."""
        rng = np.random.default_rng(0)
        w = rng.normal(size=4)
        mats = [rng.normal(size=(int(rng.integers(1, 6)), 4)) for _ in range(200)]
        y = [float(m.sum(axis=0) @ w + 2.0 * len(m) + 0.5) for m in mats]
        model = LinearComputeCostModel(num_features=4, l2=1e-10)
        train_mse = model.fit(mats, y)
        assert train_mse < 1e-12
        preds = model.predict_many(mats[:10])
        np.testing.assert_allclose(preds, y[:10], atol=1e-6)

    def test_underfits_real_cost_data(self, compute_data, cluster2, small_pool,
                                      tiny_collection):
        """The headline claim: the fused-kernel cost is non-linear in the
        pooled features, so the linear model's rank accuracy on held-out
        data is clearly below the ~0.97 the neural model achieves."""
        data, featurizer = compute_data
        n = len(data.targets)
        split = int(0.8 * n)
        model = LinearComputeCostModel(featurizer.num_features)
        model.fit(list(data.inputs[:split]), np.asarray(data.targets[:split]))
        preds = model.predict_many(list(data.inputs[split:]))
        tau = kendall_tau(preds, data.targets[split:])
        # Still correlated (pooled features carry most of the signal)...
        assert tau > 0.5
        # ...but short of what search-grade accuracy requires.
        assert tau < 0.97

    def test_helper_returns_model_and_mse(self, compute_data):
        data, featurizer = compute_data
        model, train_mse = fit_linear_compute_model(
            data, featurizer.num_features
        )
        assert train_mse >= 0
        assert np.isfinite(model.predict_one(data.inputs[0]))

    def test_empty_combination_predicts_bias(self, compute_data):
        data, featurizer = compute_data
        model, _ = fit_linear_compute_model(data, featurizer.num_features)
        pred = model.predict_one(np.zeros((0, featurizer.num_features)))
        assert np.isfinite(pred)

    def test_input_validation_on_fit(self):
        model = LinearComputeCostModel(num_features=4)
        with pytest.raises(ValueError, match="targets"):
            model.fit([np.ones((1, 4))], [1.0, 2.0])
        with pytest.raises(ValueError, match="one sample"):
            model.fit([], [])


class TestLinearCommModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinearCommCostModel(num_devices=0)
        with pytest.raises(ValueError):
            LinearCommCostModel(num_devices=2, l2=-0.1)

    def test_fit_and_predict_shapes(self, comm_data, cluster2):
        model, train_mse = fit_linear_comm_model(
            comm_data, cluster2.num_devices
        )
        assert train_mse >= 0
        out = model.predict([100, 200], [0.0, 3.0], cluster2.batch_size)
        assert out.shape == (2,)

    def test_comm_is_nearly_linear(self, comm_data, cluster2):
        """Communication cost *is* close to linear in (starts, sizes) —
        which is exactly why Observation 3's dims proxy works.  The
        linear model should do well here, unlike on compute."""
        n = len(comm_data.targets)
        split = int(0.8 * n)
        model = LinearCommCostModel(cluster2.num_devices)
        model.fit(
            np.asarray(comm_data.inputs[:split]),
            np.asarray(comm_data.targets[:split]),
        )
        xb = np.asarray(comm_data.inputs[split:])
        preds = model._predict_rows(xb)
        test_mse = mse(preds.ravel(), np.asarray(comm_data.targets[split:]).ravel())
        var = float(np.var(comm_data.targets[split:]))
        assert test_mse < 0.2 * var  # explains >80% of the variance

    def test_rejects_mismatched_targets(self, cluster2):
        model = LinearCommCostModel(num_devices=3)
        with pytest.raises(ValueError, match="devices"):
            model.fit(np.ones((4, 6)), np.ones((4, 2)))

    def test_predict_before_fit_raises(self):
        model = LinearCommCostModel(num_devices=2)
        with pytest.raises(RuntimeError, match="fit"):
            model.predict([1, 2], [0.0, 0.0], 64)


class TestLinearInBundle:
    def test_linear_model_drops_into_search(self, tiny_bundle, compute_data,
                                            tasks2):
        """A bundle whose compute model is linear must run through the
        unmodified NeuroShard search (interface compatibility)."""
        from repro.core import NeuroShard
        from repro.config import SearchConfig

        data, featurizer = compute_data
        linear, _ = fit_linear_compute_model(data, featurizer.num_features)
        hybrid = dataclasses.replace(tiny_bundle, compute=linear)
        sharder = NeuroShard(
            hybrid, search=SearchConfig(max_steps=2, grid_points=3)
        )
        result = sharder.shard(tasks2[0])
        assert result.feasible
