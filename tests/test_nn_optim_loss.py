"""Tests for repro.nn.optim and repro.nn.loss."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, MSELoss, Parameter, Sequential


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()
        value = loss(np.array([1.0, 2.0]), np.array([1.0, 4.0]))
        assert value == pytest.approx(2.0)  # (0 + 4) / 2

    def test_gradient_matches_numeric(self):
        loss = MSELoss()
        pred = np.array([1.0, 2.0, 3.0])
        target = np.array([0.5, 2.5, 2.0])
        loss(pred, target)
        grad = loss.backward()
        eps = 1e-6
        for i in range(3):
            up = pred.copy()
            up[i] += eps
            down = pred.copy()
            down[i] -= eps
            numeric = (MSELoss()(up, target) - MSELoss()(down, target)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(3), np.zeros(4))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()


def quadratic_param() -> Parameter:
    return Parameter(np.array([5.0, -3.0]))


def quadratic_grad(p: Parameter) -> None:
    # d/dx (x^2 / 2) = x
    p.grad[...] = p.data


class TestSGD:
    def test_plain_step(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        quadratic_grad(p)
        opt.step()
        assert np.allclose(p.data, [4.5, -2.7])

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.2, momentum=0.5)
        for _ in range(100):
            opt.zero_grad()
            quadratic_grad(p)
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-4)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()  # gradient zero; only decay acts
        opt.step()
        assert p.data[0] == pytest.approx(0.9)

    def test_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([p], lr=0)
        with pytest.raises(ValueError):
            SGD([p], momentum=1.0)
        with pytest.raises(ValueError):
            SGD([])


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step has magnitude ~lr."""
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.01)
        p.grad[...] = 3.0
        opt.step()
        assert p.data[0] == pytest.approx(10.0 - 0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            quadratic_grad(p)
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-3)

    def test_trains_network_faster_than_sgd(self, rng):
        """Regression guard: Adam should reach a lower loss than plain
        SGD in the same epoch budget on a small problem."""
        x = rng.normal(size=(200, 4))
        y = (x[:, :1] ** 2).astype(float)

        def train(opt_cls, **kw):
            net = Sequential.mlp([4, 16, 1], rng=np.random.default_rng(0))
            opt = opt_cls(net.parameters(), **kw)
            loss = MSELoss()
            for _ in range(60):
                value = loss(net.forward(x), y)
                opt.zero_grad()
                net.backward(loss.backward())
                opt.step()
            return value

        assert train(Adam, lr=1e-2) < train(SGD, lr=1e-2)

    def test_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            Adam([p], lr=-1)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.9))
        with pytest.raises(ValueError):
            Adam([p], eps=0)
