"""Equivalence regression: optimized search == frozen reference.

The incremental/memoized hot path (:mod:`repro.core.greedy_grid`,
:mod:`repro.core.beam_search`, the simulator's keyed/memo fast paths) is
required to return results *identical* to the pre-optimization
implementation preserved in :mod:`repro.core.reference` — same
feasibility, bit-equal costs, same assignment, same column plan, and the
same number of inner-loop evaluations (a trajectory fingerprint).

The suites cover seeded small / medium / split-forcing / infeasible task
mixes, plus the ablation configurations (no grid, no cache) that drive
the alternative code paths, and a full (strategy × cache × batch)
matrix pinning the vectorized batch-scoring kernel cell by cell.
"""

from __future__ import annotations

import math

import pytest

from repro.config import SearchConfig, TaskConfig
from repro.core import (
    CostCache,
    NeuroShardSimulator,
    beam_search,
    greedy_grid_search,
    reference_beam_search,
    reference_greedy_grid_search,
)
from repro.data import generate_tasks
from repro.hardware.memory import MemoryModel

SMALL_SEARCH = SearchConfig(top_n=3, beam_width=2, max_steps=3, grid_points=4)
MEDIUM_SEARCH = SearchConfig(top_n=4, beam_width=2, max_steps=5, grid_points=6)


def _run_both(bundle, tables, num_devices, memory, search):
    """Run reference and optimized beam search on fresh caches."""
    ref = reference_beam_search(
        list(tables), num_devices,
        NeuroShardSimulator(bundle, CostCache(enabled=search.use_cache)),
        memory, search,
    )
    opt = beam_search(
        list(tables), num_devices,
        NeuroShardSimulator(bundle, CostCache(enabled=search.use_cache)),
        memory, search,
    )
    return ref, opt


def _assert_identical(ref, opt):
    assert opt.feasible == ref.feasible
    assert opt.cost_ms == ref.cost_ms  # bit-equal, no tolerance
    assert opt.evaluations == ref.evaluations
    if ref.plan is None:
        assert opt.plan is None
    else:
        assert opt.plan.column_plan == ref.plan.column_plan
        assert opt.plan.assignment == ref.plan.assignment
        assert opt.plan.num_devices == ref.plan.num_devices


class TestBeamSearchEquivalence:
    def test_small_tasks(self, tiny_bundle, tasks2):
        for task in tasks2:
            memory = MemoryModel(task.memory_bytes)
            ref, opt = _run_both(
                tiny_bundle, task.tables, 2, memory, SMALL_SEARCH
            )
            assert ref.feasible
            _assert_identical(ref, opt)

    def test_medium_tasks(self, tiny_bundle, small_pool):
        cfg = TaskConfig(
            num_devices=2,
            max_dim=64,
            min_tables=10,
            max_tables=16,
            memory_bytes=2 * 1024**3,
        )
        for task in generate_tasks(small_pool, cfg, count=3, seed=41):
            memory = MemoryModel(task.memory_bytes)
            ref, opt = _run_both(
                tiny_bundle, task.tables, 2, memory, MEDIUM_SEARCH
            )
            _assert_identical(ref, opt)

    def test_split_forcing_tasks(self, tiny_bundle, tasks2):
        """Budgets below the largest table force column splits — the
        regime where the plan memo and overflow ranking matter most."""
        for task in tasks2[:3]:
            largest = max(
                t.size_bytes + t.hash_size * 4 for t in task.tables
            )
            memory = MemoryModel(max(int(largest * 0.75), 1))
            ref, opt = _run_both(
                tiny_bundle, task.tables, 2, memory, MEDIUM_SEARCH
            )
            _assert_identical(ref, opt)

    def test_infeasible_tasks(self, tiny_bundle, tasks2):
        memory = MemoryModel(1024)  # nothing fits, ever
        for task in tasks2[:2]:
            ref, opt = _run_both(
                tiny_bundle, task.tables, 2, memory, SMALL_SEARCH
            )
            assert not ref.feasible
            assert opt.cost_ms == math.inf
            _assert_identical(ref, opt)

    @pytest.mark.parametrize("ablation", ["grid_search", "caching"])
    def test_ablation_configs(self, tiny_bundle, tasks2, ablation):
        """The ablated configurations exercise the non-memoized and
        single-pass code paths; equivalence must hold there too."""
        search = MEDIUM_SEARCH.with_ablation(ablation)
        for task in tasks2[:2]:
            memory = MemoryModel(task.memory_bytes)
            ref, opt = _run_both(
                tiny_bundle, task.tables, 2, memory, search
            )
            _assert_identical(ref, opt)


class TestGridSearchEquivalence:
    def test_inner_loop_direct(self, tiny_bundle, tasks2):
        for task in tasks2:
            memory = MemoryModel(task.memory_bytes)
            ref = reference_greedy_grid_search(
                list(task.tables), 2,
                NeuroShardSimulator(tiny_bundle, CostCache()),
                memory, MEDIUM_SEARCH,
            )
            opt = greedy_grid_search(
                list(task.tables), 2,
                NeuroShardSimulator(tiny_bundle, CostCache()),
                memory, MEDIUM_SEARCH,
            )
            assert opt.feasible == ref.feasible
            assert opt.cost_ms == ref.cost_ms
            assert opt.assignment == ref.assignment
            assert opt.max_dim_used == ref.max_dim_used
            assert opt.overflow_bytes == ref.overflow_bytes
            if ref.breakdown is not None:
                assert opt.breakdown.compute_ms == ref.breakdown.compute_ms
                assert opt.breakdown.fwd_comm_ms == ref.breakdown.fwd_comm_ms
                assert opt.breakdown.bwd_comm_ms == ref.breakdown.bwd_comm_ms

    def test_grid_batch_vs_sequential(self, tiny_bundle, tasks2):
        """The lockstep batched grid search equals its own sequential
        route bit-for-bit, breakdown included."""
        for task in tasks2:
            memory = MemoryModel(task.memory_bytes)
            results = []
            for search in (
                MEDIUM_SEARCH,
                MEDIUM_SEARCH.with_ablation("batch_scoring"),
            ):
                results.append(
                    greedy_grid_search(
                        list(task.tables), 2,
                        NeuroShardSimulator(tiny_bundle, CostCache()),
                        memory, search,
                    )
                )
            batched, sequential = results
            assert batched.cost_ms == sequential.cost_ms
            assert batched.assignment == sequential.assignment
            assert batched.max_dim_used == sequential.max_dim_used

    def test_shared_cache_between_runs_is_harmless(self, tiny_bundle, tasks2):
        """Predictions are deterministic, so running the optimized search
        on a cache pre-warmed by the reference changes nothing."""
        task = tasks2[0]
        memory = MemoryModel(task.memory_bytes)
        shared = CostCache()
        simulator = NeuroShardSimulator(tiny_bundle, shared)
        ref = reference_greedy_grid_search(
            list(task.tables), 2, simulator, memory, SMALL_SEARCH
        )
        opt = greedy_grid_search(
            list(task.tables), 2,
            NeuroShardSimulator(tiny_bundle, shared),
            memory, SMALL_SEARCH,
        )
        assert opt.cost_ms == ref.cost_ms
        assert opt.assignment == ref.assignment


def _config_for(base: SearchConfig, strategy: str, cache: bool, batch: bool):
    """Build the matrix cell's configuration from its coordinates."""
    config = base
    if strategy == "mixed":
        # Beam search over column splits with the inner grid ablated to a
        # single unconstrained greedy pass — the remaining hybrid of the
        # two loops, and the only strategy shape not covered above.
        config = config.with_ablation("grid_search")
    if not cache:
        config = config.with_ablation("caching")
    if not batch:
        config = config.with_ablation("batch_scoring")
    return config


class TestEquivalenceMatrix:
    """(strategy ∈ greedy/beam/mixed) × (cache on/off) × (batch on/off).

    Every cell is held to *byte-identical plans and bit-equal costs*
    against the frozen reference — including the batched-scoring cells,
    whose whole-frontier forward passes must not perturb a single low
    bit, and the cache-off cells, whose ablation must stay honest under
    batching.
    """

    STRATEGIES = ("greedy", "beam", "mixed")

    def _check(self, bundle, tables, memory, search, strategy):
        if strategy == "greedy":
            ref = reference_greedy_grid_search(
                list(tables), 2,
                NeuroShardSimulator(
                    bundle, CostCache(enabled=search.use_cache)
                ),
                memory, search,
            )
            opt = greedy_grid_search(
                list(tables), 2,
                NeuroShardSimulator(
                    bundle, CostCache(enabled=search.use_cache)
                ),
                memory, search,
            )
            assert opt.feasible == ref.feasible
            assert opt.cost_ms == ref.cost_ms  # bit-equal, no tolerance
            assert opt.assignment == ref.assignment
            assert opt.max_dim_used == ref.max_dim_used
            assert opt.overflow_bytes == ref.overflow_bytes
            if ref.breakdown is not None:
                assert opt.breakdown.compute_ms == ref.breakdown.compute_ms
                assert opt.breakdown.fwd_comm_ms == ref.breakdown.fwd_comm_ms
                assert opt.breakdown.bwd_comm_ms == ref.breakdown.bwd_comm_ms
        else:
            ref, opt = _run_both(bundle, tables, 2, memory, search)
            _assert_identical(ref, opt)

    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "seq"])
    @pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cell(self, tiny_bundle, tasks2, strategy, cache, batch):
        search = _config_for(SMALL_SEARCH, strategy, cache, batch)
        for task in tasks2[:2]:
            memory = MemoryModel(task.memory_bytes)
            self._check(tiny_bundle, task.tables, memory, search, strategy)

    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "seq"])
    @pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_split_forcing_cell(
        self, tiny_bundle, tasks2, strategy, cache, batch
    ):
        """Budgets below the largest table force column splits (beam) or
        outright infeasibility (greedy alone) in every cell."""
        search = _config_for(SMALL_SEARCH, strategy, cache, batch)
        task = tasks2[2]
        largest = max(t.size_bytes + t.hash_size * 4 for t in task.tables)
        memory = MemoryModel(max(int(largest * 0.75), 1))
        self._check(tiny_bundle, task.tables, memory, search, strategy)

    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "seq"])
    @pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_infeasible_cell(self, tiny_bundle, tasks2, strategy, cache, batch):
        """Nothing fits: every cell must agree on (in)feasibility, the
        overflow ranking and the evaluation count."""
        search = _config_for(SMALL_SEARCH, strategy, cache, batch)
        memory = MemoryModel(1024)
        self._check(tiny_bundle, tasks2[4].tables, memory, search, strategy)
