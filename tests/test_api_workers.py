"""Tests for the process-pool serving plane (repro.api.workers).

The load-bearing contract: pool execution is **bit-identical** to
in-process execution under ``deterministic_dict`` — for every registered
strategy — because every worker bootstraps its engine from the same
:class:`EngineSpec` the caller's reference engine is built from.
"""

import dataclasses

import pytest

from repro.api import (
    EngineSpec,
    ShardingEngine,
    ShardingRequest,
    WorkerPool,
    available_strategies,
    make_sharder,
)
from repro.config import ClusterConfig, SearchConfig

from tests.conftest import TEST_MEMORY_BYTES


@pytest.fixture(scope="module")
def bundle_dir(tiny_bundle, tmp_path_factory):
    """The session bundle saved to disk, loadable by worker processes."""
    directory = tmp_path_factory.mktemp("bundle") / "tiny"
    tiny_bundle.save(directory)
    return str(directory)


@pytest.fixture(scope="module")
def spec(bundle_dir):
    return EngineSpec(
        cluster=ClusterConfig(
            num_devices=2, memory_bytes=TEST_MEMORY_BYTES
        ),
        bundle_path=bundle_dir,
        search=SearchConfig(),
        strategy_kwargs={"random": {"seed": 7}},
    )


@pytest.fixture(scope="module")
def pool(spec):
    with WorkerPool(spec, max_workers=2) as pool:
        yield pool


class TestEngineSpec:
    def test_build_engine_matches_fields(self, spec):
        engine = spec.build_engine()
        assert engine.cluster.num_devices == 2
        assert engine.bundle is not None

    def test_bundleless_spec_builds(self):
        engine = EngineSpec(
            cluster=ClusterConfig(num_devices=2),
            default_strategy="dim_greedy",
        ).build_engine()
        assert engine.bundle is None
        assert engine.default_strategy == "dim_greedy"


class TestWorkerLifecycle:
    def test_workers_bootstrap_exactly_once(self, pool, tasks2):
        # Enough traffic that both workers have almost surely served.
        pool.shard_batch(
            [ShardingRequest(t, strategy="dim_greedy") for t in tasks2]
        )
        probes = pool.probe_workers()
        assert 1 <= len(probes) <= 2
        for probe in probes:
            # The bootstrap-once contract: re-bootstrapping per request
            # (or per batch) would make warm per-worker caches a lie.
            assert probe["bootstraps"] == 1
            assert set(probe["cache"]) >= {"hits", "misses"}
        assert len({p["pid"] for p in probes}) == len(probes)

    def test_close_is_idempotent_and_rejects_new_work(self, spec, tasks2):
        pool = WorkerPool(spec, max_workers=1)
        response = pool.shard(ShardingRequest(tasks2[0]))
        assert response.strategy
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.shard(ShardingRequest(tasks2[0]))

    def test_unused_pool_closes_without_spawning(self, spec):
        pool = WorkerPool(spec, max_workers=2)
        assert pool._executor is None
        pool.close()
        assert pool.closed

    def test_rejects_bad_worker_count(self, spec):
        with pytest.raises(ValueError, match="max_workers"):
            WorkerPool(spec, max_workers=0)

    def test_empty_batch_short_circuits(self, spec):
        pool = WorkerPool(spec, max_workers=2)
        assert pool.shard_batch([]) == []
        # The empty batch must not have paid for worker processes.
        assert pool._executor is None
        pool.close()


class TestBitIdentity:
    def test_pool_matches_in_process_for_every_strategy(
        self, spec, pool, tasks2
    ):
        """The acceptance gate: all 18+ registered strategies answer
        bit-identically through the pool and in-process."""
        # Budgets generous enough that any placement is feasible: the
        # gate tests serving equivalence, not search skill.
        task = tasks2[0]
        total = sum(t.size_bytes + 4 * t.hash_size for t in task.tables)
        task = dataclasses.replace(task, memory_bytes=2 * total)

        local = spec.build_engine()
        policy = make_sharder(
            "imitation",
            cluster=local.cluster,
            bundle=local.bundle,
            train_tasks=[task],
            epochs=2,
        )
        fit = {"train_tasks": [task], "epochs": 2}
        options = {
            "guided": {"policy": policy},
            "imitation": fit,
            "offline_rl": fit,
        }
        fitted_spec = dataclasses.replace(
            spec, strategy_kwargs={**spec.strategy_kwargs, **options}
        )
        local = fitted_spec.build_engine()
        strategies = sorted(available_strategies())
        assert len(strategies) >= 18

        requests = [
            ShardingRequest(task, strategy=name) for name in strategies
        ]
        with WorkerPool(fitted_spec, max_workers=2) as fitted_pool:
            pooled = fitted_pool.shard_batch(requests)
        for request, response in zip(requests, pooled):
            want = local.shard(request).deterministic_dict()
            got = response.deterministic_dict()
            # The correlation id is the only legitimate difference.
            want["request_id"] = got["request_id"]
            assert got == want, request.strategy

    def test_strategy_failure_is_contained_not_raised(self, pool, tasks2):
        # An impossible budget comes back infeasible, like in-process.
        tight = dataclasses.replace(tasks2[0], memory_bytes=1024)
        response = pool.shard(
            ShardingRequest(tight, strategy="dim_greedy")
        )
        assert not response.feasible
        assert response.plan is None


class TestEngineRouting:
    def test_engine_routes_batches_through_pool(
        self, spec, pool, tasks2, cluster2, tiny_bundle
    ):
        engine = ShardingEngine(cluster2, tiny_bundle, worker_pool=pool)
        requests = [ShardingRequest(t) for t in tasks2[:3]]
        pooled = engine.shard_batch(requests)
        local = [engine.shard(r) for r in requests]
        for a, b in zip(pooled, local):
            da, db = a.deterministic_dict(), b.deterministic_dict()
            db["request_id"] = da["request_id"]
            assert da == db

    def test_explicit_max_workers_stays_in_process(
        self, spec, pool, tasks2, cluster2, tiny_bundle
    ):
        engine = ShardingEngine(cluster2, tiny_bundle, worker_pool=pool)
        closed_probe = WorkerPool(spec, max_workers=1)
        closed_probe.close()
        # max_workers forces the in-process path even with a pool
        # attached — a closed pool would raise if it were consulted.
        engine_closed = ShardingEngine(
            cluster2, tiny_bundle, worker_pool=closed_probe
        )
        for target in (engine, engine_closed):
            responses = target.shard_batch(
                [ShardingRequest(t) for t in tasks2[:2]], max_workers=1
            )
            assert len(responses) == 2

    def test_engine_falls_back_when_pool_closes(
        self, spec, tasks2, cluster2, tiny_bundle
    ):
        pool = WorkerPool(spec, max_workers=1)
        engine = ShardingEngine(cluster2, tiny_bundle, worker_pool=pool)
        pool.close()
        responses = engine.shard_batch(
            [ShardingRequest(t) for t in tasks2[:2]]
        )
        assert all(r.strategy for r in responses)

    def test_pool_device_count_must_match_cluster(
        self, spec, pool, cluster4, tiny_bundle
    ):
        with pytest.raises(ValueError, match="devices"):
            ShardingEngine(cluster4, None, worker_pool=pool)


class TestPersistentThreadExecutor:
    def test_default_thread_executor_is_reused(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(cluster2, tiny_bundle, max_workers=4)
        requests = [ShardingRequest(t) for t in tasks2[:2]]
        engine.shard_batch(requests)
        first = engine._executor
        assert first is not None
        engine.shard_batch(requests)
        # One persistent executor, not a fresh pool per call.
        assert engine._executor is first
        engine.close()
        assert engine._executor is None

    def test_closed_engine_rejects_batches(
        self, cluster2, tiny_bundle, tasks2
    ):
        with ShardingEngine(cluster2, tiny_bundle, max_workers=4) as engine:
            engine.shard_batch([ShardingRequest(t) for t in tasks2[:2]])
        with pytest.raises(RuntimeError, match="closed"):
            engine.shard_batch([ShardingRequest(t) for t in tasks2[:2]])

    def test_override_max_workers_does_not_touch_executor(
        self, cluster2, tiny_bundle, tasks2
    ):
        engine = ShardingEngine(cluster2, tiny_bundle, max_workers=4)
        engine.shard_batch(
            [ShardingRequest(t) for t in tasks2[:3]], max_workers=2
        )
        assert engine._executor is None
        engine.close()
