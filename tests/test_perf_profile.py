"""Tests for repro.perf and profile plumbing through the stack.

Covers the :class:`~repro.perf.SearchProfile` primitive, the
:class:`~repro.core.sharder.NeuroShard` ``profile=True`` wiring, and the
engine/schema surfacing (``ShardingResponse.profile``, request option
``{"profile": True}``).
"""

import json
import time

import pytest

from repro.api import ShardingEngine, ShardingRequest, ShardingResponse
from repro.config import SearchConfig
from repro.core import NeuroShard
from repro.perf import SearchProfile, maybe_stage

FAST_SEARCH = SearchConfig(top_n=3, beam_width=2, max_steps=3, grid_points=4)


class TestSearchProfile:
    def test_counts_accumulate(self):
        p = SearchProfile()
        p.count("evals")
        p.count("evals", 4)
        assert p.counters == {"evals": 5}

    def test_stage_times_accumulate(self):
        p = SearchProfile()
        with p.stage("work"):
            time.sleep(0.002)
        with p.stage("work"):
            pass
        assert p.timers_s["work"] > 0.0
        assert set(p.timers_s) == {"work"}

    def test_merge_profile_and_dict(self):
        a, b = SearchProfile(), SearchProfile()
        a.count("x", 2)
        a.add_time("t", 0.5)
        b.count("x", 3)
        b.count("y")
        b.add_time("t", 0.25)
        a.merge(b)
        a.merge({"counters": {"x": 1}, "timers_s": {"u": 1.0}})
        assert a.counters == {"x": 6, "y": 1}
        assert a.timers_s == {"t": 0.75, "u": 1.0}

    def test_round_trip(self):
        p = SearchProfile()
        p.count("n", 7)
        p.add_time("s", 0.125)
        clone = SearchProfile.from_dict(json.loads(json.dumps(p.to_dict())))
        assert clone.counters == p.counters
        assert clone.timers_s == p.timers_s

    def test_format_lines(self):
        p = SearchProfile()
        assert p.format_lines() == ["(empty profile)"]
        p.count("evals", 3)
        p.add_time("evaluate", 0.5)
        text = "\n".join(p.format_lines())
        assert "evals" in text and "evaluate" in text

    def test_maybe_stage_without_profile(self):
        with maybe_stage(None, "anything"):
            pass  # must be a free no-op

    def test_maybe_stage_with_profile(self):
        p = SearchProfile()
        with maybe_stage(p, "s"):
            pass
        assert "s" in p.timers_s


class TestNeuroShardProfile:
    def test_profile_attached_when_enabled(self, tiny_bundle, tasks2):
        sharder = NeuroShard(tiny_bundle, search=FAST_SEARCH, profile=True)
        result = sharder.shard(tasks2[0])
        assert result.feasible
        profile = result.profile
        assert profile is not None
        counters = profile["counters"]
        assert counters["evaluations"] == result.evaluations
        assert counters["unique_evaluations"] >= 1
        assert counters["cache_lookups"] >= counters["cache_hits"]
        assert profile["timers_s"]["search_total"] > 0.0
        assert profile["timers_s"]["evaluate"] > 0.0
        # The profile is JSON-ready as-is.
        json.dumps(profile)

    def test_profile_off_by_default(self, tiny_bundle, tasks2):
        sharder = NeuroShard(tiny_bundle, search=FAST_SEARCH)
        assert sharder.shard(tasks2[0]).profile is None

    def test_profiled_result_identical(self, tiny_bundle, tasks2):
        """Instrumentation must not change the search outcome."""
        plain = NeuroShard(tiny_bundle, search=FAST_SEARCH).shard(tasks2[0])
        profiled = NeuroShard(
            tiny_bundle, search=FAST_SEARCH, profile=True
        ).shard(tasks2[0])
        assert profiled.simulated_cost_ms == plain.simulated_cost_ms
        assert profiled.plan == plain.plan
        assert profiled.evaluations == plain.evaluations


class TestEngineProfile:
    @pytest.fixture(scope="class")
    def engine(self, cluster2, tiny_bundle):
        return ShardingEngine(cluster2, tiny_bundle)

    def test_request_option_enables_profile(self, engine, tasks2):
        response = engine.shard(
            ShardingRequest(tasks2[0], options={"profile": True})
        )
        assert response.feasible
        assert response.profile is not None
        assert response.profile["counters"]["evaluations"] > 0

    def test_profile_absent_by_default(self, engine, tasks2):
        response = engine.shard(ShardingRequest(tasks2[0]))
        assert response.profile is None

    def test_schema_round_trip_and_deterministic_view(self, engine, tasks2):
        response = engine.shard(
            ShardingRequest(tasks2[0], options={"profile": True})
        )
        restored = ShardingResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert restored.profile == response.to_dict()["profile"]
        # Stage timers are wall-clock: the deterministic view drops them.
        assert "profile" not in response.deterministic_dict()
