"""Property-based tamper detection over the provenance chain.

Hypothesis drives arbitrary byte flips, record deletions, reorderings,
and applied-stack truncations against a real lifecycle store and asserts
the offline auditor either detects the tamper or the mutation was
semantically null (the canonical payload did not change — e.g. a flip
inside JSON whitespace).
"""

import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import PlanStore, ShardingEngine, ShardingService
from repro.data.table import TableConfig
from repro.provenance import audit_deployment, canonical_bytes

TABLES = tuple(
    TableConfig(
        table_id=i, hash_size=2000, dim=16, pooling_factor=4.0,
        zipf_alpha=0.8,
    )
    for i in range(4)
)

PROPERTY_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory, cluster2):
    """A 5-version store built once; every example works on a copy."""
    root = tmp_path_factory.mktemp("props") / "deps"
    store = PlanStore(root)
    service = ShardingService(store)
    service.create_deployment("prod", ShardingEngine(cluster2), tables=TABLES)
    service.plan("prod")
    service.apply("prod")
    for _ in range(4):
        service.plan("prod")
    service.apply("prod", version=2)
    return root


def _copy(pristine):
    tmp = Path(tempfile.mkdtemp(prefix="prov-prop-"))
    shutil.copytree(pristine, tmp / "deps")
    return tmp, PlanStore(tmp / "deps")


def _record_path(store, version):
    return store.root / "prod" / "plans" / f"v{version}.json"


def _canonical(path):
    """Canonical bytes of the parsed payload, or ``None`` if unparsable."""
    try:
        return canonical_bytes(json.loads(path.read_bytes()))
    except (ValueError, TypeError):
        return None


class TestByteFlip:
    @PROPERTY_SETTINGS
    @given(
        version=st.integers(min_value=1, max_value=5),
        offset=st.integers(min_value=0),
        delta=st.integers(min_value=1, max_value=255),
    )
    def test_any_single_byte_flip_is_detected(
        self, pristine, version, offset, delta
    ):
        tmp, store = _copy(pristine)
        try:
            path = _record_path(store, version)
            raw = bytearray(path.read_bytes())
            index = offset % len(raw)
            before = _canonical(path)
            raw[index] = (raw[index] + delta) % 256
            path.write_bytes(bytes(raw))
            report = audit_deployment(store, "prod")
            if _canonical(path) == before:
                # Semantically null flip (whitespace / formatting only).
                assert report.ok
            else:
                assert not report.ok
                assert report.first_broken_version == version
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


class TestStructuralTampers:
    @PROPERTY_SETTINGS
    @given(version=st.integers(min_value=1, max_value=4))
    def test_any_nontail_deletion_is_blamed_at_the_deleted_version(
        self, pristine, version
    ):
        """Deleting any record with a successor is detected.  Deleting
        the *tail* record is out of scope by construction: nothing links
        to it yet, and the state stamp anchors the applied-stack top —
        a hash chain cannot prove its own length without an external
        head pointer."""
        tmp, store = _copy(pristine)
        try:
            _record_path(store, version).unlink()
            report = audit_deployment(store, "prod")
            assert not report.ok
            assert report.first_broken_version == version
            assert "chain/missing-record" in report.error_codes
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_deleting_an_applied_record_is_detected_even_at_the_tail(
        self, pristine
    ):
        """The applied stack IS an external anchor: removing the record
        its top points at breaks the state stamp's anchor digest."""
        tmp, store = _copy(pristine)
        try:
            for version in (3, 4, 5):  # leave only the applied records
                _record_path(store, version).unlink()
            _record_path(store, 2).unlink()  # applied-stack top
            report = audit_deployment(store, "prod")
            assert not report.ok
            assert "chain/missing-record" in report.error_codes
            assert report.first_broken_version == 2
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    @PROPERTY_SETTINGS
    @given(perm=st.permutations(list(range(1, 6))))
    def test_any_nontrivial_reordering_is_detected(self, pristine, perm):
        tmp, store = _copy(pristine)
        try:
            contents = {
                v: _record_path(store, v).read_bytes() for v in range(1, 6)
            }
            for target, source in zip(range(1, 6), perm):
                _record_path(store, target).write_bytes(contents[source])
            report = audit_deployment(store, "prod")
            if perm == [1, 2, 3, 4, 5]:
                assert report.ok
            else:
                assert not report.ok
                first_moved = next(
                    t for t, s in zip(range(1, 6), perm) if t != s
                )
                assert report.first_broken_version == first_moved
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    @PROPERTY_SETTINGS
    @given(keep=st.integers(min_value=0, max_value=1))
    def test_any_stack_truncation_is_detected(self, pristine, keep):
        tmp, store = _copy(pristine)
        try:
            state_path = store.root / "prod" / "state.json"
            state = json.loads(state_path.read_text())
            assert len(state["applied_stack"]) == 2
            state["applied_stack"] = state["applied_stack"][:keep]
            state_path.write_text(json.dumps(state, indent=2))
            report = audit_deployment(store, "prod")
            assert not report.ok
            assert "chain/state-mismatch" in report.error_codes
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


class TestDeterminism:
    @PROPERTY_SETTINGS
    @given(
        version=st.integers(min_value=1, max_value=5),
        offset=st.integers(min_value=0),
    )
    def test_audit_of_a_tampered_store_is_byte_deterministic(
        self, pristine, version, offset
    ):
        tmp, store = _copy(pristine)
        try:
            path = _record_path(store, version)
            raw = bytearray(path.read_bytes())
            raw[offset % len(raw)] ^= 0xFF
            path.write_bytes(bytes(raw))
            first = json.dumps(audit_deployment(store, "prod").to_dict())
            second = json.dumps(audit_deployment(store, "prod").to_dict())
            assert first == second
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
