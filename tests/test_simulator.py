"""Tests for the discrete-event cluster simulator (repro.simulator).

Unit coverage of the event kernel, the machine processes, the
trace→event adapter, the policy registry/behaviours and the report
arithmetic, plus end-to-end `simulate_policy` runs on the session
bundle.  The metamorphic/equivalence laws live in
``test_simulator_properties.py``.
"""

import dataclasses
import json

import pytest

from repro.api import ReshardConfig, ShardingEngine, WorkloadDelta
from repro.costmodel.drift import DriftReport
from repro.data.table import TableConfig
from repro.scenarios import make_trace
from repro.simulator import (
    DEGRADE_END,
    DEGRADE_START,
    DEVICE_DOWN,
    DEVICE_UP,
    MEMORY,
    POLICY_TICK,
    TRAFFIC,
    WORKLOAD_DELTA,
    CostSegment,
    Event,
    EventClock,
    FleetProcess,
    FleetSpec,
    OnlinePolicy,
    PolicyObservation,
    ReshardDecision,
    SimulationConfig,
    SimulationReport,
    UnknownPolicyError,
    available_policies,
    format_policy_matrix,
    format_simulation_report,
    iter_policies,
    make_policy,
    merge_deltas,
    policy_info,
    simulate_policy,
    time_weighted_mean,
    time_weighted_quantile,
    trace_to_events,
)
from repro.simulator.policies import _REGISTRY, register_policy


def _table(table_id, pooling=4.0, hash_size=2000, dim=16):
    return TableConfig(
        table_id=table_id, hash_size=hash_size, dim=dim,
        pooling_factor=pooling, zipf_alpha=0.8,
    )


class TestEventClock:
    def test_pops_time_ascending(self):
        clock = EventClock()
        clock.push(Event(3.0, POLICY_TICK))
        clock.push(Event(1.0, POLICY_TICK))
        clock.push(Event(2.0, POLICY_TICK))
        assert [clock.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]
        assert clock.empty

    def test_same_timestamp_pops_in_push_order(self):
        clock = EventClock()
        clock.push(Event(1.0, MEMORY, 0.5))
        clock.push(Event(1.0, WORKLOAD_DELTA, "delta"))
        clock.push(Event(1.0, TRAFFIC, 2.0))
        kinds = [clock.pop().kind for _ in range(3)]
        assert kinds == [MEMORY, WORKLOAD_DELTA, TRAFFIC]

    def test_now_only_moves_forward(self):
        clock = EventClock()
        clock.push(Event(2.0, POLICY_TICK))
        clock.pop()
        assert clock.now == 2.0
        with pytest.raises(ValueError, match="behind the clock"):
            clock.push(Event(1.0, POLICY_TICK))
        clock.push(Event(2.0, POLICY_TICK))  # at now is fine

    def test_pop_simultaneous_batches_one_timestamp(self):
        clock = EventClock()
        clock.extend([
            Event(1.0, MEMORY, 0.5),
            Event(1.0, TRAFFIC, 2.0),
            Event(2.0, POLICY_TICK),
        ])
        batch = clock.pop_simultaneous()
        assert [e.kind for e in batch] == [MEMORY, TRAFFIC]
        assert clock.now == 1.0
        assert len(clock) == 1

    def test_empty_clock_raises(self):
        clock = EventClock()
        with pytest.raises(IndexError):
            clock.pop()
        with pytest.raises(IndexError):
            clock.peek_time()

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Event(1.0, "comet-strike")
        with pytest.raises(ValueError, match="finite"):
            Event(float("nan"), POLICY_TICK)
        with pytest.raises(ValueError, match="finite"):
            Event(-1.0, POLICY_TICK)


class TestFleetProcess:
    def test_quiet_fleet_generates_nothing(self):
        process = FleetProcess(FleetSpec(), num_devices=4, seed=0)
        assert process.generate(horizon_hours=100.0) == []

    def test_seed_reproducible(self):
        spec = FleetSpec(mtbf_hours=20.0, straggler_rate_per_hour=0.3,
                         degrade_rate_per_hour=0.05)
        a = FleetProcess(spec, num_devices=4, seed=7).generate(72.0)
        b = FleetProcess(spec, num_devices=4, seed=7).generate(72.0)
        assert a == b
        c = FleetProcess(spec, num_devices=4, seed=8).generate(72.0)
        assert a != c

    def test_down_up_pairs_are_well_formed(self):
        spec = FleetSpec(mtbf_hours=10.0, mttr_hours=0.5)
        events = FleetProcess(spec, num_devices=3, seed=1).generate(200.0)
        assert events, "a 10h MTBF over 200h must produce flaps"
        per_device = {}
        for event in events:
            assert event.kind in (DEVICE_DOWN, DEVICE_UP)
            per_device.setdefault(event.payload, []).append(event)
        for device, stream in per_device.items():
            # Chronological alternation: down, up, down, up, ...
            kinds = [e.kind for e in stream]
            assert kinds[::2] == [DEVICE_DOWN] * len(kinds[::2])
            assert kinds[1::2] == [DEVICE_UP] * len(kinds[1::2])
            times = [e.time for e in stream]
            assert times == sorted(times)

    def test_degrade_episodes_carry_matching_ids(self):
        spec = FleetSpec(straggler_rate_per_hour=0.5,
                         degrade_rate_per_hour=0.2)
        events = FleetProcess(spec, num_devices=2, seed=3).generate(100.0)
        starts = {e.payload[2] for e in events if e.kind == DEGRADE_START}
        ends = {e.payload[1] for e in events if e.kind == DEGRADE_END}
        assert starts and ends <= starts
        for event in events:
            if event.kind == DEGRADE_START:
                device, factor, episode = event.payload
                assert factor > 1.0
                assert str(device) in episode

    def test_light_fleet_scales_with_device_noise(self, cluster2):
        light = FleetSpec.light(cluster2.spec)
        assert not light.quiet
        assert light.straggler_rate_per_hour > 0
        lo, hi = light.straggler_factor_range
        assert 1.0 < lo < hi


class TestTraceAdapter:
    def test_step_becomes_memory_delta_traffic_in_order(self, small_pool):
        trace = make_trace("capacity_crunch", small_pool, seed=3,
                           num_tables=6, num_devices=2)
        events = trace_to_events(trace)
        assert events
        times = [e.time for e in events]
        assert times == sorted(times)
        by_time = {}
        for event in events:
            by_time.setdefault(event.time, []).append(event.kind)
        order = {MEMORY: 0, WORKLOAD_DELTA: 1, TRAFFIC: 2}
        for kinds in by_time.values():
            assert [order[k] for k in kinds] == sorted(order[k] for k in kinds)

    def test_unchanged_traffic_and_memory_emit_nothing(self, small_pool):
        trace = make_trace("table_churn", small_pool, seed=0,
                           num_tables=6, num_devices=2)
        # table_churn keeps traffic and memory flat: only deltas remain.
        events = trace_to_events(trace)
        assert events
        assert {e.kind for e in events} == {WORKLOAD_DELTA}

    def test_rejects_step_at_the_epoch(self, small_pool):
        trace = make_trace("diurnal", small_pool, seed=0,
                           num_tables=6, num_devices=2, steps=5)
        bad = dataclasses.replace(
            trace,
            steps=(dataclasses.replace(trace.steps[0], timestamp=0.0),)
            + trace.steps[1:],
        )
        with pytest.raises(ValueError, match="strictly positive"):
            trace_to_events(bad)


class TestPolicyRegistry:
    def test_all_builtins_registered(self):
        assert set(available_policies()) >= {
            "immediate", "periodic", "drift_threshold", "cost_of_delay",
        }
        assert available_policies() == sorted(available_policies())

    def test_info_and_iter_agree(self):
        names = [info.name for info in iter_policies()]
        assert names == available_policies()
        info = policy_info("periodic")
        assert "interval_hours" in info.defaults
        assert info.description

    def test_make_policy_stamps_name(self):
        policy = make_policy("periodic", interval_hours=2.0)
        assert policy.name == "periodic"
        assert isinstance(policy, OnlinePolicy)

    def test_unknown_policy(self):
        with pytest.raises(UnknownPolicyError, match="nope"):
            make_policy("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("periodic", description="imposter")(lambda: None)
        assert _REGISTRY["periodic"].description != "imposter"

    def test_immediate_rejects_kwargs(self):
        with pytest.raises(TypeError):
            make_policy("immediate", interval_hours=1.0)


def _obs(**overrides):
    base = dict(
        time_hours=1.0, hours_since_reshard=1.0, serving_cost_ms=10.0,
        baseline_cost_ms=10.0, slo_ms=20.0, traffic_multiplier=1.0,
        pending_adds=1, pending_removes=0, pending_updates=0,
        pending_add_mb=10.0, pending_memory_change=False, over_budget=False,
        estimated_migration_ms=5.0, drift=None,
    )
    base.update(overrides)
    return PolicyObservation(**base)


class TestPolicyBehaviour:
    def test_immediate_fires_on_any_pending(self):
        policy = make_policy("immediate")
        policy.reset()
        assert policy.decide(_obs()) is not None
        assert policy.decide(_obs(pending_adds=0, pending_add_mb=0.0)) is None

    def test_periodic_waits_for_the_window(self):
        policy = make_policy("periodic", interval_hours=6.0)
        policy.reset()
        assert policy.decide(_obs(hours_since_reshard=2.0)) is None
        assert policy.decide(_obs(hours_since_reshard=6.0)) is not None

    def test_periodic_fires_early_when_over_budget(self):
        policy = make_policy("periodic", interval_hours=6.0)
        policy.reset()
        reason = policy.decide(_obs(hours_since_reshard=0.5, over_budget=True))
        assert reason is not None and "budget" in reason

    def test_drift_threshold_fires_on_retraining_signal(self):
        policy = make_policy("drift_threshold", threshold_mse=1.0)
        policy.reset()
        assert policy.decide(_obs()) is None
        drifted = _obs(drift=DriftReport(
            probe_mse=2.0, rolling_mse=2.0, needs_retraining=True,
        ))
        assert policy.decide(drifted) is not None

    def test_drift_threshold_fires_on_cost_degradation(self):
        policy = make_policy("drift_threshold", degradation_ratio=1.25)
        policy.reset()
        degraded = _obs(serving_cost_ms=15.0, baseline_cost_ms=10.0)
        assert policy.decide(degraded) is not None

    def test_cost_of_delay_accumulates_regret(self):
        policy = make_policy("cost_of_delay", lam=1.0, backlog_cost_ms=0.0)
        policy.reset()
        # 5 ms over baseline for 1h each tick vs 1.0 x 20ms migration:
        # fires on the 4th observation (regret 20 ms*h >= 20 ms).
        obs = _obs(serving_cost_ms=15.0, estimated_migration_ms=20.0)
        fired = None
        for tick in range(1, 6):
            fired = policy.decide(dataclasses.replace(obs, time_hours=float(tick)))
            if fired:
                break
        assert fired is not None and tick == 4

    def test_cost_of_delay_resets_after_reshard(self):
        policy = make_policy("cost_of_delay", lam=1.0, backlog_cost_ms=0.0)
        policy.reset()
        obs = _obs(serving_cost_ms=40.0, estimated_migration_ms=20.0)
        assert policy.decide(dataclasses.replace(obs, time_hours=1.0))
        policy.notify_reshard(dataclasses.replace(obs, time_hours=1.0))
        assert policy.decide(dataclasses.replace(obs, time_hours=1.5)) is None


class TestMergeDeltas:
    def test_single_delta_passes_through_merge(self):
        delta = WorkloadDelta(add_tables=(_table(9), _table(8)))
        merged = merge_deltas([delta], {0, 1})
        assert set(t.table_id for t in merged.add_tables) == {8, 9}

    def test_add_then_remove_cancels(self):
        merged = merge_deltas(
            [
                WorkloadDelta(add_tables=(_table(9),)),
                WorkloadDelta(remove_table_ids=(9,)),
            ],
            base_ids={0, 1},
        )
        assert merged.is_empty

    def test_remove_then_add_of_a_base_table_is_a_rebuild(self):
        merged = merge_deltas(
            [
                WorkloadDelta(remove_table_ids=(1,)),
                WorkloadDelta(add_tables=(_table(1, pooling=9.0),)),
            ],
            base_ids={0, 1},
        )
        assert merged.remove_table_ids == (1,)
        assert [t.table_id for t in merged.add_tables] == [1]

    def test_stats_update_folds_into_pending_add(self):
        merged = merge_deltas(
            [
                WorkloadDelta(add_tables=(_table(9, pooling=4.0),)),
                WorkloadDelta(update_stats=(_table(9, pooling=7.0),)),
            ],
            base_ids={0},
        )
        assert merged.update_stats == ()
        assert merged.add_tables[0].pooling_factor == 7.0

    def test_stats_last_write_wins_and_drops_on_remove(self):
        merged = merge_deltas(
            [
                WorkloadDelta(update_stats=(_table(0, pooling=5.0),)),
                WorkloadDelta(update_stats=(_table(0, pooling=6.0),)),
                WorkloadDelta(remove_table_ids=(0,),
                              update_stats=(_table(1, pooling=2.0),)),
            ],
            base_ids={0, 1},
        )
        assert merged.remove_table_ids == (0,)
        assert [t.table_id for t in merged.update_stats] == [1]

    def test_newest_drift_wins(self):
        old = DriftReport(probe_mse=1.0, rolling_mse=1.0, needs_retraining=False)
        new = DriftReport(probe_mse=2.0, rolling_mse=2.0, needs_retraining=True)
        merged = merge_deltas(
            [WorkloadDelta(drift=old), WorkloadDelta(drift=new)], set()
        )
        assert merged.drift == new


class TestReportArithmetic:
    def _segment(self, start, hours, cost, violating=False):
        return CostSegment(
            start_hours=start, duration_hours=hours, serving_cost_ms=cost,
            violating=violating, devices_down=0, backlog_tables=0,
        )

    def test_time_weighted_mean(self):
        segments = [self._segment(0, 1.0, 10.0), self._segment(1, 3.0, 20.0)]
        assert time_weighted_mean(segments) == pytest.approx(17.5)

    def test_time_weighted_quantile_is_duration_weighted(self):
        # 9h at 10ms, 1h at 100ms: the median is 10, the p99 is 100.
        segments = [self._segment(0, 9.0, 10.0), self._segment(9, 1.0, 100.0)]
        assert time_weighted_quantile(segments, 0.5) == pytest.approx(10.0)
        assert time_weighted_quantile(segments, 0.99) == pytest.approx(100.0)

    def test_empty_timeline_is_nan(self):
        import math

        assert math.isnan(time_weighted_mean([]))
        assert math.isnan(time_weighted_quantile([], 0.5))

    def test_segment_round_trip(self):
        segment = self._segment(1.5, 2.5, 12.25, violating=True)
        assert CostSegment.from_dict(
            json.loads(json.dumps(segment.to_dict()))
        ) == segment

    def test_reshard_decision_round_trip(self):
        decision = ReshardDecision(
            time_hours=4.0, reason="window (6h)", feasible=True,
            chosen="incremental", num_tables=12, moved_mb=34.5,
            migration_ms=12.0, within_budget=True, cost_before_ms=30.0,
            cost_after_ms=25.0, batched_deltas=3,
        )
        assert ReshardDecision.from_dict(decision.to_dict()) == decision

    def test_wrong_schema_version_rejected(self):
        data = self._segment(0, 1.0, 1.0).to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            CostSegment.from_dict(data)


@pytest.fixture(scope="module")
def sim_engine(cluster2, tiny_bundle):
    return ShardingEngine(cluster2, tiny_bundle)


@pytest.fixture(scope="module")
def churn_trace(small_pool):
    return make_trace("table_churn", small_pool, seed=4,
                      num_tables=8, num_devices=2)


class TestSimulatePolicy:
    def test_segments_tile_the_horizon(self, churn_trace, sim_engine):
        report = simulate_policy(
            churn_trace, sim_engine, make_policy("periodic"),
            config=SimulationConfig(horizon_hours=12.0),
        )
        assert report.segments
        assert report.segments[0].start_hours == 0.0
        total = sum(s.duration_hours for s in report.segments)
        assert total == pytest.approx(report.horizon_hours)
        for earlier, later in zip(report.segments, report.segments[1:]):
            assert later.start_hours == pytest.approx(
                earlier.start_hours + earlier.duration_hours
            )

    def test_periodic_batches_multiple_deltas(self, churn_trace, sim_engine):
        eager = simulate_policy(
            churn_trace, sim_engine, make_policy("immediate"),
        )
        # A window one hour short of the horizon: exactly one maintenance
        # reshard, carrying every accumulated churn delta at once.
        lazy = simulate_policy(
            churn_trace, sim_engine,
            make_policy("periodic",
                        interval_hours=eager.horizon_hours - 1.0),
            config=SimulationConfig(horizon_hours=eager.horizon_hours),
        )
        assert eager.reshard_count > lazy.reshard_count
        assert lazy.reshard_count == 1
        assert lazy.reshards[0].batched_deltas > 1
        # Deferring placement leaves added tables unserved in between.
        assert lazy.backlog_table_hours > eager.backlog_table_hours

    def test_reshards_pass_validation(self, churn_trace, sim_engine):
        report = simulate_policy(
            churn_trace, sim_engine, make_policy("immediate"),
        )
        assert report.reshard_count > 0
        assert report.infeasible_reshards == 0
        # simulate_policy runs the validating service internally; prove
        # the moves it reports clear the validator in a fresh replay too.
        assert all(r.within_budget for r in report.reshards)

    def test_fleet_outage_shows_up_in_downtime(self, churn_trace, sim_engine):
        flaky = SimulationConfig(
            sim_seed=5, horizon_hours=48.0,
            fleet=FleetSpec(mtbf_hours=8.0, mttr_hours=1.0),
        )
        report = simulate_policy(
            churn_trace, sim_engine, make_policy("periodic"), config=flaky,
        )
        assert report.downtime_minutes > 0
        assert any(s.devices_down for s in report.segments)

    def test_report_round_trip_and_formatting(self, churn_trace, sim_engine):
        report = simulate_policy(
            churn_trace, sim_engine,
            make_policy("cost_of_delay"),
            reshard_config=ReshardConfig(migration_budget_ms=500.0),
        )
        restored = SimulationReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert restored == report
        text = format_simulation_report(report)
        assert "cost_of_delay" in text and "table_churn" in text
        matrix = format_policy_matrix([report])
        assert "violation (min)" in matrix

    def test_device_count_mismatch_rejected(self, small_pool, sim_engine):
        trace = make_trace("diurnal", small_pool, seed=0,
                           num_tables=6, num_devices=4, steps=5)
        with pytest.raises(ValueError, match="devices"):
            simulate_policy(trace, sim_engine, make_policy("periodic"))

    def test_policy_tick_probes_drift_monitor(
        self, churn_trace, sim_engine, tiny_bundle, cluster2, small_pool
    ):
        from repro.costmodel.drift import DriftMonitor

        monitor = DriftMonitor(
            tiny_bundle, cluster2, small_pool, threshold_mse=1e6
        )
        probes = []
        original = monitor.probe

        def spy(*args, **kwargs):
            report = original(*args, **kwargs)
            probes.append(report)
            return report

        monitor.probe = spy
        simulate_policy(
            churn_trace, sim_engine, make_policy("drift_threshold"),
            config=SimulationConfig(
                horizon_hours=4.0, drift_monitor=monitor,
                drift_probe_samples=4, drift_probe_max_tables=4,
            ),
        )
        assert len(probes) == 4  # one per policy tick
        assert [p.step_index for p in probes] == [1, 2, 3, 4]
        assert [p.timestamp for p in probes] == [1.0, 2.0, 3.0, 4.0]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="tick_hours"):
            SimulationConfig(tick_hours=0.0)
        with pytest.raises(ValueError, match="slo_factor"):
            SimulationConfig(slo_factor=1.0)
        with pytest.raises(ValueError, match="down_penalty"):
            SimulationConfig(down_penalty=0.5)
