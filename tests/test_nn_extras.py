"""Tests for the nn additions: Tanh, Dropout, LayerNorm, Huber, clipping.

Every layer's hand-written backward pass is checked against central
finite differences — the library-wide correctness standard.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Dropout,
    HuberLoss,
    LayerNorm,
    Linear,
    MSELoss,
    Parameter,
    Sequential,
    Tanh,
    clip_grad_norm,
)


def numerical_input_grad(module, x, grad_out, eps=1e-6):
    """Central-difference gradient of sum(forward(x) * grad_out) w.r.t x."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        xp = x.copy()
        xm = x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        fp = float((module.forward(xp) * grad_out).sum())
        fm = float((module.forward(xm) * grad_out).sum())
        grad[idx] = (fp - fm) / (2 * eps)
    return grad


class TestTanh:
    def test_forward_matches_numpy(self, rng):
        x = rng.normal(size=(4, 3))
        assert np.allclose(Tanh().forward(x), np.tanh(x))

    def test_backward_matches_finite_differences(self, rng):
        x = rng.normal(size=(3, 4))
        grad_out = rng.normal(size=(3, 4))
        layer = Tanh()
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numerical_input_grad(Tanh(), x, grad_out)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Tanh().backward(np.ones((1, 1)))


class TestDropout:
    def test_p_validation(self):
        with pytest.raises(ValueError):
            Dropout(p=-0.1)
        with pytest.raises(ValueError):
            Dropout(p=1.0)

    def test_eval_mode_is_identity(self, rng):
        x = rng.normal(size=(8, 5))
        layer = Dropout(p=0.5)
        layer.eval()
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_p_zero_is_identity_in_training(self, rng):
        x = rng.normal(size=(8, 5))
        np.testing.assert_array_equal(Dropout(p=0.0).forward(x), x)

    def test_training_mode_zeroes_and_rescales(self):
        x = np.ones((2000, 10))
        layer = Dropout(p=0.3, rng=np.random.default_rng(1))
        y = layer.forward(x)
        zero_frac = float(np.mean(y == 0.0))
        assert 0.25 < zero_frac < 0.35  # ~p of activations dropped
        # Inverted scaling keeps the expectation at 1.
        assert abs(float(y.mean()) - 1.0) < 0.03
        survivors = y[y != 0]
        np.testing.assert_allclose(survivors, 1.0 / 0.7)

    def test_backward_uses_same_mask(self, rng):
        x = rng.normal(size=(6, 4))
        layer = Dropout(p=0.5, rng=np.random.default_rng(3))
        y = layer.forward(x)
        grad = layer.backward(np.ones_like(y))
        # Gradient is zero exactly where the forward dropped.
        np.testing.assert_array_equal(grad == 0.0, y == 0.0)

    def test_deterministic_given_rng(self, rng):
        x = rng.normal(size=(5, 5))
        a = Dropout(p=0.4, rng=np.random.default_rng(9)).forward(x)
        b = Dropout(p=0.4, rng=np.random.default_rng(9)).forward(x)
        np.testing.assert_array_equal(a, b)


class TestLayerNorm:
    def test_validation(self):
        with pytest.raises(ValueError):
            LayerNorm(0)
        with pytest.raises(ValueError):
            LayerNorm(4, eps=0.0)
        with pytest.raises(ValueError, match="expected input"):
            LayerNorm(4).forward(np.ones((2, 5)))

    def test_normalizes_rows(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(6, 16))
        y = LayerNorm(16).forward(x)
        np.testing.assert_allclose(y.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(y.std(axis=1), 1.0, atol=1e-3)

    def test_affine_parameters_trainable(self):
        layer = LayerNorm(8)
        names = [p.name for p in layer.parameters()]
        assert len(names) == 2

    def test_input_backward_matches_finite_differences(self, rng):
        x = rng.normal(size=(3, 6))
        grad_out = rng.normal(size=(3, 6))
        layer = LayerNorm(6)
        layer.gamma.data[:] = rng.normal(size=6)
        layer.beta.data[:] = rng.normal(size=6)
        layer.forward(x)
        analytic = layer.backward(grad_out)

        probe = LayerNorm(6)
        probe.gamma.data[:] = layer.gamma.data
        probe.beta.data[:] = layer.beta.data
        numeric = numerical_input_grad(probe, x, grad_out, eps=1e-6)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_parameter_backward_matches_finite_differences(self, rng):
        x = rng.normal(size=(4, 5))
        grad_out = rng.normal(size=(4, 5))
        layer = LayerNorm(5)
        layer.forward(x)
        layer.backward(grad_out)
        eps = 1e-6
        for param in (layer.gamma, layer.beta):
            numeric = np.zeros_like(param.data)
            for i in range(param.data.size):
                orig = param.data[i]
                param.data[i] = orig + eps
                fp = float((layer.forward(x) * grad_out).sum())
                param.data[i] = orig - eps
                fm = float((layer.forward(x) * grad_out).sum())
                param.data[i] = orig
                numeric[i] = (fp - fm) / (2 * eps)
            np.testing.assert_allclose(param.grad, numeric, atol=1e-5)

    def test_composes_in_sequential(self, rng):
        model = Sequential(
            Linear(4, 8, rng=rng), LayerNorm(8), Tanh(), Linear(8, 1, rng=rng)
        )
        x = rng.normal(size=(10, 4))
        y = model.forward(x)
        model.backward(np.ones_like(y))
        assert all(np.isfinite(p.grad).all() for p in model.parameters())


class TestHuberLoss:
    def test_validation(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)
        with pytest.raises(ValueError, match="shape"):
            HuberLoss().forward(np.ones(3), np.ones(4))

    def test_quadratic_inside_delta_matches_half_mse(self, rng):
        pred = rng.normal(size=20) * 0.1
        target = np.zeros(20)
        huber = HuberLoss(delta=10.0).forward(pred, target)
        half_mse = 0.5 * MSELoss().forward(pred, target)
        assert huber == pytest.approx(half_mse)

    def test_linear_outside_delta(self):
        pred = np.array([100.0])
        target = np.array([0.0])
        loss = HuberLoss(delta=1.0).forward(pred, target)
        assert loss == pytest.approx(1.0 * (100.0 - 0.5))

    def test_gradient_bounded_by_delta(self, rng):
        pred = rng.normal(scale=50.0, size=30)
        target = np.zeros(30)
        loss = HuberLoss(delta=2.0)
        loss.forward(pred, target)
        grad = loss.backward()
        assert np.all(np.abs(grad) <= 2.0 / 30 + 1e-12)

    def test_backward_matches_finite_differences(self, rng):
        pred = rng.normal(scale=3.0, size=12)
        target = rng.normal(size=12)
        loss = HuberLoss(delta=1.5)
        loss.forward(pred, target)
        analytic = loss.backward()
        eps = 1e-7
        numeric = np.zeros_like(pred)
        for i in range(len(pred)):
            pp, pm = pred.copy(), pred.copy()
            pp[i] += eps
            pm[i] -= eps
            numeric[i] = (
                HuberLoss(delta=1.5).forward(pp, target)
                - HuberLoss(delta=1.5).forward(pm, target)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            HuberLoss().backward()


class TestClipGradNorm:
    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.ones(2))], 0.0)
        with pytest.raises(ValueError):
            clip_grad_norm([], 1.0)

    def test_no_op_when_under_norm(self):
        p = Parameter(np.zeros(3))
        p.grad[:] = [0.1, 0.2, 0.2]
        before = p.grad.copy()
        norm = clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_array_equal(p.grad, before)
        assert norm == pytest.approx(0.3)

    def test_scales_to_max_norm(self):
        p1 = Parameter(np.zeros(2))
        p2 = Parameter(np.zeros(2))
        p1.grad[:] = [3.0, 0.0]
        p2.grad[:] = [0.0, 4.0]
        norm = clip_grad_norm([p1, p2], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(np.sum(p1.grad**2) + np.sum(p2.grad**2))
        assert total == pytest.approx(1.0)
        # Direction preserved.
        assert p1.grad[0] == pytest.approx(3.0 / 5.0)

    @given(
        scale=st.floats(min_value=0.01, max_value=100.0),
        max_norm=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_postcondition_norm_never_exceeds_max(self, scale, max_norm):
        rng = np.random.default_rng(0)
        params = [Parameter(np.zeros(4)) for _ in range(3)]
        for p in params:
            p.grad[:] = rng.normal(scale=scale, size=4)
        clip_grad_norm(params, max_norm)
        total = np.sqrt(sum(np.sum(p.grad**2) for p in params))
        assert total <= max_norm * (1 + 1e-9)


class TestComposedTraining:
    """End-to-end: the new layers and losses actually train together."""

    def test_dropout_layernorm_huber_mlp_learns(self, rng):
        from repro.nn import Adam, Dropout, LayerNorm, Linear, ReLU, Sequential

        # Noisy linear ground truth with a few gross outliers.
        n = 400
        x = rng.normal(size=(n, 6))
        w = rng.normal(size=6)
        y = x @ w + 0.05 * rng.normal(size=n)
        outliers = rng.choice(n, size=8, replace=False)
        y[outliers] += rng.normal(scale=50.0, size=8)

        dropout = Dropout(p=0.1, rng=np.random.default_rng(7))
        model = Sequential(
            Linear(6, 32, rng=rng), LayerNorm(32), ReLU(), dropout,
            Linear(32, 1, rng=rng),
        )
        loss_fn = HuberLoss(delta=1.0)
        optimizer = Adam(model.parameters(), lr=3e-3)
        first_loss = None
        for _ in range(300):
            pred = model.forward(x)[:, 0]
            loss = loss_fn.forward(pred, y)
            if first_loss is None:
                first_loss = loss
            optimizer.zero_grad()
            model.backward(loss_fn.backward()[:, None])
            clip_grad_norm(model.parameters(), 10.0)
            optimizer.step()
        dropout.eval()
        final_pred = model.forward(x)[:, 0]
        clean = np.setdiff1d(np.arange(n), outliers)
        rmse = float(np.sqrt(np.mean((final_pred[clean] - y[clean]) ** 2)))
        assert loss < first_loss
        # Robust loss: clean-sample fit is good despite the outliers.
        assert rmse < 1.0
