"""Tests for the production-experiment helpers."""

import pytest

from repro.evaluation.production import _make_production_task


class TestMakeProductionTask:
    def test_shape(self, small_pool):
        task = _make_production_task(
            small_pool,
            num_devices=4,
            num_tables=20,
            memory_bytes=2 * 1024**3,
            seed=0,
        )
        assert task.num_devices == 4
        assert 1 <= task.num_tables <= 20
        # Production tables are large-dimension.
        assert all(t.dim in (64, 128) for t in task.tables)

    def test_respects_aggregate_capacity(self, small_pool):
        memory = 1 * 1024**3
        task = _make_production_task(
            small_pool, num_devices=4, num_tables=30, memory_bytes=memory, seed=1
        )
        assert task.total_size_bytes <= 0.7 * memory * 4

    def test_deterministic(self, small_pool):
        a = _make_production_task(small_pool, 4, 20, 2 * 1024**3, seed=5)
        b = _make_production_task(small_pool, 4, 20, 2 * 1024**3, seed=5)
        assert a == b

    def test_impossible_budget_raises(self, small_pool):
        with pytest.raises(RuntimeError):
            _make_production_task(
                small_pool, num_devices=1, num_tables=5, memory_bytes=1, seed=0
            )
