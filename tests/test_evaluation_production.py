"""Tests for the production-experiment helpers."""

import math

import pytest

from repro.config import SearchConfig
from repro.evaluation.production import (
    _make_production_task,
    run_lifecycle_experiment,
)


class TestMakeProductionTask:
    def test_shape(self, small_pool):
        task = _make_production_task(
            small_pool,
            num_devices=4,
            num_tables=20,
            memory_bytes=2 * 1024**3,
            seed=0,
        )
        assert task.num_devices == 4
        assert 1 <= task.num_tables <= 20
        # Production tables are large-dimension.
        assert all(t.dim in (64, 128) for t in task.tables)

    def test_respects_aggregate_capacity(self, small_pool):
        memory = 1 * 1024**3
        task = _make_production_task(
            small_pool, num_devices=4, num_tables=30, memory_bytes=memory, seed=1
        )
        assert task.total_size_bytes <= 0.7 * memory * 4

    def test_deterministic(self, small_pool):
        a = _make_production_task(small_pool, 4, 20, 2 * 1024**3, seed=5)
        b = _make_production_task(small_pool, 4, 20, 2 * 1024**3, seed=5)
        assert a == b

    def test_impossible_budget_raises(self, small_pool):
        with pytest.raises(RuntimeError):
            _make_production_task(
                small_pool, num_devices=1, num_tables=5, memory_bytes=1, seed=0
            )


class TestLifecycleExperiment:
    BUDGET_MS = 50.0

    @pytest.fixture(scope="class")
    def rows(self, small_pool, tiny_collection, tiny_train):
        return run_lifecycle_experiment(
            small_pool,
            num_devices=2,
            num_tables=12,
            days=3,
            add_per_day=2,
            remove_per_day=1,
            migration_budget_ms=self.BUDGET_MS,
            migration_lambda=0.01,
            collection=tiny_collection,
            train=tiny_train,
            search=SearchConfig(top_n=2, beam_width=2, max_steps=3,
                                grid_points=3),
            seed=3,
        )

    def test_day_sequence_shape(self, rows):
        assert [r.day for r in rows] == [0, 1, 2]
        assert rows[0].chosen == "plan"
        assert rows[0].moved_mb == 0.0
        assert all(r.num_tables >= 1 for r in rows)
        assert all(math.isfinite(r.cost_ms) for r in rows)

    def test_scratch_candidate_reported_each_reshard_day(self, rows):
        for row in rows[1:]:
            assert math.isfinite(row.scratch_cost_ms)
            assert row.chosen in ("incremental", "full")

    def test_cumulative_columns_are_running_sums(self, rows):
        moved = 0.0
        scratch = 0.0
        for row in rows[1:]:
            moved += row.moved_mb
            scratch += row.scratch_moved_mb
            assert row.cumulative_moved_mb == pytest.approx(moved)
            assert row.cumulative_scratch_moved_mb == pytest.approx(scratch)

    def test_migration_budget_binds_every_reshard_day(self, rows):
        # The whole point of the budgeted lifecycle: whatever the
        # from-scratch candidate would migrate, the applied plan's
        # day-over-day migration stays within the operator's budget —
        # and a day where no candidate could fit is flagged, not hidden.
        for row in rows[1:]:
            if row.within_budget:
                assert row.migration_ms <= self.BUDGET_MS + 1e-9
        # For this parameterization the budget is satisfiable every day.
        assert all(row.within_budget for row in rows)

    def test_rejects_bad_days(self, small_pool):
        with pytest.raises(ValueError, match="days"):
            run_lifecycle_experiment(small_pool, days=0)
