"""Fault injection against the provenance chain commit path.

The contract under test: a *crash* at any named write point leaves a
store that audits clean after recovery (atomic writes — nothing torn
lands), while a *torn* write leaves damage the auditor localizes to
exactly the versions the reopening service's recovery notes blame, and
post-recovery planning chains verifiably over the damaged file's raw
bytes instead of wedging the deployment.
"""

import pytest

from repro.api import PlanStore, ShardingEngine, ShardingService
from repro.data.table import TableConfig
from repro.provenance import audit_deployment, audit_store
from repro.validation import CrashPoint, FaultyFS

pytestmark = pytest.mark.chaos

TABLES = tuple(
    TableConfig(
        table_id=i, hash_size=2000, dim=16, pooling_factor=4.0,
        zipf_alpha=0.8,
    )
    for i in range(4)
)


@pytest.fixture()
def light_engine(cluster2):
    """A bundle-less engine (dim_greedy default): plans instantly."""
    return ShardingEngine(cluster2)


def _open(store, engine):
    return ShardingService.open(store, lambda meta: engine)


class TestCrashSweepAuditsClean:
    """Atomic writes: a pure crash never leaves auditable damage."""

    @pytest.mark.parametrize("point", PlanStore.WRITE_POINTS)
    def test_crash_at_every_write_point_audits_clean(
        self, point, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        kind = point.split("#")[0]

        if kind == "meta":
            fs.arm(point)
            with pytest.raises(CrashPoint):
                service.create_deployment("prod", light_engine, tables=TABLES)
            assert audit_store(store) == []
            return

        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        fs.arm(point)
        if kind == "state":
            service.plan("prod")
            with pytest.raises(CrashPoint):
                service.apply("prod", version=2)
        else:  # record: the crash hits v2's record write itself
            with pytest.raises(CrashPoint):
                service.plan("prod")

        _open(store, light_engine)  # recovery must not disturb the chain
        report = audit_deployment(store, "prod")
        assert report.ok, [f.to_dict() for f in report.findings]
        assert report.findings == ()  # no advisories either


class TestTornWritesAreLocalized:
    def test_torn_record_is_localized_to_the_noted_version(
        self, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        fs.arm("record#rename", mode="torn")
        with pytest.raises(CrashPoint):
            service.plan("prod")

        reopened = _open(store, light_engine)
        notes = reopened.recovery_notes["prod"]
        assert any("v2" in n for n in notes)
        report = reopened.audit_deployment("prod")
        assert not report.ok
        assert report.first_broken_version == 2
        assert report.error_codes == ("chain/unreadable-record",)
        # Every error the audit raises is a version the notes blame.
        assert {f.version for f in report.errors} == {2}
        assert "chain/recovery-unconfirmed" not in {
            f.code for f in report.findings
        }

    def test_planning_after_torn_record_chains_over_raw_bytes(
        self, tmp_path, light_engine
    ):
        """Recovery must not wedge the chain: the next record commits to
        the damaged file's raw-byte digest, so the auditor can verify
        every link *except* the torn record itself."""
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        fs.arm("record#rename", mode="torn")
        with pytest.raises(CrashPoint):
            service.plan("prod")

        reopened = _open(store, light_engine)
        replanned = reopened.plan("prod")
        assert replanned.version == 3
        reopened.apply("prod", version=3)
        report = reopened.audit_deployment("prod")
        # Still broken at v2 and only at v2: v3's link and the state
        # anchor both verify against the raw bytes v2 left behind.
        assert {f.version for f in report.errors} == {2}
        assert "chain/broken-link" not in report.error_codes

    def test_torn_state_is_an_unreadable_state_finding(
        self, tmp_path, light_engine
    ):
        fs = FaultyFS()
        store = PlanStore(tmp_path / "deps", fs=fs)
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        fs.arm("state#rename", mode="torn")
        with pytest.raises(CrashPoint):
            service.apply("prod")

        reopened = _open(store, light_engine)
        assert any("state" in n for n in reopened.recovery_notes["prod"])
        report = reopened.audit_deployment("prod")
        assert not report.ok
        assert "chain/state-unreadable" in report.error_codes
        # The note names state damage and the audit confirms it.
        assert "chain/recovery-unconfirmed" not in {
            f.code for f in report.findings
        }

    def test_corrupt_middle_record_of_a_deep_store_is_pinpointed(
        self, tmp_path, light_engine
    ):
        """The acceptance scenario: ≥5 versions, bit rot in the middle;
        the reopening service notes the drop and the audit names exactly
        that version, with the successor's link an advisory (its
        predecessor is already damaged — no cascade)."""
        store = PlanStore(tmp_path / "deps")
        service = ShardingService(store)
        service.create_deployment("prod", light_engine, tables=TABLES)
        service.plan("prod")
        service.apply("prod")
        for _ in range(4):
            service.plan("prod")
        service.apply("prod", version=2)
        path = tmp_path / "deps" / "prod" / "plans" / "v3.json"
        path.write_bytes(path.read_bytes()[:80])

        reopened = _open(store, light_engine)
        assert any(
            "v3" in n for n in reopened.recovery_notes["prod"]
        )
        report = reopened.audit_deployment("prod")
        assert not report.ok
        assert report.first_broken_version == 3
        assert {f.version for f in report.errors} == {3}
        advisory_codes = {f.code for f in report.advisories}
        assert "chain/unverifiable-link" in advisory_codes
        assert "chain/recovery-unconfirmed" not in advisory_codes
