"""Tests for WhatIfResult.edited and multi-source improvement scanning."""

from __future__ import annotations

import pytest

from repro.core.cache import CostCache
from repro.core.simulator import NeuroShardSimulator
from repro.evaluation import (
    best_single_improvement,
    what_if_move,
    what_if_split,
)
from repro.hardware.memory import MemoryModel


@pytest.fixture(scope="module")
def simulator(tiny_bundle):
    return NeuroShardSimulator(tiny_bundle, CostCache())


@pytest.fixture(scope="module")
def placement(small_pool):
    tables = [t.with_dim(32) for t in small_pool.tables[:8]]
    return [tables[:6], tables[6:]]


class TestEditedPlacement:
    def test_move_edited_matches_description(self, placement, simulator):
        result = what_if_move(placement, simulator, 0, 2, 1)
        assert result.edited is not None
        moved = placement[0][2]
        assert moved not in result.edited[0]
        assert moved in result.edited[1]
        total = sum(len(dev) for dev in result.edited)
        assert total == sum(len(dev) for dev in placement)

    def test_move_cost_after_matches_edited(self, placement, simulator):
        result = what_if_move(placement, simulator, 0, 1, 1)
        assert result.cost_after_ms == pytest.approx(
            simulator.plan_cost(result.edited).max_cost_ms
        )

    def test_split_edited_has_one_more_table(self, placement, simulator):
        result = what_if_split(placement, simulator, 0, 0)
        assert result.edited is not None
        assert sum(len(dev) for dev in result.edited) == (
            sum(len(dev) for dev in placement) + 1
        )
        # Dimension is conserved by a column split.
        assert sum(t.dim for dev in result.edited for t in dev) == sum(
            t.dim for dev in placement for t in dev
        )

    def test_infeasible_edit_has_no_placement(self, placement, simulator):
        tiny = MemoryModel(1)
        result = what_if_move(placement, simulator, 0, 0, 1, memory=tiny)
        assert result.edited is None


class TestMultiSourceScan:
    def test_scan_covers_straggler_source(self, simulator, small_pool):
        """A plan whose measured-cost bottleneck is a waiting device must
        still surface edits that unload the max-compute device."""
        tables = [t.with_dim(32) for t in small_pool.tables[:10]]
        lopsided = [tables[:1], tables[1:]]  # device 1 is the straggler
        edits = best_single_improvement(lopsided, simulator, top_k=3)
        assert edits[0].improvement_ms > 0
        # The winning edit must touch the overloaded device 1.
        assert "device 1" in edits[0].description

    def test_applying_best_edit_chain_monotone(self, simulator, small_pool):
        """Greedily applying the analyzer's best edit never increases
        the simulated cost."""
        tables = [t.with_dim(32) for t in small_pool.tables[:9]]
        per_device = [list(tables[:1]), list(tables[1:])]
        cost = simulator.plan_cost(per_device).max_cost_ms
        for _ in range(4):
            edits = best_single_improvement(per_device, simulator, top_k=1)
            if edits[0].improvement_ms <= 0 or edits[0].edited is None:
                break
            per_device = [list(dev) for dev in edits[0].edited]
            new_cost = simulator.plan_cost(per_device).max_cost_ms
            assert new_cost <= cost + 1e-9
            cost = new_cost
