"""Tests for the heterogeneous (mixed CPU-GPU) cluster substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.table import TableConfig
from repro.hardware import (
    DeviceSpec,
    HeteroAllToAllModel,
    HeterogeneousCluster,
    OutOfMemoryError,
    SimulatedCluster,
    cpu_host,
    device_class,
    gpu_2080ti,
    gpu_a100,
)
from repro.config import ClusterConfig

BATCH = 4096


def table(tid=0, hash_size=100_000, dim=32, pooling=8.0, alpha=1.05):
    return TableConfig(
        table_id=tid,
        hash_size=hash_size,
        dim=dim,
        pooling_factor=pooling,
        zipf_alpha=alpha,
    )


@pytest.fixture(scope="module")
def mixed_cluster() -> HeterogeneousCluster:
    return HeterogeneousCluster(
        [gpu_2080ti(), gpu_2080ti(), cpu_host()],
        memory_bytes=[2 * 1024**3, 2 * 1024**3, 32 * 1024**3],
        batch_size=BATCH,
    )


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------


class TestPresets:
    def test_presets_are_valid_specs(self):
        for factory in (gpu_2080ti, gpu_a100, cpu_host):
            spec = factory()
            assert isinstance(spec, DeviceSpec)

    def test_device_class_detection(self):
        assert device_class(gpu_2080ti()) == "gpu"
        assert device_class(gpu_a100()) == "gpu"
        assert device_class(cpu_host()) == "cpu"
        assert device_class(DeviceSpec(name="custom")) == "gpu"

    def test_cpu_has_much_more_memory_than_gpu(self):
        assert cpu_host().memory_bytes > 10 * gpu_2080ti().memory_bytes

    def test_cpu_lookups_slower_than_gpu(self):
        t = table()
        gpu = SimulatedCluster(
            ClusterConfig(num_devices=1, batch_size=BATCH), spec=gpu_2080ti()
        )
        cpu = SimulatedCluster(
            ClusterConfig(num_devices=1, batch_size=BATCH), spec=cpu_host()
        )
        assert cpu.measure_compute([t], noisy=False) > 3 * gpu.measure_compute(
            [t], noisy=False
        )

    def test_a100_faster_than_2080ti(self):
        tabs = [table(i, dim=64) for i in range(5)]
        old = SimulatedCluster(
            ClusterConfig(num_devices=1, batch_size=BATCH), spec=gpu_2080ti()
        )
        new = SimulatedCluster(
            ClusterConfig(num_devices=1, batch_size=BATCH), spec=gpu_a100()
        )
        assert new.measure_compute(tabs, noisy=False) < old.measure_compute(
            tabs, noisy=False
        )

    def test_cpu_fusion_nearly_flat(self):
        # The CPU "fused" op is a loop: fusing many tables barely helps.
        from repro.hardware.kernel import EmbeddingKernelModel

        cpu_kernel = EmbeddingKernelModel(cpu_host())
        gpu_kernel = EmbeddingKernelModel(gpu_2080ti())
        assert cpu_kernel.fusion_speedup(10) < 1.06
        assert gpu_kernel.fusion_speedup(10) > 1.5


# ----------------------------------------------------------------------
# heterogeneous all-to-all
# ----------------------------------------------------------------------


class TestHeteroComm:
    def test_rejects_dim_count_mismatch(self):
        model = HeteroAllToAllModel([gpu_2080ti(), cpu_host()])
        with pytest.raises(ValueError, match="devices"):
            model.measure([100, 100, 100], BATCH)

    def test_single_device_free(self):
        model = HeteroAllToAllModel([gpu_2080ti()])
        meas = model.measure([500], BATCH, noisy=False)
        assert meas.costs_ms == (0.0,)

    def test_slow_link_drags_everyone(self):
        """A CPU behind a slow link raises every GPU's measured cost."""
        dims = [256, 256, 256]
        all_gpu = HeteroAllToAllModel([gpu_2080ti()] * 3)
        with_cpu = HeteroAllToAllModel([gpu_2080ti(), gpu_2080ti(), cpu_host()])
        fast = all_gpu.measure(dims, BATCH, noisy=False)
        slow = with_cpu.measure(dims, BATCH, noisy=False)
        assert slow.max_cost_ms > fast.max_cost_ms
        # The GPUs themselves get slower because the straggler blend is
        # dominated by the CPU's drain time.
        assert slow.costs_ms[0] > fast.costs_ms[0]

    def test_drain_not_dimension_determines_straggler(self):
        """A small shard behind a slow link can out-straggle a large one
        behind a fast link."""
        specs = [gpu_a100(), cpu_host()]
        model = HeteroAllToAllModel(specs)
        # Device 0 (fast link) has 4x the dimension of device 1 (slow link)
        meas = model.measure([400, 100], BATCH, noisy=False)
        drain0 = 400 / gpu_a100().comm_bandwidth_bytes_per_ms
        drain1 = 100 / cpu_host().comm_bandwidth_bytes_per_ms
        assert drain1 > drain0  # the CPU is the true straggler
        assert meas.max_cost_ms > 0

    def test_homogeneous_reduces_to_alltoall(self):
        """With identical specs, hetero and homogeneous models agree."""
        from repro.hardware.comm import AllToAllModel

        spec = gpu_2080ti()
        dims = [300, 200, 100, 250]
        homo = AllToAllModel(spec).measure(dims, BATCH, noisy=False)
        hetero = HeteroAllToAllModel([spec] * 4).measure(dims, BATCH, noisy=False)
        np.testing.assert_allclose(homo.costs_ms, hetero.costs_ms, rtol=1e-12)

    def test_start_skew_creates_waiting(self):
        model = HeteroAllToAllModel([gpu_2080ti()] * 2)
        sync = model.measure([100, 100], BATCH, noisy=False)
        skew = model.measure(
            [100, 100], BATCH, start_times_ms=[0.0, 5.0], noisy=False
        )
        # The early device waits 5 ms for the barrier.
        assert skew.costs_ms[0] == pytest.approx(sync.costs_ms[0] + 5.0)

    def test_backward_slower_than_forward(self):
        model = HeteroAllToAllModel([gpu_2080ti()] * 2)
        fwd = model.measure([200, 200], BATCH, noisy=False)
        bwd = model.measure([200, 200], BATCH, backward=True, noisy=False)
        assert bwd.max_cost_ms > fwd.max_cost_ms

    def test_rejects_negative_inputs(self):
        model = HeteroAllToAllModel([gpu_2080ti()] * 2)
        with pytest.raises(ValueError):
            model.measure([-1, 5], BATCH)
        with pytest.raises(ValueError):
            model.measure([1, 5], 0)
        with pytest.raises(ValueError):
            model.measure([1, 5], BATCH, start_times_ms=[-1.0, 0.0])


# ----------------------------------------------------------------------
# heterogeneous cluster
# ----------------------------------------------------------------------


class TestHeterogeneousCluster:
    def test_shape_properties(self, mixed_cluster):
        assert mixed_cluster.num_devices == 3
        assert mixed_cluster.device_classes == ("gpu", "gpu", "cpu")
        assert mixed_cluster.memory_budgets == (
            2 * 1024**3,
            2 * 1024**3,
            32 * 1024**3,
        )

    def test_default_budgets_from_specs(self):
        cluster = HeterogeneousCluster([gpu_2080ti(), cpu_host()], batch_size=BATCH)
        assert cluster.memory_budgets == (
            gpu_2080ti().memory_bytes,
            cpu_host().memory_bytes,
        )

    def test_scalar_budget_broadcasts(self):
        cluster = HeterogeneousCluster(
            [gpu_2080ti(), cpu_host()], memory_bytes=1024**3, batch_size=BATCH
        )
        assert cluster.memory_budgets == (1024**3, 1024**3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            HeterogeneousCluster([])
        with pytest.raises(ValueError):
            HeterogeneousCluster([gpu_2080ti()], memory_bytes=[1, 2])
        with pytest.raises(ValueError):
            HeterogeneousCluster([gpu_2080ti()], batch_size=0)

    def test_compute_depends_on_device(self, mixed_cluster):
        t = table()
        gpu_cost = mixed_cluster.measure_compute(0, [t], noisy=False)
        cpu_cost = mixed_cluster.measure_compute(2, [t], noisy=False)
        assert cpu_cost > gpu_cost

    def test_compute_rejects_bad_device(self, mixed_cluster):
        with pytest.raises(ValueError, match="out of range"):
            mixed_cluster.measure_compute(3, [table()])

    def test_per_device_memory(self, mixed_cluster):
        # ~24 GB of table fits the CPU but not a GPU.
        big = table(hash_size=50_000_000, dim=128)
        assert not mixed_cluster.device_fits(0, [big])
        assert mixed_cluster.device_fits(2, [big])

    def test_plan_fits_uses_per_device_budgets(self, mixed_cluster):
        big = table(hash_size=50_000_000, dim=128)
        small = table(1)
        assert mixed_cluster.plan_fits([[small], [small], [big]])
        assert not mixed_cluster.plan_fits([[big], [small], [small]])

    def test_check_placement_names_device(self, mixed_cluster):
        big = table(hash_size=50_000_000, dim=128)
        with pytest.raises(OutOfMemoryError, match="device 0"):
            mixed_cluster.check_placement([[big], [], []])

    def test_evaluate_plan_shapes(self, mixed_cluster):
        tabs = [table(i) for i in range(6)]
        execution = mixed_cluster.evaluate_plan([tabs[:3], tabs[3:5], tabs[5:]])
        assert execution.num_devices == 3
        assert execution.iteration_ms > 0
        assert execution.throughput_samples_per_s > 0
        assert all(c > 0 for c in execution.device_costs_ms)

    def test_evaluate_plan_oom(self, mixed_cluster):
        big = table(hash_size=50_000_000, dim=128)
        with pytest.raises(OutOfMemoryError):
            mixed_cluster.evaluate_plan([[big], [], []])

    def test_offloading_cold_table_to_cpu_beats_oversubscribed_gpu(self):
        """The mixed scenario's raison d'etre: a huge cold table that no
        GPU can hold evaluates fine once placed on the CPU."""
        cluster = HeterogeneousCluster(
            [gpu_2080ti(), gpu_2080ti(), cpu_host()],
            memory_bytes=[1024**3, 1024**3, 64 * 1024**3],
            batch_size=BATCH,
        )
        huge_cold = table(9, hash_size=80_000_000, dim=16, pooling=1.0, alpha=1.3)
        hot = [table(i, hash_size=200_000, dim=64) for i in range(4)]
        execution = cluster.evaluate_plan([hot[:2], hot[2:], [huge_cold]])
        assert execution.iteration_ms > 0
        # No pure-GPU placement of the huge table is legal at all.
        assert not cluster.plan_fits([[huge_cold], hot[:2], hot[2:]])

    def test_deterministic_across_instances(self):
        tabs = [table(i) for i in range(4)]
        placement = [tabs[:2], tabs[2:], []]
        a = HeterogeneousCluster(
            [gpu_2080ti(), gpu_2080ti(), cpu_host()], batch_size=BATCH
        ).evaluate_plan(placement)
        b = HeterogeneousCluster(
            [gpu_2080ti(), gpu_2080ti(), cpu_host()], batch_size=BATCH
        ).evaluate_plan(placement)
        assert a.device_costs_ms == b.device_costs_ms

    def test_noise_seed_changes_measurements(self):
        tabs = [table(i) for i in range(4)]
        placement = [tabs[:2], tabs[2:]]
        a = HeterogeneousCluster(
            [gpu_2080ti(), gpu_2080ti()], batch_size=BATCH, noise_seed=0
        ).evaluate_plan(placement)
        b = HeterogeneousCluster(
            [gpu_2080ti(), gpu_2080ti()], batch_size=BATCH, noise_seed=1
        ).evaluate_plan(placement)
        assert a.device_costs_ms != b.device_costs_ms

    def test_matches_homogeneous_cluster_semantics(self):
        """An all-identical hetero cluster gives the same steady-state
        costs as SimulatedCluster (same kernel, comm and timeline)."""
        spec = gpu_2080ti()
        tabs = [table(i) for i in range(6)]
        placement = [tabs[:3], tabs[3:]]
        homo = SimulatedCluster(
            ClusterConfig(
                num_devices=2, memory_bytes=2 * 1024**3, batch_size=BATCH
            ),
            spec=spec,
        ).evaluate_plan(placement)
        hetero = HeterogeneousCluster(
            [spec, spec], memory_bytes=2 * 1024**3, batch_size=BATCH
        ).evaluate_plan(placement)
        np.testing.assert_allclose(
            homo.compute_costs_ms, hetero.compute_costs_ms, rtol=1e-9
        )
        # Comm noise keys differ (hetero uses its own tag) but the
        # noise-free magnitudes must be close.
        np.testing.assert_allclose(
            homo.fwd_comm_costs_ms, hetero.fwd_comm_costs_ms, rtol=0.1
        )
