"""Tests for repro.plotting (ASCII charts)."""

import math

import pytest

from repro.plotting import ascii_lines, ascii_scatter


class TestScatter:
    def test_basic_render(self):
        chart = ascii_scatter([1, 2, 3], [1, 4, 9], title="squares")
        assert chart.startswith("squares")
        assert chart.count("o") == 3
        assert "[1.00 .. 3.00]" in chart

    def test_marker_positions_monotone(self):
        chart = ascii_scatter([0, 10], [0, 10], width=10, height=5)
        rows = [l for l in chart.splitlines() if l.startswith("|")]
        # Low point bottom-left, high point top-right.
        assert rows[0].index("o") > rows[-1].index("o")

    def test_non_finite_points_dropped(self):
        chart = ascii_scatter([1, 2, math.nan], [1, 2, 3])
        assert chart.count("o") == 2

    def test_constant_axis_handled(self):
        chart = ascii_scatter([1, 2, 3], [5, 5, 5])
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])
        with pytest.raises(ValueError):
            ascii_scatter([], [])
        with pytest.raises(ValueError):
            ascii_scatter([1], [1], width=2)
        with pytest.raises(ValueError):
            ascii_scatter([math.nan], [1.0])


class TestLines:
    def test_two_series_with_legend(self):
        chart = ascii_lines(
            [0, 1, 2, 3],
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            x_label="step",
            y_label="cost",
        )
        assert "legend: o=up  x=down" in chart
        assert "o" in chart and "x" in chart
        assert "step" in chart and "cost" in chart

    def test_interpolation_fills_columns(self):
        chart = ascii_lines([0, 10], {"line": [0, 10]}, width=20, height=10)
        body = [l for l in chart.splitlines() if l.startswith("|")]
        assert sum(row.count("o") for row in body) >= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_lines([1, 2], {})
        with pytest.raises(ValueError):
            ascii_lines([1, 2], {"a": [1]})
        with pytest.raises(ValueError):
            ascii_lines([1], {"a": [1]})
        with pytest.raises(ValueError):
            ascii_lines(
                [1, 2],
                {str(i): [1, 2] for i in range(9)},  # more than 8 series
            )
