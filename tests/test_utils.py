"""Tests for repro.utils (stable hashing / deterministic noise)."""

from repro.utils import (
    deterministic_normal,
    deterministic_uniform,
    stable_hash64,
)


class TestStableHash:
    def test_same_inputs_same_hash(self):
        assert stable_hash64("a", 1, (2, 3)) == stable_hash64("a", 1, (2, 3))

    def test_different_inputs_differ(self):
        assert stable_hash64("a") != stable_hash64("b")

    def test_order_matters(self):
        assert stable_hash64("a", "b") != stable_hash64("b", "a")

    def test_part_boundaries_are_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_hash64("ab", "c") != stable_hash64("a", "bc")

    def test_returns_64_bit_unsigned(self):
        h = stable_hash64("x")
        assert 0 <= h < 2**64


class TestDeterministicDraws:
    def test_normal_is_pure_function(self):
        assert deterministic_normal("k", 1) == deterministic_normal("k", 1)

    def test_normal_varies_with_key(self):
        draws = {deterministic_normal("k", i) for i in range(16)}
        assert len(draws) == 16

    def test_normal_is_roughly_standard(self):
        draws = [deterministic_normal("stat", i) for i in range(500)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert abs(mean) < 0.15
        assert 0.7 < var < 1.3

    def test_uniform_in_range(self):
        draws = [deterministic_uniform("u", i) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert deterministic_uniform("u", 3) == deterministic_uniform("u", 3)
