"""Tests for repro.costmodel.features."""

import numpy as np
import pytest

from repro.costmodel import TableFeaturizer
from repro.data import synthesize_table_pool


@pytest.fixture(scope="module")
def tables():
    return synthesize_table_pool(num_tables=20, seed=8)


@pytest.fixture()
def featurizer() -> TableFeaturizer:
    return TableFeaturizer(batch_size=65536)


class TestFeaturizer:
    def test_vector_width(self, featurizer, tables):
        vec = featurizer.features(tables[0])
        assert vec.shape == (featurizer.num_features,)

    def test_all_finite(self, featurizer, tables):
        for t in tables:
            assert np.all(np.isfinite(featurizer.features(t)))

    def test_matrix_stacking(self, featurizer, tables):
        mat = featurizer.features_matrix(tables[:5])
        assert mat.shape == (5, featurizer.num_features)
        assert np.allclose(mat[2], featurizer.features(tables[2]))

    def test_empty_matrix(self, featurizer):
        mat = featurizer.features_matrix([])
        assert mat.shape == (0, featurizer.num_features)

    def test_dim_affects_features(self, featurizer, tables):
        t = tables[0]
        a = featurizer.features(t.with_dim(8))
        b = featurizer.features(t.with_dim(128))
        assert not np.allclose(a, b)

    def test_cache_returns_same_vector(self, featurizer, tables):
        a = featurizer.features(tables[0])
        b = featurizer.features(tables[0])
        assert a is b  # cached object identity

    def test_clear_cache(self, featurizer, tables):
        a = featurizer.features(tables[0])
        featurizer.clear_cache()
        b = featurizer.features(tables[0])
        assert a is not b
        assert np.allclose(a, b)

    def test_batch_size_changes_features(self, tables):
        small = TableFeaturizer(batch_size=1024).features(tables[0])
        large = TableFeaturizer(batch_size=65536).features(tables[0])
        assert not np.allclose(small, large)

    def test_constant_count_feature_is_last(self, featurizer, tables):
        vec = featurizer.features(tables[0])
        assert vec[-1] == 1.0

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            TableFeaturizer(batch_size=0)

    def test_features_scale_reasonably(self, featurizer, tables):
        """Features should stay O(10) so the MLP needs no normalizer."""
        mats = featurizer.features_matrix(tables)
        assert np.abs(mats).max() < 50


class TestCacheCoherence:
    """Interned features vs in-place table mutation.

    ``bytes_per_element`` feeds ``size_bytes`` (feature 9) but is absent
    from the ``uid`` the bank interns by — the one way a table can change
    cost behaviour under a reused uid.  ``clear_cache()`` is the
    invalidation contract: it must drop the preallocated bank itself, so
    row ids issued before the mutation fail loudly instead of silently
    resolving against stale (or re-interned) rows.
    """

    def test_mid_search_mutation_never_serves_stale_features(self, tables):
        featurizer = TableFeaturizer(batch_size=65536)
        victim = tables[0]
        # A search in flight: row ids handed out, matrices materialized.
        stale_ids = featurizer.row_indices(tables[:6])
        before = featurizer.features_matrix(tables[:6]).copy()
        old_bank = featurizer.bank

        # The table changes under the same uid mid-search.
        object.__setattr__(victim, "bytes_per_element", 8)
        try:
            featurizer.clear_cache()
            # The bank is replaced, not merely re-keyed: stale ids must
            # not alias rows of any buffer, old or new.
            assert featurizer.bank is not old_bank
            assert featurizer.num_interned == 0
            with pytest.raises(IndexError, match="stale feature row id"):
                featurizer.gather(stale_ids)

            fresh = featurizer.features_matrix(tables[:6])
            # The mutated table featurizes differently despite the
            # unchanged uid — the gap clear_cache() exists to close.
            assert not np.allclose(fresh[0], before[0])
            # Untouched tables re-featurize bit-identically.
            assert np.array_equal(fresh[1:], before[1:])
            # Re-issued ids are live again and serve the fresh rows.
            assert np.array_equal(
                featurizer.gather(featurizer.row_indices(tables[:6])), fresh
            )
        finally:
            object.__setattr__(victim, "bytes_per_element", 4)

    def test_stale_ids_fail_even_after_partial_reintern(self, tables):
        """Re-interning fewer tables than before must still reject the
        out-of-range tail of a stale id list."""
        featurizer = TableFeaturizer(batch_size=65536)
        stale_ids = featurizer.row_indices(tables[:6])
        featurizer.clear_cache()
        featurizer.row_indices(tables[:3])  # new epoch, 3 live rows
        with pytest.raises(IndexError, match="stale feature row id"):
            featurizer.gather(stale_ids)
