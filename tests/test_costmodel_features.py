"""Tests for repro.costmodel.features."""

import numpy as np
import pytest

from repro.costmodel import TableFeaturizer
from repro.data import synthesize_table_pool


@pytest.fixture(scope="module")
def tables():
    return synthesize_table_pool(num_tables=20, seed=8)


@pytest.fixture()
def featurizer() -> TableFeaturizer:
    return TableFeaturizer(batch_size=65536)


class TestFeaturizer:
    def test_vector_width(self, featurizer, tables):
        vec = featurizer.features(tables[0])
        assert vec.shape == (featurizer.num_features,)

    def test_all_finite(self, featurizer, tables):
        for t in tables:
            assert np.all(np.isfinite(featurizer.features(t)))

    def test_matrix_stacking(self, featurizer, tables):
        mat = featurizer.features_matrix(tables[:5])
        assert mat.shape == (5, featurizer.num_features)
        assert np.allclose(mat[2], featurizer.features(tables[2]))

    def test_empty_matrix(self, featurizer):
        mat = featurizer.features_matrix([])
        assert mat.shape == (0, featurizer.num_features)

    def test_dim_affects_features(self, featurizer, tables):
        t = tables[0]
        a = featurizer.features(t.with_dim(8))
        b = featurizer.features(t.with_dim(128))
        assert not np.allclose(a, b)

    def test_cache_returns_same_vector(self, featurizer, tables):
        a = featurizer.features(tables[0])
        b = featurizer.features(tables[0])
        assert a is b  # cached object identity

    def test_clear_cache(self, featurizer, tables):
        a = featurizer.features(tables[0])
        featurizer.clear_cache()
        b = featurizer.features(tables[0])
        assert a is not b
        assert np.allclose(a, b)

    def test_batch_size_changes_features(self, tables):
        small = TableFeaturizer(batch_size=1024).features(tables[0])
        large = TableFeaturizer(batch_size=65536).features(tables[0])
        assert not np.allclose(small, large)

    def test_constant_count_feature_is_last(self, featurizer, tables):
        vec = featurizer.features(tables[0])
        assert vec[-1] == 1.0

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            TableFeaturizer(batch_size=0)

    def test_features_scale_reasonably(self, featurizer, tables):
        """Features should stay O(10) so the MLP needs no normalizer."""
        mats = featurizer.features_matrix(tables)
        assert np.abs(mats).max() < 50
