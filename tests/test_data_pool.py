"""Tests for repro.data.pool (Algorithms 3, 4, 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DIMENSION_GRID
from repro.data import TablePool, synthesize_table_pool


@pytest.fixture(scope="module")
def pool() -> TablePool:
    return TablePool(synthesize_table_pool(num_tables=30, seed=5))


class TestAugmentation:
    def test_size_is_pool_times_grid(self, pool):
        assert len(pool.augmented) == 30 * len(DIMENSION_GRID)

    def test_every_table_at_every_dim(self, pool):
        dims_per_table = {}
        for t in pool.augmented:
            dims_per_table.setdefault(t.table_id, set()).add(t.dim)
        assert all(dims == set(DIMENSION_GRID) for dims in dims_per_table.values())

    def test_augmentation_preserves_base_attributes(self, pool):
        base = {t.table_id: t for t in pool.tables}
        for aug in pool.augmented:
            src = base[aug.table_id]
            assert aug.hash_size == src.hash_size
            assert aug.pooling_factor == src.pooling_factor
            assert aug.zipf_alpha == src.zipf_alpha

    def test_custom_grid(self):
        pool = TablePool(
            synthesize_table_pool(num_tables=4, seed=0), augment_dims=(8, 16)
        )
        assert len(pool.augmented) == 8
        assert {t.dim for t in pool.augmented} == {8, 16}

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            TablePool([])


class TestCombinationGeneration:
    def test_count_in_range(self, pool):
        rng = np.random.default_rng(0)
        for _ in range(20):
            combo = pool.sample_combination(rng, min_tables=2, max_tables=6)
            assert 2 <= len(combo) <= 6

    def test_no_duplicates_within_combination(self, pool):
        rng = np.random.default_rng(1)
        combo = pool.sample_combination(rng, min_tables=10, max_tables=10)
        uids = [t.uid for t in combo]
        assert len(set(uids)) == len(uids)

    def test_deterministic_given_seed(self, pool):
        a = pool.sample_combinations(5, 42, 1, 8)
        b = pool.sample_combinations(5, 42, 1, 8)
        assert a == b

    def test_validates_range(self, pool):
        with pytest.raises(ValueError):
            pool.sample_combination(0, min_tables=5, max_tables=2)


class TestPlacementGeneration:
    def test_shape(self, pool):
        placement = pool.sample_placement(0, num_devices=4, min_tables=8, max_tables=12)
        assert placement.num_devices == 4
        assert 8 <= placement.num_tables <= 12

    def test_greedy_probability_recorded(self, pool):
        placement = pool.sample_placement(3, num_devices=2)
        assert 0.0 <= placement.greedy_probability <= 1.0

    def test_device_dims_consistent(self, pool):
        placement = pool.sample_placement(1, num_devices=4)
        for dev, dim_sum in zip(placement.per_device, placement.device_dims):
            assert sum(t.dim for t in dev) == dim_sum

    def test_memory_budget_respected(self, pool):
        budget = 256 * 1024**2
        placement = pool.sample_placement(
            2, num_devices=4, min_tables=10, max_tables=20, memory_bytes=budget
        )
        for size in placement.device_sizes():
            assert size <= budget

    def test_fully_greedy_balances_dimensions(self, pool):
        """With p=1 (forced via seed search) greedy placements are more
        balanced than the most random ones."""
        rng = np.random.default_rng(0)
        spreads = []
        probs = []
        for _ in range(40):
            placement = pool.sample_placement(rng, num_devices=4)
            dims = placement.device_dims
            if max(dims) > 0:
                spreads.append((max(dims) - min(dims)) / max(dims))
                probs.append(placement.greedy_probability)
        spreads = np.array(spreads)
        probs = np.array(probs)
        greedy = spreads[probs > 0.8]
        chaotic = spreads[probs < 0.2]
        if len(greedy) and len(chaotic):
            assert greedy.mean() < chaotic.mean()

    def test_rejects_bad_devices(self, pool):
        with pytest.raises(ValueError):
            pool.sample_placement(0, num_devices=0)


class TestSampleTables:
    def test_distinct_base_tables(self, pool):
        tables = pool.sample_tables(10, 0)
        assert len({t.table_id for t in tables}) == 10

    def test_dims_drawn_from_choices(self, pool):
        tables = pool.sample_tables(20, 0, dims=(8, 16))
        assert all(t.dim in (8, 16) for t in tables)

    def test_count_clamped_to_pool(self, pool):
        tables = pool.sample_tables(10_000, 0)
        assert len(tables) == len(pool)

    def test_rejects_empty_dims(self, pool):
        with pytest.raises(ValueError):
            pool.sample_tables(3, 0, dims=())


@settings(max_examples=25, deadline=None)
@given(
    num_devices=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_placement_partitions_tables(num_devices, seed):
    pool = TablePool(synthesize_table_pool(num_tables=12, seed=1))
    placement = pool.sample_placement(
        seed, num_devices=num_devices, min_tables=5, max_tables=10
    )
    # Every sampled table lands on exactly one device.
    assert placement.num_tables == sum(len(d) for d in placement.per_device)
    assert len(placement.per_device) == num_devices
