"""Tests for tools/run_doc_snippets.py (the executable-docs contract)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "run_doc_snippets",
    Path(__file__).parent.parent / "tools" / "run_doc_snippets.py",
)
runner = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(runner)


class TestExtractBlocks:
    def test_extracts_python_blocks_with_line_numbers(self):
        text = "# Title\n\n```python\nx = 1\n```\n\n```bash\nls\n```\n"
        blocks = runner.extract_blocks(text)
        assert len(blocks) == 1
        line, info, source = blocks[0]
        assert line == 3
        assert info == ""
        assert source == "x = 1\n"

    def test_no_run_marker_preserved(self):
        text = "```python no-run\nraise RuntimeError\n```\n"
        [(_, info, _)] = runner.extract_blocks(text)
        assert "no-run" in info.split()

    def test_list_nested_blocks_dedented(self):
        text = "- item:\n\n  ```python\n  x = 1\n  y = x\n  ```\n"
        [(_, _, source)] = runner.extract_blocks(text)
        assert source == "x = 1\ny = x\n"


class TestRunFile:
    def test_blocks_share_a_namespace(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```python\nx = 2\n```\n\n```python\nassert x == 2\n```\n")
        run, skipped = runner.run_file(doc, verbose=False)
        assert (run, skipped) == (2, 0)

    def test_no_run_blocks_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```python no-run\nraise RuntimeError('never')\n```\n")
        assert runner.run_file(doc, verbose=False) == (0, 1)

    def test_failing_block_raises(self, tmp_path, capsys):
        doc = tmp_path / "doc.md"
        doc.write_text("```python\nboom()\n```\n")
        with pytest.raises(runner.SnippetError):
            runner.run_file(doc, verbose=False)
        assert "FAIL" in capsys.readouterr().out

    def test_sys_exit_zero_is_a_failure(self, tmp_path, capsys):
        """sys.exit(0) must not end the run green with blocks unexecuted."""
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```python\nimport sys\nsys.exit(0)\n```\n\n"
            "```python\nnever_reached\n```\n"
        )
        with pytest.raises(runner.SnippetError):
            runner.run_file(doc, verbose=False)
        assert "FAIL" in capsys.readouterr().out

    def test_main_runs_repo_docs_headless(self, capsys):
        """The committed docs themselves execute green (the CI contract)."""
        # Scoped to architecture.md: cheap (no pretraining) but real.
        path = Path(__file__).parent.parent / "docs" / "architecture.md"
        assert runner.main(["-q", str(path)]) == 0
        assert "all green" in capsys.readouterr().out
