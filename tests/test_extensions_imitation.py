"""Tests for the self-imitation sharder (Appendix H extension)."""

import numpy as np
import pytest

from repro.baselines import GreedySharder
from repro.config import SearchConfig
from repro.core import NeuroShard
from repro.data import ShardingTask
from repro.extensions import ImitationDataset, ImitationSharder
from repro.hardware.memory import MemoryModel

FAST_SEARCH = SearchConfig(top_n=2, beam_width=1, max_steps=2, grid_points=3)


@pytest.fixture(scope="module")
def teacher_and_student(tiny_bundle, tasks2):
    """A NeuroShard teacher distilled into an imitation policy."""
    teacher = NeuroShard(tiny_bundle, search=FAST_SEARCH)
    student = ImitationSharder(tiny_bundle, hidden=(32,), seed=0)
    curve = student.fit_from_search(teacher, tasks2[:4], epochs=40)
    return teacher, student, curve


class TestDataset:
    def test_build_dataset_shapes(self, tiny_bundle, tasks2):
        teacher = GreedySharder("Dim-based")
        plans = [teacher.shard(t) for t in tasks2[:2]]
        student = ImitationSharder(tiny_bundle, hidden=(16,))
        ds = student.build_dataset(tasks2[:2], plans)
        expected = sum(t.num_tables for t in tasks2[:2])
        assert len(ds) == expected
        assert ds.states.shape[1] == (
            tiny_bundle.featurizer.num_features + 3 * tiny_bundle.num_devices
        )
        assert set(np.unique(ds.actions)) <= {0, 1}

    def test_misaligned_rejected(self, tiny_bundle, tasks2):
        student = ImitationSharder(tiny_bundle)
        with pytest.raises(ValueError):
            student.build_dataset(tasks2[:2], [])

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            ImitationDataset(states=np.zeros((0, 3)), actions=np.zeros(0))


class TestTraining:
    def test_loss_decreases(self, teacher_and_student):
        _, _, curve = teacher_and_student
        assert curve[-1] < curve[0]

    def test_shard_before_fit_rejected(self, tiny_bundle, tasks2):
        student = ImitationSharder(tiny_bundle)
        with pytest.raises(RuntimeError, match="fit"):
            student.shard(tasks2[0])


class TestDeployment:
    def test_produces_legal_plans(self, teacher_and_student, tasks2):
        _, student, _ = teacher_and_student
        for task in tasks2:
            plan = student.shard(task)
            assert plan is not None
            memory = MemoryModel(task.memory_bytes)
            assert memory.placement_fits(plan.per_device_tables(task.tables))

    def test_much_faster_than_search(self, teacher_and_student, tasks2):
        import time

        teacher, student, _ = teacher_and_student
        task = tasks2[4]
        t0 = time.perf_counter()
        teacher.shard(task)
        teacher_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        student.shard(task)
        student_time = time.perf_counter() - t0
        assert student_time < teacher_time

    def test_quality_close_to_teacher(
        self, teacher_and_student, tasks2, cluster2
    ):
        """The distilled policy stays within 2x of the teacher on the
        held-out task (typically much closer)."""
        from repro.evaluation import execute_plan

        teacher, student, _ = teacher_and_student
        task = tasks2[4]  # not in the training tasks
        t_plan = teacher.shard(task).plan
        s_plan = student.shard(task)
        t_cost = execute_plan(t_plan, task, cluster2).max_cost_ms
        s_cost = execute_plan(s_plan, task, cluster2).max_cost_ms
        assert s_cost < 2.0 * t_cost

    def test_device_count_mismatch(self, teacher_and_student, tasks2):
        _, student, _ = teacher_and_student
        task = tasks2[0]
        bad = ShardingTask(
            tables=task.tables, num_devices=4, memory_bytes=task.memory_bytes
        )
        with pytest.raises(ValueError):
            student.shard(bad)
