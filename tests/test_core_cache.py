"""Tests for repro.core.cache."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostCache


class TestCostCache:
    def test_miss_then_hit(self):
        cache = CostCache()
        assert cache.get(("a",)) is None
        cache.put(("a",), 1.5)
        assert cache.get(("a",)) == 1.5
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_disabled_always_misses(self):
        cache = CostCache(enabled=False)
        cache.put(("a",), 1.0)
        assert cache.get(("a",)) is None
        assert cache.hit_rate == 0.0
        assert len(cache) == 0

    def test_overwrite(self):
        cache = CostCache()
        cache.put("k", 1.0)
        cache.put("k", 2.0)
        assert cache.get("k") == 2.0

    def test_clear_resets_everything(self):
        cache = CostCache()
        cache.put("k", 1.0)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.lookups == 0
        assert cache.hit_rate == 0.0

    def test_hit_rate_zero_when_unused(self):
        assert CostCache().hit_rate == 0.0


class TestBoundedLRU:
    def test_evicts_least_recently_used(self):
        cache = CostCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("c", 3.0)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2.0
        assert cache.get("c") == 3.0
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = CostCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # "a" is now most recent
        cache.put("c", 3.0)  # evicts "b", not "a"
        assert cache.get("a") == 1.0
        assert cache.get("b") is None
        assert cache.get("c") == 3.0

    def test_overwrite_does_not_evict(self):
        cache = CostCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("a", 5.0)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 5.0

    def test_unbounded_never_evicts(self):
        cache = CostCache()
        for i in range(1000):
            cache.put(i, float(i))
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_clear_resets_evictions(self):
        cache = CostCache(max_entries=1)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0
        assert len(cache) == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            CostCache(max_entries=0)

    def test_hit_statistics_in_bounded_mode(self):
        cache = CostCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", 1.0)
        assert cache.get("k") == 1.0
        assert cache.hits == 1
        assert cache.misses == 1


class TestExternalHits:
    def test_counts_as_hits(self):
        cache = CostCache()
        cache.record_external_hits(3)
        assert cache.hits == 3
        assert cache.lookups == 3
        assert cache.hit_rate == 1.0

    def test_bounded_mode(self):
        cache = CostCache(max_entries=4)
        cache.record_external_hits()
        assert cache.hits == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            CostCache().record_external_hits(-1)


class TestBoundedStatsThreadSafety:
    """Regression for the bounded-LRU stats race: miss counting used to
    happen outside the lock, so concurrent lookups could lose increments
    and leave ``hits + misses != lookups``."""

    def test_threaded_stress_counters_consistent(self):
        cache = CostCache(max_entries=64)
        num_threads = 8
        ops_per_thread = 2000
        barrier = threading.Barrier(num_threads)

        def worker(thread_id: int) -> None:
            barrier.wait()
            for i in range(ops_per_thread):
                key = (thread_id * 7 + i) % 200
                value = cache.get(key)
                if value is None:
                    cache.put(key, float(key))
                cache.record_external_hits(1)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total_ops = num_threads * ops_per_thread
        # One real lookup and one external hit per op, none lost.
        assert cache.lookups == 2 * total_ops
        assert cache.hits + cache.misses == cache.lookups
        assert cache.hits >= total_ops
        assert len(cache) <= 64


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.floats(0, 100)),
        min_size=1,
        max_size=40,
    )
)
def test_property_cache_consistent_counts(operations):
    cache = CostCache()
    stored: dict[int, float] = {}
    for key, value in operations:
        result = cache.get(key)
        if key in stored:
            assert result == stored[key]
        else:
            assert result is None
            cache.put(key, value)
            stored[key] = value
    assert cache.lookups == len(operations)
    assert cache.hits + cache.misses == cache.lookups
    assert len(cache) == len(stored)
