"""Tests for repro.core.cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostCache


class TestCostCache:
    def test_miss_then_hit(self):
        cache = CostCache()
        assert cache.get(("a",)) is None
        cache.put(("a",), 1.5)
        assert cache.get(("a",)) == 1.5
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_disabled_always_misses(self):
        cache = CostCache(enabled=False)
        cache.put(("a",), 1.0)
        assert cache.get(("a",)) is None
        assert cache.hit_rate == 0.0
        assert len(cache) == 0

    def test_overwrite(self):
        cache = CostCache()
        cache.put("k", 1.0)
        cache.put("k", 2.0)
        assert cache.get("k") == 2.0

    def test_clear_resets_everything(self):
        cache = CostCache()
        cache.put("k", 1.0)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.lookups == 0
        assert cache.hit_rate == 0.0

    def test_hit_rate_zero_when_unused(self):
        assert CostCache().hit_rate == 0.0


class TestBoundedLRU:
    def test_evicts_least_recently_used(self):
        cache = CostCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("c", 3.0)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2.0
        assert cache.get("c") == 3.0
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = CostCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # "a" is now most recent
        cache.put("c", 3.0)  # evicts "b", not "a"
        assert cache.get("a") == 1.0
        assert cache.get("b") is None
        assert cache.get("c") == 3.0

    def test_overwrite_does_not_evict(self):
        cache = CostCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("a", 5.0)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 5.0

    def test_unbounded_never_evicts(self):
        cache = CostCache()
        for i in range(1000):
            cache.put(i, float(i))
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_clear_resets_evictions(self):
        cache = CostCache(max_entries=1)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0
        assert len(cache) == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            CostCache(max_entries=0)

    def test_hit_statistics_in_bounded_mode(self):
        cache = CostCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", 1.0)
        assert cache.get("k") == 1.0
        assert cache.hits == 1
        assert cache.misses == 1


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.floats(0, 100)),
        min_size=1,
        max_size=40,
    )
)
def test_property_cache_consistent_counts(operations):
    cache = CostCache()
    stored: dict[int, float] = {}
    for key, value in operations:
        result = cache.get(key)
        if key in stored:
            assert result == stored[key]
        else:
            assert result is None
            cache.put(key, value)
            stored[key] = value
    assert cache.lookups == len(operations)
    assert cache.hits + cache.misses == cache.lookups
    assert len(cache) == len(stored)
