"""Tests for repro.core.cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostCache


class TestCostCache:
    def test_miss_then_hit(self):
        cache = CostCache()
        assert cache.get(("a",)) is None
        cache.put(("a",), 1.5)
        assert cache.get(("a",)) == 1.5
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_disabled_always_misses(self):
        cache = CostCache(enabled=False)
        cache.put(("a",), 1.0)
        assert cache.get(("a",)) is None
        assert cache.hit_rate == 0.0
        assert len(cache) == 0

    def test_overwrite(self):
        cache = CostCache()
        cache.put("k", 1.0)
        cache.put("k", 2.0)
        assert cache.get("k") == 2.0

    def test_clear_resets_everything(self):
        cache = CostCache()
        cache.put("k", 1.0)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.lookups == 0
        assert cache.hit_rate == 0.0

    def test_hit_rate_zero_when_unused(self):
        assert CostCache().hit_rate == 0.0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.floats(0, 100)),
        min_size=1,
        max_size=40,
    )
)
def test_property_cache_consistent_counts(operations):
    cache = CostCache()
    stored: dict[int, float] = {}
    for key, value in operations:
        result = cache.get(key)
        if key in stored:
            assert result == stored[key]
        else:
            assert result is None
            cache.put(key, value)
            stored[key] = value
    assert cache.lookups == len(operations)
    assert cache.hits + cache.misses == cache.lookups
    assert len(cache) == len(stored)
