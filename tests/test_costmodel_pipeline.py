"""Tests for collection, pre-training, evaluation and drift monitoring."""

import json

import numpy as np
import pytest

from repro.costmodel import (
    DriftMonitor,
    DriftReport,
    PretrainedCostModels,
    TableFeaturizer,
    collect_comm_data,
    collect_compute_data,
    kendall_tau,
    mse,
    scatter_eval,
)
from repro.hardware import DeviceSpec, SimulatedCluster
from repro.config import ClusterConfig


class TestCollectCompute:
    def test_dataset_shape(self, cluster2, small_pool, tiny_collection):
        featurizer = TableFeaturizer(batch_size=cluster2.batch_size)
        data = collect_compute_data(
            cluster2, small_pool, featurizer, tiny_collection, seed=0
        )
        assert len(data) == tiny_collection.num_compute_samples
        assert all(m.shape[1] == featurizer.num_features for m in data.inputs)
        assert np.all(np.asarray(data.targets) > 0)

    def test_table_counts_in_range(self, cluster2, small_pool, tiny_collection):
        featurizer = TableFeaturizer(batch_size=cluster2.batch_size)
        data = collect_compute_data(
            cluster2, small_pool, featurizer, tiny_collection, seed=1
        )
        counts = [m.shape[0] for m in data.inputs]
        assert min(counts) >= tiny_collection.min_tables
        assert max(counts) <= tiny_collection.max_tables

    def test_deterministic(self, cluster2, small_pool, tiny_collection):
        featurizer = TableFeaturizer(batch_size=cluster2.batch_size)
        a = collect_compute_data(cluster2, small_pool, featurizer, tiny_collection, 7)
        b = collect_compute_data(cluster2, small_pool, featurizer, tiny_collection, 7)
        assert np.array_equal(a.targets, b.targets)


class TestCollectComm:
    def test_datasets_aligned(self, cluster2, small_pool, tiny_collection):
        fwd, bwd = collect_comm_data(cluster2, small_pool, tiny_collection, seed=0)
        assert len(fwd) == len(bwd) == tiny_collection.num_comm_samples
        assert np.array_equal(np.asarray(fwd.inputs), np.asarray(bwd.inputs))
        assert fwd.targets.shape == (len(fwd), cluster2.num_devices)

    def test_starts_are_zero_anchored(self, cluster2, small_pool, tiny_collection):
        fwd, _ = collect_comm_data(cluster2, small_pool, tiny_collection, seed=0)
        x = np.asarray(fwd.inputs)
        starts = x[:, : cluster2.num_devices]
        assert np.allclose(starts.min(axis=1), 0.0)

    def test_backward_targets_larger(self, cluster2, small_pool, tiny_collection):
        fwd, bwd = collect_comm_data(cluster2, small_pool, tiny_collection, seed=0)
        assert bwd.targets.mean() > fwd.targets.mean()


class TestPretrainedBundle:
    def test_report_rows(self, tiny_bundle):
        # The fixture builds the bundle; here we check its structure.
        assert tiny_bundle.num_devices == 2
        assert tiny_bundle.compute.target_std > 0

    def test_models_beat_predicting_the_mean(
        self, tiny_bundle, cluster2, small_pool
    ):
        """Even the tiny test bundle must out-predict a constant."""
        rng = np.random.default_rng(3)
        combos = small_pool.sample_combinations(40, rng, 1, 8)
        feats = [tiny_bundle.featurizer.features_matrix(c) for c in combos]
        pred = tiny_bundle.compute.predict_many(feats)
        real = np.array([cluster2.measure_compute(c) for c in combos])
        model_mse = float(np.mean((pred - real) ** 2))
        const_mse = float(np.var(real))
        assert model_mse < const_mse

    def test_save_load_roundtrip(self, tiny_bundle, tmp_path):
        tiny_bundle.save(tmp_path / "bundle")
        loaded = PretrainedCostModels.load(tmp_path / "bundle")
        assert loaded.num_devices == tiny_bundle.num_devices
        assert loaded.batch_size == tiny_bundle.batch_size
        mat = np.random.default_rng(0).normal(
            size=(4, tiny_bundle.featurizer.num_features)
        )
        assert loaded.compute.predict_one(mat) == pytest.approx(
            tiny_bundle.compute.predict_one(mat)
        )
        assert np.allclose(
            loaded.forward_comm.predict([10, 20], [0.0, 1.0], 1024),
            tiny_bundle.forward_comm.predict([10, 20], [0.0, 1.0], 1024),
        )

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PretrainedCostModels.load(tmp_path / "nowhere")


class TestMetrics:
    def test_mse(self):
        assert mse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_kendall_tau_perfect(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_kendall_tau_inverted(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_scatter_eval(self):
        ev = scatter_eval([1.0, 2.0, 3.0], [1.1, 2.2, 2.9])
        assert ev.tau == pytest.approx(1.0)
        assert ev.mean_absolute_error > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            mse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            kendall_tau([1.0], [1.0])


class TestDriftMonitor:
    def test_fresh_model_needs_no_retraining(
        self, tiny_bundle, cluster2, small_pool
    ):
        monitor = DriftMonitor(
            tiny_bundle, cluster2, small_pool, threshold_mse=1e6
        )
        report = monitor.probe(num_samples=10, seed=0, max_tables=6)
        assert report.probe_mse >= 0
        assert not report.needs_retraining

    def test_shifted_hardware_triggers_retraining(
        self, tiny_bundle, small_pool, cluster2
    ):
        """A 3x slower device must push the error over a tight threshold."""
        slow = SimulatedCluster(
            ClusterConfig(num_devices=2, memory_bytes=cluster2.config.memory_bytes),
            spec=DeviceSpec(
                gather_bandwidth_bytes_per_ms=3.0e7, index_cost_ms=3.3e-6
            ),
        )
        baseline = DriftMonitor(
            tiny_bundle, cluster2, small_pool, threshold_mse=1e6, window=4
        ).probe(num_samples=12, seed=1, max_tables=6)
        monitor = DriftMonitor(
            tiny_bundle, slow, small_pool,
            threshold_mse=max(4 * baseline.probe_mse, 1.0), window=4,
        )
        report = monitor.probe(num_samples=12, seed=1, max_tables=6)
        assert report.probe_mse > baseline.probe_mse
        assert report.needs_retraining

    def test_rolling_window(self, tiny_bundle, cluster2, small_pool):
        monitor = DriftMonitor(
            tiny_bundle, cluster2, small_pool, threshold_mse=1e6, window=2
        )
        r1 = monitor.probe(num_samples=6, seed=0, max_tables=5)
        r2 = monitor.probe(num_samples=6, seed=1, max_tables=5)
        assert r2.rolling_mse == pytest.approx((r1.probe_mse + r2.probe_mse) / 2)
        monitor.reset()
        r3 = monitor.probe(num_samples=6, seed=2, max_tables=5)
        assert r3.rolling_mse == pytest.approx(r3.probe_mse)

    def test_batch_size_mismatch_rejected(self, tiny_bundle, small_pool):
        other = SimulatedCluster(ClusterConfig(num_devices=2, batch_size=1024))
        with pytest.raises(ValueError, match="batch size"):
            DriftMonitor(tiny_bundle, other, small_pool)

    def test_probe_stamps_timestamp_and_step(
        self, tiny_bundle, cluster2, small_pool
    ):
        monitor = DriftMonitor(
            tiny_bundle, cluster2, small_pool, threshold_mse=1e6
        )
        report = monitor.probe(
            num_samples=6, seed=0, max_tables=5, timestamp=3.5, step_index=7
        )
        assert report.timestamp == 3.5
        assert report.step_index == 7
        # Defaults stay unstamped — a probe outside any sequence is legal.
        bare = monitor.probe(num_samples=6, seed=1, max_tables=5)
        assert bare.timestamp is None and bare.step_index is None


class TestDriftReportSchema:
    def test_round_trip_preserves_probe_provenance(self):
        from repro.api.schema import SCHEMA_VERSION

        report = DriftReport(
            probe_mse=0.5, rolling_mse=0.4, needs_retraining=False,
            timestamp=12.25, step_index=3,
        )
        data = report.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert DriftReport.from_dict(json.loads(json.dumps(data))) == report

    def test_round_trip_without_provenance(self):
        report = DriftReport(
            probe_mse=1.5, rolling_mse=1.2, needs_retraining=True
        )
        restored = DriftReport.from_dict(report.to_dict())
        assert restored == report
        assert restored.timestamp is None and restored.step_index is None

    def test_legacy_unversioned_payload_still_loads(self):
        legacy = {
            "probe_mse": 0.3, "rolling_mse": 0.2, "needs_retraining": False,
        }
        report = DriftReport.from_dict(legacy)
        assert report.probe_mse == 0.3
        assert report.timestamp is None and report.step_index is None

    def test_wrong_schema_version_rejected(self):
        data = DriftReport(
            probe_mse=0.3, rolling_mse=0.2, needs_retraining=False
        ).to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            DriftReport.from_dict(data)
