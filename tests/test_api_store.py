"""Tests for versioned bundle storage (repro.api.store)."""

import numpy as np
import pytest

from repro.api import BundleStore


@pytest.fixture()
def store(tmp_path):
    return BundleStore(tmp_path / "bundles")


class TestSaveLoad:
    def test_versions_auto_increment(self, store, tiny_bundle):
        first = store.save(tiny_bundle, "line")
        second = store.save(tiny_bundle, "line")
        assert (first.version, second.version) == (1, 2)
        assert store.versions("line") == [1, 2]
        assert store.latest_version("line") == 2
        assert first.version_tag == "line@v1"

    def test_load_latest_and_pinned(self, store, tiny_bundle, small_pool, rng):
        store.save(tiny_bundle, "line")
        store.save(tiny_bundle, "line")
        latest = store.load("line")
        pinned = store.load("line", version=1)
        assert latest.num_devices == tiny_bundle.num_devices
        assert latest.batch_size == tiny_bundle.batch_size
        # The reloaded models predict identically to the originals.
        tables = small_pool.sample_tables(3, rng)
        features = tiny_bundle.featurizer.features_matrix(list(tables))
        np.testing.assert_allclose(
            latest.compute.predict_many([features]),
            tiny_bundle.compute.predict_many([features]),
        )
        np.testing.assert_allclose(
            pinned.compute.predict_many([features]),
            tiny_bundle.compute.predict_many([features]),
        )

    def test_metadata_round_trips(self, store, tiny_bundle):
        store.save(tiny_bundle, "line", metadata={"test_mse": {"Computation": 1.5}})
        info = store.info("line")
        assert info.metadata == {"test_mse": {"Computation": 1.5}}
        assert info.num_devices == tiny_bundle.num_devices
        assert info.created_at > 0

    def test_list_bundles_across_lines(self, store, tiny_bundle):
        store.save(tiny_bundle, "a")
        store.save(tiny_bundle, "b")
        store.save(tiny_bundle, "b")
        tags = [i.version_tag for i in store.list_bundles()]
        assert tags == ["a@v1", "b@v1", "b@v2"]
        assert store.names() == ["a", "b"]


class TestErrors:
    def test_missing_name(self, store):
        with pytest.raises(FileNotFoundError, match="no bundle named"):
            store.load("ghost")

    def test_missing_version(self, store, tiny_bundle):
        store.save(tiny_bundle, "line")
        with pytest.raises(FileNotFoundError, match="v7"):
            store.load("line", version=7)

    def test_invalid_name_rejected(self, store, tiny_bundle):
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="bundle name"):
                store.save(tiny_bundle, bad)

    def test_empty_store_lists_nothing(self, store):
        assert store.list_bundles() == []
        assert store.names() == []
        assert store.versions("anything") == []


class TestRawBundleDetection:
    def test_is_raw_bundle(self, store, tiny_bundle, tmp_path):
        raw = tmp_path / "raw"
        tiny_bundle.save(raw)
        assert BundleStore.is_raw_bundle(raw)
        info = store.save(tiny_bundle, "line")
        assert BundleStore.is_raw_bundle(info.path)  # a version dir is one
        assert not BundleStore.is_raw_bundle(tmp_path / "bundles")
