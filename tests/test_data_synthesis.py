"""Tests for repro.data.synthesis."""

import numpy as np
import pytest

from repro.data.synthesis import (
    DEFAULT_NUM_TABLES,
    pool_statistics,
    public_dataset_statistics,
    synthesize_table_pool,
)


class TestSynthesis:
    def test_default_pool_size_matches_dlrm_datasets(self):
        pool = synthesize_table_pool(seed=0)
        assert len(pool) == DEFAULT_NUM_TABLES == 856

    def test_table_ids_are_positions(self):
        pool = synthesize_table_pool(num_tables=20, seed=0)
        assert [t.table_id for t in pool] == list(range(20))

    def test_deterministic(self):
        a = synthesize_table_pool(num_tables=50, seed=3)
        b = synthesize_table_pool(num_tables=50, seed=3)
        assert a == b

    def test_seed_changes_pool(self):
        a = synthesize_table_pool(num_tables=50, seed=3)
        b = synthesize_table_pool(num_tables=50, seed=4)
        assert a != b

    def test_mean_hash_size_near_published(self):
        """Paper Table 6: average hash size 4,107,458 rows."""
        pool = synthesize_table_pool(seed=0)
        mean = np.mean([t.hash_size for t in pool])
        assert 1.5e6 < mean < 1.2e7

    def test_mean_pooling_near_published(self):
        """Paper Table 6: average pooling factor 15."""
        pool = synthesize_table_pool(seed=0)
        mean = np.mean([t.pooling_factor for t in pool])
        assert 9 < mean < 24

    def test_hash_sizes_span_orders_of_magnitude(self):
        pool = synthesize_table_pool(seed=0)
        sizes = np.array([t.hash_size for t in pool])
        assert sizes.max() / sizes.min() > 1e3

    def test_all_tables_valid(self):
        pool = synthesize_table_pool(num_tables=100, seed=1)
        for t in pool:
            assert t.hash_size >= 1
            assert t.dim % 4 == 0
            assert t.pooling_factor >= 1.0
            assert t.zipf_alpha > 0

    def test_custom_default_dim(self):
        pool = synthesize_table_pool(num_tables=5, seed=0, default_dim=32)
        assert all(t.dim == 32 for t in pool)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthesize_table_pool(num_tables=0)


class TestStatistics:
    def test_pool_statistics_fields(self):
        pool = synthesize_table_pool(num_tables=100, seed=0)
        stats = pool_statistics(pool)
        assert stats.num_tables == 100
        assert stats.min_hash_size <= stats.mean_hash_size <= stats.max_hash_size
        assert stats.total_size_gb_at_dim > 0

    def test_as_row_shape(self):
        pool = synthesize_table_pool(num_tables=10, seed=0)
        row = pool_statistics(pool).as_row()
        assert set(row) == {
            "dataset",
            "num_tables",
            "avg_hash_size",
            "avg_pooling_factor",
        }

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            pool_statistics([])

    def test_public_rows_match_paper_table6(self):
        rows = {r["dataset"]: r for r in public_dataset_statistics()}
        assert rows["Criteo"]["num_tables"] == 26
        assert rows["Avazu"]["avg_hash_size"] == 67_152
        assert rows["KDD"]["avg_hash_size"] == 601_908

    def test_dlrm_dwarfs_public_datasets(self):
        """The paper's argument: DLRM has ~30x the tables and ~200x the
        average hash size of Criteo."""
        pool = synthesize_table_pool(seed=0)
        stats = pool_statistics(pool)
        criteo = public_dataset_statistics()[0]
        assert stats.num_tables > 30 * criteo["num_tables"]
        assert stats.mean_hash_size > 100 * criteo["avg_hash_size"]
