"""Tests for repro.core.plan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import (
    ShardingPlan,
    apply_column_plan,
    column_plan_is_legal,
    split_candidates,
)
from repro.data import synthesize_table_pool


@pytest.fixture(scope="module")
def tables():
    return synthesize_table_pool(num_tables=6, seed=9)  # all dim 64


class TestApplyColumnPlan:
    def test_empty_plan_is_identity(self, tables):
        assert apply_column_plan(tables, ()) == list(tables)

    def test_single_split_semantics(self, tables):
        out = apply_column_plan(tables, (2,))
        assert len(out) == 7
        # Index 2 halved in place; new shard appended at the end.
        assert out[2].dim == 32
        assert out[-1].dim == 32
        assert out[2].table_id == out[-1].table_id == tables[2].table_id
        for i in (0, 1, 3, 4, 5):
            assert out[i] == tables[i]

    def test_split_of_appended_shard(self, tables):
        # Split table 0, then split the appended shard (index 6).
        out = apply_column_plan(tables, (0, 6))
        assert len(out) == 8
        assert out[0].dim == 32
        assert out[6].dim == 16
        assert out[7].dim == 16

    def test_preserves_total_dim(self, tables):
        out = apply_column_plan(tables, (0, 1, 6, 0))
        assert sum(t.dim for t in out) == sum(t.dim for t in tables)

    def test_out_of_range_raises(self, tables):
        with pytest.raises(IndexError):
            apply_column_plan(tables, (6,))

    def test_index_valid_only_after_growth(self, tables):
        # Index 6 exists only once a split appended a shard.
        out = apply_column_plan(tables, (0, 6))
        assert len(out) == 8
        assert not column_plan_is_legal(tables, (6,))

    def test_cannot_split_below_min_dim(self, tables):
        plan = (0, 0, 0, 0, 0)  # 64 -> 32 -> 16 -> 8 -> 4 -> error
        with pytest.raises(ValueError):
            apply_column_plan(tables, plan)
        assert not column_plan_is_legal(tables, plan)


class TestSplitCandidates:
    def test_all_64_dim_splittable(self, tables):
        assert split_candidates(tables) == list(range(len(tables)))

    def test_dim4_excluded(self, tables):
        mixed = [tables[0].with_dim(4), tables[1]]
        assert split_candidates(mixed) == [1]


class TestShardingPlan:
    def test_per_device_tables(self, tables):
        plan = ShardingPlan(
            column_plan=(0,),
            assignment=(0, 1, 0, 1, 0, 1, 0),
            num_devices=2,
        )
        per_device = plan.per_device_tables(tables)
        assert len(per_device) == 2
        assert sum(len(d) for d in per_device) == 7

    def test_assignment_length_checked(self, tables):
        plan = ShardingPlan(column_plan=(), assignment=(0,), num_devices=2)
        with pytest.raises(ValueError):
            plan.per_device_tables(tables)

    def test_device_range_checked(self):
        with pytest.raises(ValueError):
            ShardingPlan(column_plan=(), assignment=(3,), num_devices=2)

    def test_device_dims(self, tables):
        plan = ShardingPlan(
            column_plan=(),
            assignment=tuple(i % 2 for i in range(6)),
            num_devices=2,
        )
        dims = plan.device_dims(tables)
        assert sum(dims) == sum(t.dim for t in tables)

    def test_num_splits(self):
        assert ShardingPlan((1, 2), (0,) * 0 or (), 1).num_splits == 2


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), max_size=6))
def test_property_plan_application_conserves_dim_and_bytes(raw_plan):
    tables = synthesize_table_pool(num_tables=5, seed=1, default_dim=128)
    if not column_plan_is_legal(tables, raw_plan):
        return
    out = apply_column_plan(tables, raw_plan)
    assert len(out) == len(tables) + len(raw_plan)
    assert sum(t.dim for t in out) == sum(t.dim for t in tables)
    assert sum(t.size_bytes for t in out) == sum(t.size_bytes for t in tables)
    assert all(t.dim % 4 == 0 for t in out)
