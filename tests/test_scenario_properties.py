"""Hypothesis metamorphic properties of the scenario replay harness.

Two laws of :mod:`repro.scenarios` + :func:`repro.evaluation.production
.replay_workload_trace`:

1. **Pure-traffic permutation invariance** — traffic multipliers are a
   scoring overlay; permuting them across the pure-traffic steps of a
   trace must not change what the lifecycle *does* (the final applied
   plan, the reshard outcomes).
2. **Traffic monotonicity** — while the applied plan holds, a larger
   traffic multiplier can only report a larger (or equal) serving cost.

Both properties quantify over the *harness*, not over a trained model:
the engine carries a hand-built linear bundle whose compute cost is a
nonnegative combination of features that are monotone in the pooling
factor, so monotonicity holds analytically and a violation can only come
from the replay plumbing (mis-threaded multipliers, state leaks between
steps).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ReshardConfig, ShardingEngine
from repro.config import ClusterConfig
from repro.costmodel.features import TableFeaturizer
from repro.costmodel.linear_model import (
    LinearCommCostModel,
    LinearComputeCostModel,
)
from repro.costmodel.pretrain import PretrainedCostModels
from repro.data.table import TableConfig
from repro.evaluation import replay_workload_trace
from repro.hardware import SimulatedCluster
from repro.scenarios.trace import TraceStep, WorkloadTrace

_SETTINGS = settings(max_examples=10, deadline=None)
_NUM_DEVICES = 2
_BATCH = 4096


def _monotone_bundle() -> PretrainedCostModels:
    """A deterministic bundle whose compute cost is provably monotone in
    every table's pooling factor.

    The ridge models are interface-compatible with the trained ones; the
    coefficients are set by hand (nonnegative weight on the
    ``dim * pooling`` workload feature and the table count, zero
    elsewhere) instead of fitted, because the property needs *analytic*
    monotonicity — a trained model's shape is not under test here.
    """
    featurizer = TableFeaturizer(_BATCH)
    compute = LinearComputeCostModel(featurizer.num_features)
    coef = np.zeros(featurizer.num_features + 2)
    coef[13] = 0.5   # dim * pooling / 1000 — strictly increasing in pooling
    coef[-2] = 0.02  # table count
    coef[-1] = 0.1   # bias
    compute._coef = coef
    comm_width = 2 * _NUM_DEVICES + 1
    forward = LinearCommCostModel(_NUM_DEVICES)
    forward._coef = np.zeros((comm_width, _NUM_DEVICES))
    backward = LinearCommCostModel(_NUM_DEVICES)
    backward._coef = np.zeros((comm_width, _NUM_DEVICES))
    return PretrainedCostModels(
        compute=compute,
        forward_comm=forward,
        backward_comm=backward,
        featurizer=featurizer,
        num_devices=_NUM_DEVICES,
        batch_size=_BATCH,
    )


@pytest.fixture(scope="module")
def engine():
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=_NUM_DEVICES, memory_bytes=2 * 1024**3)
    )
    return ShardingEngine(cluster, _monotone_bundle())


def _tables(count=4, start_id=0):
    return tuple(
        TableConfig(
            table_id=start_id + i,
            hash_size=1000 + 200 * i,
            dim=16,
            pooling_factor=4.0 + i,
            zipf_alpha=0.8,
        )
        for i in range(count)
    )


def _pure_step(timestamp, multiplier):
    return TraceStep(
        timestamp=float(timestamp),
        traffic_multiplier=float(multiplier),
        label=f"traffic x{multiplier:.2f}",
    )


def _replay(trace, engine):
    """Replay into a fresh service; returns (report, final applied record)."""
    from repro.api import ShardingService

    service = ShardingService()
    report = replay_workload_trace(
        trace,
        engine,
        reshard_config=ReshardConfig(max_refine_steps=2),
        strategy="dim_greedy",
        service=service,
        deployment="replay",
    )
    return report, service.applied_record("replay")


multipliers_st = st.lists(
    st.floats(min_value=0.25, max_value=8.0,
              allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=5,
)


class TestTrafficPermutation:
    @given(multipliers=multipliers_st, data=st.data())
    @_SETTINGS
    def test_pure_traffic_permutation_preserves_final_plan(
        self, engine, multipliers, data
    ):
        from repro.api.reshard import WorkloadDelta

        permuted = data.draw(st.permutations(multipliers))
        extra = _tables(1, start_id=500)[0]

        def build(ms):
            # Pure-traffic steps straddle one genuine workload change.
            steps = [_pure_step(i + 1, m) for i, m in enumerate(ms[:-1])]
            steps.append(
                TraceStep(
                    timestamp=len(ms),
                    delta=WorkloadDelta(add_tables=(extra,)),
                    label="onboard",
                )
            )
            steps.append(_pure_step(len(ms) + 1, ms[-1]))
            return WorkloadTrace(
                name="perm-prop",
                seed=0,
                num_devices=_NUM_DEVICES,
                memory_bytes=2 * 1024**3,
                initial_tables=_tables(),
                steps=tuple(steps),
            )

        base, base_applied = _replay(build(multipliers), engine)
        swapped, swapped_applied = _replay(build(permuted), engine)

        # The lifecycle's *actions* are traffic-independent.
        assert base_applied.plan == swapped_applied.plan
        assert base_applied.base_tables == swapped_applied.base_tables
        base_reshards = [s for s in base.steps if s.resharded]
        swapped_reshards = [s for s in swapped.steps if s.resharded]
        assert len(base_reshards) == len(swapped_reshards)
        for a, b in zip(base_reshards, swapped_reshards):
            assert a.moved_mb == b.moved_mb
            assert a.chosen == b.chosen
            assert a.num_shards == b.num_shards


class TestTrafficMonotonicity:
    @given(multipliers=multipliers_st)
    @_SETTINGS
    def test_serving_cost_is_monotone_in_traffic(self, engine, multipliers):
        trace = WorkloadTrace(
            name="mono-prop",
            seed=0,
            num_devices=_NUM_DEVICES,
            memory_bytes=2 * 1024**3,
            initial_tables=_tables(),
            steps=tuple(
                _pure_step(i + 1, m) for i, m in enumerate(multipliers)
            ),
        )
        report, _ = _replay(trace, engine)
        costs = {
            step.traffic_multiplier: step.serving_cost_ms
            for step in report.steps[1:]
        }
        ordered = sorted(costs)
        for lo, hi in zip(ordered, ordered[1:]):
            assert costs[lo] <= costs[hi] + 1e-9, (
                f"serving cost fell from {costs[lo]} (x{lo}) to "
                f"{costs[hi]} (x{hi})"
            )


def test_replay_is_deterministic(engine):
    trace = WorkloadTrace(
        name="det-prop",
        seed=0,
        num_devices=_NUM_DEVICES,
        memory_bytes=2 * 1024**3,
        initial_tables=_tables(),
        steps=(_pure_step(1, 2.0), _pure_step(2, 0.5)),
    )
    first, _ = _replay(trace, engine)
    second, _ = _replay(trace, engine)
    assert first.to_dict() == second.to_dict()
