"""Differential fuzz: old-vs-new scoring across every registered strategy.

The vectorized batch-scoring kernel replaces the per-candidate scoring
loop for the core searches.  This suite drives a seeded corner-case task
matrix — dimension extremes (including the ``dim <= 128`` regime of the
paper's Observation 1, where fused multi-table kernels are cheapest),
pooling and skew extremes, and budget corners — through **both** scoring
paths via :func:`~repro.validation.differential_matrix`:

- a *new* engine (batched scoring, the default), and
- an *old* engine (``with_ablation("batch_scoring")``, the sequential
  per-candidate loop).

Every strategy must stay :class:`~repro.validation.PlanValidator`-clean
under both, and the two engines' responses must agree bit-for-bit under
``deterministic_dict`` — for all 18 registered strategies, not just the
core searches the ablation actually reroutes.
"""

import dataclasses

import pytest

from repro.api import (
    ShardingEngine,
    ShardingRequest,
    available_strategies,
    make_sharder,
)
from repro.config import SearchConfig
from repro.data.table import TableConfig
from repro.validation import PlanValidator, differential_matrix

SEARCH = SearchConfig(top_n=3, beam_width=2, max_steps=3, grid_points=4)


def _comparable(response):
    """``deterministic_dict`` minus the cache hit rate.

    The batched path serves deduplicated candidates and plan-memo hits
    through ``record_external_hits``, so its hit *accounting* is allowed
    to differ from the sequential loop's; the plan contract — plan,
    cost, feasibility, evaluations — is held exactly.
    """
    payload = response.deterministic_dict()
    payload.pop("cache_hit_rate", None)
    return payload


def _table(tid, hash_size, dim, pooling, alpha):
    return TableConfig(
        table_id=tid,
        hash_size=hash_size,
        dim=dim,
        pooling_factor=pooling,
        zipf_alpha=alpha,
    )


def _task(task_id, tables, *, headroom=2.0):
    """Budget = ``headroom`` × the total footprint, so at ``headroom >=
    2`` even the random baseline can place every table on one device."""
    from repro.data.tasks import ShardingTask

    total = sum(t.size_bytes + 4 * t.hash_size for t in tables)
    return ShardingTask(
        tables=tuple(tables),
        num_devices=2,
        memory_bytes=max(int(headroom * total), 1),
        task_id=task_id,
    )


@pytest.fixture(scope="module")
def corner_tasks():
    """Seeded corner-case matrix (generous budgets — see ``_task``)."""
    return [
        # Observation-1 edge: every dim <= 128, spanning MIN_DIM up to
        # exactly 128, where fused kernels amortize best.
        _task(0, [
            _table(0, 5_000, 4, 1.0, 0.0),
            _table(1, 40_000, 16, 20.0, 0.6),
            _table(2, 200_000, 64, 50.0, 1.1),
            _table(3, 1_000_000, 128, 80.0, 1.6),
            _table(4, 8_000, 128, 1.0, 0.0),
        ]),
        # Wide tables past the edge: column-split candidates.
        _task(1, [
            _table(0, 500_000, 256, 30.0, 0.9),
            _table(1, 120_000, 512, 10.0, 0.3),
            _table(2, 60_000, 32, 5.0, 1.4),
            _table(3, 2_000_000, 64, 150.0, 1.2),
        ]),
        # Pooling × skew extremes crossed at a fixed mid dimension.
        _task(2, [
            _table(0, 100_000, 48, 1.0, 0.0),
            _table(1, 100_000, 48, 1.0, 1.6),
            _table(2, 100_000, 48, 200.0, 0.0),
            _table(3, 100_000, 48, 200.0, 1.6),
        ]),
    ]


@pytest.fixture(scope="module")
def engines(cluster2, tiny_bundle):
    """(new, old): batched scoring vs the sequential ablation."""
    def build(search):
        return ShardingEngine(
            cluster2,
            tiny_bundle,
            search=search,
            strategy_kwargs={"random": {"seed": 7}},
        )

    return build(SEARCH), build(SEARCH.with_ablation("batch_scoring"))


@pytest.fixture(scope="module")
def strategy_options(cluster2, tiny_bundle, corner_tasks):
    """Construction options for strategies needing a trained artifact.

    The guided policy is built once and shared by both engines, so a
    response difference can only come from the scoring path under test.
    """
    policy = make_sharder(
        "imitation",
        cluster=cluster2,
        bundle=tiny_bundle,
        train_tasks=corner_tasks[:1],
        epochs=2,
    )
    fit = {"train_tasks": corner_tasks[:1], "epochs": 2}
    return {"guided": {"policy": policy}, "imitation": fit, "offline_rl": fit}


class TestOldVsNewScoring:
    def test_matrix_clean_under_both_scorings(
        self, engines, corner_tasks, strategy_options
    ):
        for label, engine in zip(("batched", "sequential"), engines):
            report = differential_matrix(
                engine,
                corner_tasks,
                options=strategy_options,
                validator=PlanValidator(),
            )
            swept = {cell.strategy for cell in report.cells}
            assert swept == set(available_strategies())
            assert len(swept) >= 18
            assert report.clean, (
                label,
                [c.to_dict() for c in report.failures],
            )

    def test_responses_bit_identical(
        self, engines, corner_tasks, strategy_options
    ):
        """Every (strategy, task) response agrees across the two scoring
        paths under ``deterministic_dict`` — plans, costs, feasibility."""
        new_engine, old_engine = engines
        for name in available_strategies():
            for task in corner_tasks:
                request = ShardingRequest(
                    task,
                    strategy=name,
                    options=dict(strategy_options.get(name) or {}),
                    request_id=f"diff-{name}-{task.task_id}",
                )
                new = _comparable(new_engine.shard(request))
                old = _comparable(old_engine.shard(request))
                assert new == old, (name, task.task_id)

    def test_split_forcing_budget_corner(self, engines, corner_tasks):
        """A budget below the largest table forces column splits; the
        splitting strategies must stay clean and agree bitwise."""
        # One dominant wide table (> half the total footprint) plus
        # small riders: a budget of 0.75 × the big table is below its
        # unsplit footprint yet above total/2, so a plan exists but only
        # via column splits.
        tables = [
            _table(0, 500_000, 512, 30.0, 0.9),
            _table(1, 60_000, 32, 5.0, 1.4),
            _table(2, 40_000, 16, 20.0, 0.6),
        ]
        largest = max(t.size_bytes + 4 * t.hash_size for t in tables)
        tight = dataclasses.replace(
            _task(10, tables), memory_bytes=max(int(0.75 * largest), 1)
        )
        new_engine, old_engine = engines
        for engine in engines:
            report = differential_matrix(
                engine, [tight], strategies=["beam", "mixed"]
            )
            assert report.clean, [c.to_dict() for c in report.failures]
        for name in ("beam", "mixed"):
            request = ShardingRequest(
                tight, strategy=name, request_id=f"diff-split-{name}"
            )
            assert _comparable(new_engine.shard(request)) == _comparable(
                old_engine.shard(request)
            )

    def test_infeasible_budget_corner_agrees(self, engines, corner_tasks):
        """When nothing fits, both scoring paths must report the same
        infeasibility, cell for cell."""
        hopeless = dataclasses.replace(
            corner_tasks[0], memory_bytes=1024, task_id=11
        )
        names = ["beam", "mixed", "greedy_grid", "dim_greedy"]
        reports = [
            differential_matrix(engine, [hopeless], strategies=names)
            for engine in engines
        ]
        for new_cell, old_cell in zip(reports[0].cells, reports[1].cells):
            assert not new_cell.feasible
            assert new_cell.to_dict() == old_cell.to_dict()
