"""Tests for the SurCo-style linear-surrogate sharder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GreedySharder, SurrogateSharder
from repro.baselines.surrogate import _greedy_solve
from repro.core.cache import CostCache
from repro.core.simulator import NeuroShardSimulator
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel


@pytest.fixture(scope="module")
def sharder(tiny_bundle):
    return SurrogateSharder(tiny_bundle, iterations=15, seed=0)


def simulated_cost(bundle, task, plan):
    simulator = NeuroShardSimulator(bundle, CostCache())
    per_device = plan.per_device_tables(task.tables)
    return simulator.plan_cost(per_device).max_cost_ms


class TestGreedySolve:
    def test_balances_weights(self):
        tables = [
            TableConfig(i, hash_size=1000, dim=8, pooling_factor=2.0, zipf_alpha=1.0)
            for i in range(6)
        ]
        weights = np.array([6.0, 5.0, 4.0, 3.0, 2.0, 1.0])
        memory = MemoryModel(1024**3)
        assignment = _greedy_solve(tables, weights, 2, memory)
        assert assignment is not None
        per_device = [0.0, 0.0]
        for ti, d in enumerate(assignment):
            per_device[d] += weights[ti]
        # LPT on these weights gives a 11/10 split.
        assert abs(per_device[0] - per_device[1]) <= 1.0

    def test_returns_none_when_memory_gates(self):
        big = TableConfig(0, hash_size=10**7, dim=128, pooling_factor=2.0,
                          zipf_alpha=1.0)
        memory = MemoryModel(1024**2)
        assert _greedy_solve([big], np.ones(1), 2, memory) is None


class TestSurrogateSharder:
    def test_validation(self, tiny_bundle):
        with pytest.raises(ValueError):
            SurrogateSharder(tiny_bundle, iterations=-1)
        with pytest.raises(ValueError):
            SurrogateSharder(tiny_bundle, step_size=0.0)
        with pytest.raises(ValueError):
            SurrogateSharder(tiny_bundle, perturbation=-1.0)

    def test_device_count_mismatch(self, tiny_bundle, tasks2):
        import dataclasses

        bad_task = dataclasses.replace(tasks2[0], num_devices=7)
        with pytest.raises(ValueError, match="devices"):
            SurrogateSharder(tiny_bundle).shard(bad_task)

    def test_produces_legal_plans(self, sharder, tasks2):
        memoryless = 0
        for task in tasks2:
            plan = sharder.shard(task)
            if plan is None:
                memoryless += 1
                continue
            assert plan.num_devices == task.num_devices
            assert len(plan.assignment) == len(task.tables)
            per_device = plan.per_device_tables(task.tables)
            memory = MemoryModel(task.memory_bytes)
            assert memory.placement_fits(per_device)
        assert memoryless < len(tasks2)

    def test_no_column_splits(self, sharder, tasks2):
        """Like the greedy family, the surrogate is table-wise only."""
        plan = sharder.shard(tasks2[0])
        assert plan is not None
        assert plan.column_plan == ()

    def test_optimization_does_not_hurt(self, tiny_bundle, tasks2):
        """More iterations never yield a worse plan than zero iterations
        (the best-ever plan is kept)."""
        for task in tasks2[:3]:
            zero = SurrogateSharder(tiny_bundle, iterations=0, seed=1).shard(task)
            many = SurrogateSharder(tiny_bundle, iterations=20, seed=1).shard(task)
            if zero is None or many is None:
                continue
            assert simulated_cost(tiny_bundle, task, many) <= simulated_cost(
                tiny_bundle, task, zero
            ) + 1e-9

    def test_improves_over_lookup_greedy_on_some_task(self, sharder, tiny_bundle,
                                                      tasks2):
        """Across the test tasks the learned surrogate must beat its own
        initialization (lookup-greedy) at least once, and never lose on
        simulated cost."""
        better = 0
        for task in tasks2:
            surco = sharder.shard(task)
            greedy = GreedySharder("Lookup-based").shard(task)
            if surco is None or greedy is None:
                continue
            s_cost = simulated_cost(tiny_bundle, task, surco)
            g_cost = simulated_cost(tiny_bundle, task, greedy)
            assert s_cost <= g_cost + 1e-6
            if s_cost < g_cost - 1e-6:
                better += 1
        assert better >= 1

    def test_deterministic_given_seed(self, tiny_bundle, tasks2):
        a = SurrogateSharder(tiny_bundle, iterations=10, seed=5).shard(tasks2[0])
        b = SurrogateSharder(tiny_bundle, iterations=10, seed=5).shard(tasks2[0])
        assert a is not None and b is not None
        assert a.assignment == b.assignment
