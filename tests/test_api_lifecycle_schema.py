"""Property-based JSON round-trips of the service API wire types.

Every versioned payload (``ShardingRequest``, ``ShardingResponse``,
``PlanDiff``, ``WorkloadDelta``, ``PlanRecord``) must satisfy
``from_dict(json(to_dict(x))) == x`` for arbitrary valid instances, and
must reject payloads carrying a different schema version.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    PlanDiff,
    PlanRecord,
    ShardingRequest,
    ShardingResponse,
    WorkloadDelta,
)
from repro.core import ShardingPlan
from repro.costmodel.drift import DriftReport
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask

_SETTINGS = settings(max_examples=25, deadline=None)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

tables_st = st.builds(
    TableConfig,
    table_id=st.integers(min_value=0, max_value=5000),
    hash_size=st.integers(min_value=1, max_value=10**7),
    dim=st.sampled_from([4, 8, 16, 32, 64, 128]),
    pooling_factor=st.floats(min_value=0.01, max_value=200.0,
                             allow_nan=False, allow_infinity=False),
    zipf_alpha=st.floats(min_value=0.0, max_value=3.0,
                         allow_nan=False, allow_infinity=False),
    bytes_per_element=st.sampled_from([1, 2, 4, 8]),
)

table_lists_st = st.lists(tables_st, min_size=1, max_size=6)


@st.composite
def tasks_st(draw):
    return ShardingTask(
        tables=tuple(draw(table_lists_st)),
        num_devices=draw(st.integers(min_value=1, max_value=8)),
        memory_bytes=draw(st.integers(min_value=1, max_value=2**40)),
        task_id=draw(st.integers(min_value=0, max_value=999)),
    )


options_st = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(
        st.booleans(),
        st.integers(min_value=-1000, max_value=1000),
        st.text(max_size=12),
    ),
    max_size=3,
)


@st.composite
def plans_st(draw, tables=None):
    """A legal plan over ``tables`` (or a drawn list): random splits of
    splittable tables, then a random assignment."""
    if tables is None:
        tables = draw(table_lists_st)
    num_devices = draw(st.integers(min_value=1, max_value=4))
    working = list(tables)
    column_plan = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        candidates = [i for i, t in enumerate(working) if t.can_halve]
        if not candidates:
            break
        index = draw(st.sampled_from(candidates))
        column_plan.append(index)
        first, second = working[index].halved()
        working[index] = first
        working.append(second)
    assignment = tuple(
        draw(st.integers(min_value=0, max_value=num_devices - 1))
        for _ in working
    )
    return tables, ShardingPlan(
        column_plan=tuple(column_plan),
        assignment=assignment,
        num_devices=num_devices,
    )


@st.composite
def responses_st(draw):
    feasible = draw(st.booleans())
    plan = None
    effective = None
    if feasible:
        tables, plan = draw(plans_st())
        if draw(st.booleans()):
            effective = tuple(plan.sharded_tables(tables))
    return ShardingResponse(
        request_id=draw(st.text(max_size=12)),
        strategy=draw(st.sampled_from(["beam", "dim_greedy", "random"])),
        feasible=feasible,
        plan=plan,
        simulated_cost_ms=(
            draw(st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False))
            if feasible
            else math.inf
        ),
        sharding_time_s=draw(st.floats(min_value=0.0, max_value=1e4,
                                       allow_nan=False, allow_infinity=False)),
        cache_hit_rate=draw(st.floats(min_value=0.0, max_value=1.0,
                                      allow_nan=False)),
        evaluations=draw(st.integers(min_value=0, max_value=10**6)),
        error=draw(st.one_of(st.none(), st.text(max_size=20))),
        effective_tables=effective,
        profile=draw(st.one_of(
            st.none(),
            st.dictionaries(st.text(min_size=1, max_size=8),
                            st.integers(min_value=0, max_value=100),
                            max_size=3),
        )),
    )


@st.composite
def diffs_st(draw):
    tables = draw(table_lists_st)
    _, old = draw(plans_st(tables=tables))
    # The new plan must target the same device count.
    working = list(tables)
    column_plan = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        candidates = [i for i, t in enumerate(working) if t.can_halve]
        if not candidates:
            break
        index = draw(st.sampled_from(candidates))
        column_plan.append(index)
        first, second = working[index].halved()
        working[index] = first
        working.append(second)
    new = ShardingPlan(
        column_plan=tuple(column_plan),
        assignment=tuple(
            draw(st.integers(min_value=0, max_value=old.num_devices - 1))
            for _ in working
        ),
        num_devices=old.num_devices,
    )
    return PlanDiff.between(old, tables, new, tables)


drift_st = st.builds(
    DriftReport,
    probe_mse=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    rolling_mse=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    needs_retraining=st.booleans(),
    timestamp=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
    ),
    step_index=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
)

deltas_st = st.builds(
    WorkloadDelta,
    add_tables=st.lists(tables_st, max_size=4).map(tuple),
    remove_table_ids=st.lists(
        st.integers(min_value=0, max_value=5000), max_size=4
    ).map(tuple),
    drift=st.one_of(st.none(), drift_st),
)


@st.composite
def records_st(draw):
    feasible = draw(st.booleans())
    tables = draw(table_lists_st)
    plan = None
    if feasible:
        tables, plan = draw(plans_st(tables=tables))
        base = tuple(tables)
    else:
        base = tuple(tables)
    return PlanRecord(
        version=draw(st.integers(min_value=1, max_value=500)),
        kind=draw(st.sampled_from(["plan", "reshard"])),
        strategy=draw(st.sampled_from(["beam", "reshard-incremental"])),
        feasible=feasible,
        plan=plan,
        base_tables=base,
        num_devices=plan.num_devices if plan is not None else 2,
        memory_bytes=draw(st.integers(min_value=1, max_value=2**40)),
        simulated_cost_ms=(
            draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                           allow_infinity=False))
            if feasible
            else math.inf
        ),
        sharding_time_s=draw(st.floats(min_value=0.0, max_value=1e4,
                                       allow_nan=False, allow_infinity=False)),
        created_at=draw(st.floats(min_value=0.0, max_value=2e9,
                                  allow_nan=False, allow_infinity=False)),
        request_id=draw(st.text(max_size=10)),
        diff=draw(st.one_of(st.none(), diffs_st())),
        metadata=draw(st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.booleans(), st.integers(-10, 10), st.text(max_size=8)),
            max_size=3,
        )),
    )


def _json_round_trip(payload):
    return json.loads(json.dumps(payload))


# ----------------------------------------------------------------------
# identity properties
# ----------------------------------------------------------------------


class TestRoundTripIdentity:
    @_SETTINGS
    @given(task=tasks_st(), strategy=st.one_of(st.none(), st.text(min_size=1, max_size=10)),
           request_id=st.text(max_size=10), options=options_st)
    def test_request(self, task, strategy, request_id, options):
        request = ShardingRequest(
            task=task, strategy=strategy, request_id=request_id,
            options=options,
        )
        restored = ShardingRequest.from_dict(
            _json_round_trip(request.to_dict())
        )
        assert restored == request

    @_SETTINGS
    @given(response=responses_st())
    def test_response(self, response):
        restored = ShardingResponse.from_dict(
            _json_round_trip(response.to_dict())
        )
        assert restored == response

    @_SETTINGS
    @given(diff=diffs_st())
    def test_plan_diff(self, diff):
        assert PlanDiff.from_dict(_json_round_trip(diff.to_dict())) == diff

    @_SETTINGS
    @given(delta=deltas_st)
    def test_workload_delta(self, delta):
        assert (
            WorkloadDelta.from_dict(_json_round_trip(delta.to_dict())) == delta
        )

    @_SETTINGS
    @given(record=records_st())
    def test_plan_record(self, record):
        assert (
            PlanRecord.from_dict(_json_round_trip(record.to_dict())) == record
        )


# ----------------------------------------------------------------------
# version-mismatch rejection
# ----------------------------------------------------------------------


class TestVersionRejection:
    @_SETTINGS
    @given(version=st.one_of(st.none(), st.integers(min_value=2, max_value=99)))
    def test_all_wire_types_reject_foreign_versions(self, version, tasks2):
        task = tasks2[0]
        tables, plan = (
            task.tables,
            ShardingPlan(
                column_plan=(),
                assignment=tuple(0 for _ in task.tables),
                num_devices=task.num_devices,
            ),
        )
        payloads = [
            (ShardingRequest, ShardingRequest(task).to_dict()),
            (
                ShardingResponse,
                ShardingResponse(
                    request_id="", strategy="beam", feasible=True, plan=plan,
                    simulated_cost_ms=1.0, sharding_time_s=0.0,
                ).to_dict(),
            ),
            (PlanDiff, PlanDiff.between(plan, tables, plan, tables).to_dict()),
            (WorkloadDelta, WorkloadDelta().to_dict()),
            (
                PlanRecord,
                PlanRecord(
                    version=1, kind="plan", strategy="beam", feasible=True,
                    plan=plan, base_tables=tables,
                    num_devices=task.num_devices, memory_bytes=task.memory_bytes,
                    simulated_cost_ms=1.0, sharding_time_s=0.0, created_at=0.0,
                ).to_dict(),
            ),
        ]
        for cls, payload in payloads:
            payload["schema_version"] = version
            with pytest.raises(ValueError, match="schema version"):
                cls.from_dict(payload)
