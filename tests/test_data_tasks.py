"""Tests for repro.data.tasks (paper Table 5 task generation)."""

import pytest

from repro.config import TaskConfig
from repro.data import ShardingTask, TablePool, generate_tasks, synthesize_table_pool
from repro.data.tasks import generate_task_grid


@pytest.fixture(scope="module")
def pool() -> TablePool:
    return TablePool(synthesize_table_pool(num_tables=200, seed=2))


class TestShardingTask:
    def test_properties(self, pool):
        task = generate_tasks(pool, TaskConfig(), count=1, seed=0)[0]
        assert task.num_tables == len(task.tables)
        assert task.total_dim == sum(t.dim for t in task.tables)
        assert task.max_dim == max(t.dim for t in task.tables)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShardingTask(tables=(), num_devices=4, memory_bytes=1)

    def test_trivially_infeasible_detection(self, pool):
        table = pool.tables[0].with_dim(128)
        task = ShardingTask(
            tables=(table,), num_devices=1, memory_bytes=1024
        )
        assert task.is_trivially_infeasible()


class TestGenerateTasks:
    def test_count_and_ids(self, pool):
        tasks = generate_tasks(pool, TaskConfig(), count=7, seed=0)
        assert len(tasks) == 7
        assert [t.task_id for t in tasks] == list(range(7))

    def test_table_count_range(self, pool):
        cfg = TaskConfig(min_tables=10, max_tables=60)
        tasks = generate_tasks(pool, cfg, count=20, seed=1)
        for task in tasks:
            assert 10 <= task.num_tables <= 60

    def test_dims_from_config_choices(self, pool):
        cfg = TaskConfig(max_dim=128)
        tasks = generate_tasks(pool, cfg, count=10, seed=2)
        for task in tasks:
            for table in task.tables:
                assert table.dim in cfg.dim_choices

    def test_tasks_fit_aggregate_memory(self, pool):
        cfg = TaskConfig(max_dim=128)
        tasks = generate_tasks(pool, cfg, count=20, seed=3)
        for task in tasks:
            assert not task.is_trivially_infeasible()

    def test_deterministic(self, pool):
        a = generate_tasks(pool, TaskConfig(), count=3, seed=9)
        b = generate_tasks(pool, TaskConfig(), count=3, seed=9)
        assert a == b

    def test_rejects_zero_count(self, pool):
        with pytest.raises(ValueError):
            generate_tasks(pool, TaskConfig(), count=0)


class TestTaskGrid:
    def test_grid_covers_all_settings(self, pool):
        grid = list(generate_task_grid(pool, count_per_setting=2, seed=0))
        assert len(grid) == 12
        for setting, tasks in grid:
            assert len(tasks) == 2
            assert all(t.num_devices == setting.num_devices for t in tasks)

    def test_grid_settings_independent_of_subset(self, pool):
        full = list(generate_task_grid(pool, count_per_setting=1, seed=4))
        again = list(generate_task_grid(pool, count_per_setting=1, seed=4))
        assert [t for _, ts in full for t in ts] == [
            t for _, ts in again for t in ts
        ]
