"""Tests for the mixed CPU-GPU sharding extension."""

from __future__ import annotations

import math

import pytest

from repro.config import CollectionConfig, TrainConfig
from repro.data import TablePool, synthesize_table_pool
from repro.data.table import TableConfig
from repro.extensions import (
    MixedClusterSharder,
    MixedCostModels,
    pretrain_mixed_cost_models,
)
from repro.hardware import HeterogeneousCluster, cpu_host, gpu_2080ti

BATCH = 4096
GPU_BUDGET = 1024**3  # 1 GB per GPU: tight enough to force offloading
CPU_BUDGET = 64 * 1024**3


@pytest.fixture(scope="module")
def pool() -> TablePool:
    return TablePool(synthesize_table_pool(num_tables=32, seed=5))


@pytest.fixture(scope="module")
def mixed_cluster() -> HeterogeneousCluster:
    return HeterogeneousCluster(
        [gpu_2080ti(), gpu_2080ti(), cpu_host()],
        memory_bytes=[GPU_BUDGET, GPU_BUDGET, CPU_BUDGET],
        batch_size=BATCH,
    )


@pytest.fixture(scope="module")
def mixed_models(mixed_cluster, pool) -> MixedCostModels:
    return pretrain_mixed_cost_models(
        mixed_cluster,
        pool,
        collection=CollectionConfig(
            num_compute_samples=400, num_comm_samples=1, max_tables=8
        ),
        train=TrainConfig(epochs=60, batch_size=64),
        seed=3,
    )


@pytest.fixture(scope="module")
def sharder(mixed_cluster, mixed_models) -> MixedClusterSharder:
    return MixedClusterSharder(mixed_cluster, mixed_models, max_steps=4)


def task_tables(pool, n=10, dim=32, seed=0):
    import numpy as np

    rng = np.random.default_rng(seed)
    picks = rng.choice(len(pool.tables), size=n, replace=False)
    return [pool.tables[i].with_dim(dim) for i in picks]


class TestPretrainMixed:
    def test_one_model_per_class(self, mixed_models):
        assert set(mixed_models.by_class) == {"gpu", "cpu"}
        assert set(mixed_models.reports) == {"gpu", "cpu"}

    def test_models_learned_something(self, mixed_models):
        for klass, result in mixed_models.reports.items():
            assert result.test_mse < 1e4, f"{klass} model did not converge"

    def test_cpu_model_predicts_higher_costs(self, mixed_models, pool):
        tables = task_tables(pool, n=5)
        mat = mixed_models.featurizer.features_matrix(tables)
        cpu = mixed_models.model_for("cpu").predict_one(mat)
        gpu = mixed_models.model_for("gpu").predict_one(mat)
        assert cpu > gpu

    def test_model_for_unknown_class_raises(self, mixed_models):
        with pytest.raises(KeyError, match="tpu"):
            mixed_models.model_for("tpu")


class TestMixedSharderValidation:
    def test_rejects_bad_hyperparameters(self, mixed_cluster, mixed_models):
        with pytest.raises(ValueError):
            MixedClusterSharder(mixed_cluster, mixed_models, grid_points=0)
        with pytest.raises(ValueError):
            MixedClusterSharder(mixed_cluster, mixed_models, grid_end_factor=0.5)
        with pytest.raises(ValueError):
            MixedClusterSharder(mixed_cluster, mixed_models, max_steps=-1)
        with pytest.raises(ValueError):
            MixedClusterSharder(mixed_cluster, mixed_models, comm_weight=-1.0)

    def test_rejects_missing_class_model(self, mixed_cluster, mixed_models):
        gpu_only = MixedCostModels(
            by_class={"gpu": mixed_models.by_class["gpu"]},
            featurizer=mixed_models.featurizer,
            reports={},
            batch_size=mixed_models.batch_size,
        )
        with pytest.raises(KeyError, match="cpu"):
            MixedClusterSharder(mixed_cluster, gpu_only)

    def test_rejects_empty_table_list(self, sharder):
        with pytest.raises(ValueError, match="empty"):
            sharder.shard([])


class TestMixedSharding:
    def test_produces_feasible_legal_plan(self, sharder, mixed_cluster, pool):
        tables = task_tables(pool, n=12, dim=32)
        result = sharder.shard(tables)
        assert result.feasible
        assert mixed_cluster.plan_fits(result.per_device)
        assert math.isfinite(result.predicted_bottleneck_ms)

    def test_preserves_total_dimension(self, sharder, pool):
        tables = task_tables(pool, n=10, dim=64, seed=1)
        result = sharder.shard(tables)
        placed_dim = sum(result.device_dims)
        assert placed_dim == sum(t.dim for t in tables)

    def test_plan_evaluates_on_ground_truth(self, sharder, mixed_cluster, pool):
        tables = task_tables(pool, n=10, dim=32, seed=2)
        result = sharder.shard(tables)
        execution = mixed_cluster.evaluate_plan(result.per_device)
        assert execution.max_cost_ms > 0

    def test_oversized_table_offloaded_to_cpu(self, sharder, pool):
        """A table bigger than any GPU budget must land on the CPU."""
        huge = TableConfig(
            table_id=999,
            hash_size=30_000_000,
            dim=64,
            pooling_factor=1.5,
            zipf_alpha=1.2,
        )
        small = task_tables(pool, n=6, dim=16, seed=3)
        result = sharder.shard(small + [huge])
        assert result.feasible
        cpu_tables = result.per_device[2]
        assert any(t.table_id == 999 for t in cpu_tables)

    def test_column_split_used_when_helpful(self, mixed_cluster, mixed_models, pool):
        """With splits allowed, the search never does worse than without."""
        tables = task_tables(pool, n=8, dim=128, seed=4)
        no_split = MixedClusterSharder(
            mixed_cluster, mixed_models, max_steps=0
        ).shard(tables)
        with_split = MixedClusterSharder(
            mixed_cluster, mixed_models, max_steps=6
        ).shard(tables)
        assert with_split.feasible
        assert (
            with_split.predicted_bottleneck_ms
            <= no_split.predicted_bottleneck_ms + 1e-9
        )

    def test_cache_hit_rate_reported(self, sharder, pool):
        tables = task_tables(pool, n=10, dim=32, seed=5)
        result = sharder.shard(tables)
        assert 0.0 <= result.cache_hit_rate <= 1.0

    def test_deterministic(self, mixed_cluster, mixed_models, pool):
        tables = task_tables(pool, n=9, dim=32, seed=6)
        a = MixedClusterSharder(mixed_cluster, mixed_models).shard(tables)
        b = MixedClusterSharder(mixed_cluster, mixed_models).shard(tables)
        assert a.per_device == b.per_device

    def test_infeasible_when_nothing_fits(self, mixed_models, pool):
        """A cluster whose every device is tiny cannot place a big table."""
        tiny = HeterogeneousCluster(
            [gpu_2080ti(), cpu_host()],
            memory_bytes=1024**2,  # 1 MB everywhere
            batch_size=BATCH,
        )
        sharder = MixedClusterSharder(tiny, mixed_models, max_steps=2)
        result = sharder.shard(task_tables(pool, n=4, dim=32, seed=7))
        assert not result.feasible
        assert result.predicted_bottleneck_ms == math.inf

    def test_mixed_beats_gpu_only_when_memory_gates(
        self, mixed_cluster, mixed_models, pool
    ):
        """With a workload that exceeds aggregate GPU memory, the mixed
        cluster finds a plan while a GPU-only allocation cannot."""
        big_tables = [
            TableConfig(
                table_id=100 + i,
                hash_size=8_000_000,
                dim=64,
                pooling_factor=4.0,
                zipf_alpha=1.1,
            )
            for i in range(8)
        ]  # ~2 GB each with optimizer state: 8 tables >> 2 GB of GPU
        result = MixedClusterSharder(
            mixed_cluster, mixed_models, max_steps=2
        ).shard(big_tables)
        assert result.feasible
        assert len(result.per_device[2]) > 0  # CPU absorbed the overflow
