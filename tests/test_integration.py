"""End-to-end integration tests: the full Figure 6 pipeline on a small
scale, plus the production experiment."""

import math

import pytest

from repro.baselines import GreedySharder, RandomSharder
from repro.config import CollectionConfig, SearchConfig, TrainConfig
from repro.core import NeuroShard
from repro.evaluation import (
    evaluate_sharder,
    execute_plan,
    run_production_experiment,
)

FAST_SEARCH = SearchConfig(top_n=3, beam_width=2, max_steps=3, grid_points=4)


class TestEndToEnd:
    def test_pretrain_shard_execute(self, tiny_bundle, tasks2, cluster2):
        """Pre-train -> search -> execute on hardware, full circle."""
        sharder = NeuroShard(tiny_bundle, search=FAST_SEARCH)
        for task in tasks2:
            result = sharder.shard(task)
            assert result.feasible
            execution = execute_plan(result.plan, task, cluster2)
            assert execution is not None
            assert execution.max_cost_ms > 0

    def test_neuroshard_beats_random(self, tiny_bundle, tasks2, cluster2):
        ns = evaluate_sharder(
            NeuroShard(tiny_bundle, search=FAST_SEARCH), tasks2, cluster2
        )
        rnd = evaluate_sharder(RandomSharder(seed=0), tasks2, cluster2)
        assert ns.scales
        if rnd.scales:
            assert ns.mean_cost_ms < rnd.mean_cost_ms

    def test_neuroshard_competitive_with_greedy(
        self, tiny_bundle, tasks2, cluster2
    ):
        """Even the tiny test bundle should keep NeuroShard within 20% of
        the best greedy heuristic (the benchmark-grade bundle beats it)."""
        ns = evaluate_sharder(
            NeuroShard(tiny_bundle, search=FAST_SEARCH), tasks2, cluster2
        )
        greedy = evaluate_sharder(
            GreedySharder("Lookup-based"), tasks2, cluster2
        )
        assert ns.scales
        if greedy.scales:
            assert ns.mean_cost_ms < greedy.mean_cost_ms * 1.2

    def test_saved_bundle_reproduces_plans(
        self, tiny_bundle, tasks2, tmp_path
    ):
        """Version-controlled checkpoints (Section 3.2): a reloaded bundle
        must produce the identical plan."""
        tiny_bundle.save(tmp_path / "bundle")
        a = NeuroShard(tiny_bundle, search=FAST_SEARCH).shard(tasks2[0])
        b = NeuroShard.from_directory(
            tmp_path / "bundle", search=FAST_SEARCH
        ).shard(tasks2[0])
        assert a.plan == b.plan


@pytest.mark.slow
class TestProductionExperiment:
    def test_scaled_production_rows(self, small_pool):
        rows = run_production_experiment(
            small_pool,
            num_devices=4,
            num_tables=24,
            memory_bytes=1 * 1024**3,
            collection=CollectionConfig(
                num_compute_samples=1200,
                num_comm_samples=500,
                max_tables=10,
                min_placement_tables=4,
                max_placement_tables=14,
            ),
            train=TrainConfig(epochs=150, batch_size=64),
            search=SearchConfig(top_n=4, beam_width=2, max_steps=5, grid_points=5),
            rl_episodes=10,
            seed=0,
        )
        methods = [r.method for r in rows]
        assert methods[0] == "Random"
        assert methods[-1] == "NeuroShard"
        assert "DreamShard" in methods and "TorchRec" in methods
        by_name = {r.method: r for r in rows}
        assert math.isnan(by_name["Random"].throughput_improvement_pct)
        ns = by_name["NeuroShard"]
        assert not math.isnan(ns.embedding_cost_ms)
        # NeuroShard improves over random sharding.
        assert ns.embedding_cost_ms < by_name["Random"].embedding_cost_ms
        assert ns.throughput_improvement_pct > 0
