"""Tests for repro.core.simulator, greedy_grid, beam_search and sharder."""

import math

import numpy as np
import pytest

from repro.config import SearchConfig
from repro.core import (
    CostCache,
    NeuroShard,
    NeuroShardSimulator,
    beam_search,
    greedy_grid_search,
)
from repro.core.beam_search import _candidates
from repro.data import ShardingTask
from repro.data.table import TableConfig, table_set_key
from repro.hardware.memory import MemoryModel
from repro.perf import SearchProfile


@pytest.fixture()
def simulator(tiny_bundle) -> NeuroShardSimulator:
    return NeuroShardSimulator(tiny_bundle, CostCache())


@pytest.fixture()
def memory(cluster2) -> MemoryModel:
    return MemoryModel(cluster2.config.memory_bytes)


FAST_SEARCH = SearchConfig(top_n=3, beam_width=2, max_steps=3, grid_points=4)


class TestSimulator:
    def test_empty_device_is_free(self, simulator):
        assert simulator.device_compute_cost([]) == 0.0

    def test_costs_positive(self, simulator, tasks2):
        tables = list(tasks2[0].tables)
        assert simulator.device_compute_cost(tables) > 0

    def test_caching_works(self, tiny_bundle, tasks2):
        cache = CostCache()
        simulator = NeuroShardSimulator(tiny_bundle, cache)
        tables = list(tasks2[0].tables)
        a = simulator.device_compute_cost(tables)
        b = simulator.device_compute_cost(tables)
        assert a == b
        assert cache.hits == 1
        assert cache.get(table_set_key(tables)) == a

    def test_order_invariance_through_cache_key(self, simulator, tasks2):
        tables = list(tasks2[0].tables)
        a = simulator.device_compute_cost(tables)
        b = simulator.device_compute_cost(list(reversed(tables)))
        assert a == b

    def test_plan_cost_breakdown(self, simulator, tasks2):
        task = tasks2[0]
        half = len(task.tables) // 2
        per_device = [list(task.tables[:half]), list(task.tables[half:])]
        cost = simulator.plan_cost(per_device)
        assert cost.max_cost_ms == max(cost.device_costs_ms)
        assert all(c >= 0 for c in cost.fwd_comm_ms)
        assert all(c >= 0 for c in cost.bwd_comm_ms)

    def test_plan_cost_validates_device_count(self, simulator, tasks2):
        with pytest.raises(ValueError):
            simulator.plan_cost([list(tasks2[0].tables)])

    def test_single_table_costs_shape(self, simulator, tasks2):
        tables = list(tasks2[0].tables)
        singles = simulator.single_table_costs(tables)
        assert singles.shape == (len(tables),)
        assert np.all(singles > 0)


class TestGreedyGridSearch:
    def test_finds_feasible_assignment(self, simulator, memory, tasks2):
        task = tasks2[0]
        result = greedy_grid_search(
            list(task.tables), 2, simulator, memory, FAST_SEARCH
        )
        assert result.feasible
        assert len(result.assignment) == task.num_tables
        assert all(0 <= d < 2 for d in result.assignment)
        assert math.isfinite(result.cost_ms)

    def test_respects_memory(self, simulator, tasks2):
        task = tasks2[0]
        # Budget fits the largest table but not everything on one device.
        largest = max(t.size_bytes + t.hash_size * 4 for t in task.tables)
        memory = MemoryModel(max(largest * 2, task.total_size_bytes // 2))
        result = greedy_grid_search(
            list(task.tables), 2, simulator, memory, FAST_SEARCH
        )
        if result.feasible:
            per_device_bytes = [0, 0]
            for t, d in zip(task.tables, result.assignment):
                per_device_bytes[d] += memory.table_bytes(t)
            assert all(b <= memory.memory_bytes for b in per_device_bytes)

    def test_infeasible_when_nothing_fits(self, simulator, tasks2):
        memory = MemoryModel(1024)  # nothing fits
        result = greedy_grid_search(
            list(tasks2[0].tables), 2, simulator, memory, FAST_SEARCH
        )
        assert not result.feasible
        assert result.cost_ms == math.inf
        assert result.assignment == ()

    def test_without_grid_search_single_pass(self, simulator, memory, tasks2):
        cfg = FAST_SEARCH.with_ablation("grid_search")
        result = greedy_grid_search(
            list(tasks2[0].tables), 2, simulator, memory, cfg
        )
        assert result.feasible
        assert result.max_dim_used is None  # unconstrained pass

    def test_grid_no_worse_than_no_grid(self, simulator, memory, tasks2):
        """The grid search includes the unconstrained pass, so it can only
        match or beat the ablated version (on predicted cost)."""
        for task in tasks2[:3]:
            with_grid = greedy_grid_search(
                list(task.tables), 2, simulator, memory, FAST_SEARCH
            )
            without = greedy_grid_search(
                list(task.tables),
                2,
                simulator,
                memory,
                FAST_SEARCH.with_ablation("grid_search"),
            )
            assert with_grid.cost_ms <= without.cost_ms + 1e-9

    def test_rejects_empty(self, simulator, memory):
        with pytest.raises(ValueError):
            greedy_grid_search([], 2, simulator, memory, FAST_SEARCH)


class _StubSimulator:
    """Deterministic single-table costs for candidate-order tests."""

    def __init__(self, costs):
        self._costs = np.asarray(costs, dtype=np.float64)

    def single_table_costs(self, tables):
        return self._costs[: len(tables)]


class TestCandidates:
    def _tables(self, dims, sizes):
        return [
            TableConfig(
                table_id=i,
                hash_size=size,
                dim=dim,
                pooling_factor=10.0,
                zipf_alpha=1.0,
            )
            for i, (dim, size) in enumerate(zip(dims, sizes))
        ]

    def test_order_pinned_cost_block_then_unseen_size(self):
        # Costs rank: 2, 0, 3, 1, 4; sizes (hash*dim) rank: 4, 1, 0, 3, 2.
        tables = self._tables(
            dims=[8, 8, 8, 8, 8], sizes=[3000, 4000, 1000, 2000, 5000]
        )
        sim = _StubSimulator([4.0, 2.0, 5.0, 3.0, 1.0])
        # top-3 by cost: [2, 0, 3]; top-3 by size: [4, 1, 0] -> merged
        # keeps the cost block, then appends unseen size entries in order.
        assert _candidates(tables, sim, top_n=3) == [2, 0, 3, 4, 1]

    def test_duplicates_removed_once(self):
        tables = self._tables(dims=[8, 8], sizes=[2000, 1000])
        sim = _StubSimulator([2.0, 1.0])
        # Both rankings produce [0, 1]; dedup keeps a single copy each.
        assert _candidates(tables, sim, top_n=2) == [0, 1]

    def test_unsplittable_dim4_skipped(self):
        tables = self._tables(dims=[4, 8], sizes=[9000, 1000])
        sim = _StubSimulator([9.0, 1.0])
        assert _candidates(tables, sim, top_n=2) == [1]

    def test_no_splittable_tables(self):
        tables = self._tables(dims=[4, 4], sizes=[1000, 2000])
        sim = _StubSimulator([1.0, 2.0])
        assert _candidates(tables, sim, top_n=2) == []


class TestSearchFastPaths:
    def test_keyed_costs_match_general_route(self, simulator, tasks2):
        tables = list(tasks2[0].tables)[:4]
        general = simulator.device_compute_costs([tables])
        featurizer = simulator.featurizer
        keyed = simulator.device_compute_costs_keyed(
            [(
                table_set_key(tables),
                featurizer.features_rows(tables[:-1]),
                featurizer.features(tables[-1]),
            )]
        )
        assert keyed == general

    def test_single_table_costs_memoized_per_uid(self, tiny_bundle, tasks2):
        cache = CostCache()
        simulator = NeuroShardSimulator(tiny_bundle, cache)
        tables = list(tasks2[0].tables)
        first = simulator.single_table_costs(tables)
        lookups_after_first = cache.lookups
        second = simulator.single_table_costs(tables)
        assert np.array_equal(first, second)
        # Served from the uid memo, recorded as external cache hits.
        assert cache.lookups == lookups_after_first + len(tables)
        assert cache.hits >= len(tables)

    def test_plan_memo_reduces_grid_searches(self, tiny_bundle, tasks2):
        profile = SearchProfile()
        cache = CostCache()
        simulator = NeuroShardSimulator(tiny_bundle, cache, profile=profile)
        task = tasks2[0]
        largest = max(t.size_bytes + t.hash_size * 4 for t in task.tables)
        memory = MemoryModel(max(int(largest * 0.75), 1))
        result = beam_search(
            list(task.tables), 2, simulator, memory,
            SearchConfig(top_n=4, beam_width=2, max_steps=5, grid_points=4),
            profile=profile,
        )
        counters = profile.counters
        assert counters["evaluations"] == result.evaluations
        assert counters["unique_evaluations"] <= result.evaluations
        # Permutation-duplicate expansions must actually be deduplicated.
        assert counters.get("plan_memo_hits", 0) > 0
        assert (
            counters["unique_evaluations"]
            + counters.get("plan_memo_hits", 0)
            == counters["evaluations"]
        )


class TestBeamSearch:
    def test_returns_complete_plan(self, simulator, memory, tasks2):
        task = tasks2[0]
        result = beam_search(
            list(task.tables), 2, simulator, memory, FAST_SEARCH
        )
        assert result.feasible
        plan = result.plan
        sharded = plan.sharded_tables(task.tables)
        assert len(sharded) == task.num_tables + plan.num_splits
        assert result.evaluations > 1

    def test_splits_resolve_oversized_tables(self, simulator, tasks2):
        """When one table alone busts the budget, only column splitting
        can make the task feasible — beam search must find that."""
        task = tasks2[0]
        memory_model = MemoryModel(1)  # placeholder, rebuilt below
        largest = max(
            t.size_bytes + t.hash_size * 4 for t in task.tables
        )
        # Budget below the largest table but above half of it.
        budget = int(largest * 0.75)
        memory_model = MemoryModel(budget)
        no_beam = beam_search(
            list(task.tables),
            2,
            simulator,
            memory_model,
            FAST_SEARCH.with_ablation("beam_search"),
        )
        assert not no_beam.feasible  # table-wise only cannot fit
        with_beam = beam_search(
            list(task.tables), 2, simulator, memory_model,
            SearchConfig(top_n=4, beam_width=2, max_steps=6, grid_points=3),
        )
        assert with_beam.feasible
        assert with_beam.plan.num_splits >= 1

    def test_no_beam_means_no_splits(self, simulator, memory, tasks2):
        result = beam_search(
            list(tasks2[0].tables),
            2,
            simulator,
            memory,
            FAST_SEARCH.with_ablation("beam_search"),
        )
        assert result.feasible
        assert result.plan.num_splits == 0

    def test_beam_never_worse_than_no_beam(self, simulator, memory, tasks2):
        for task in tasks2[:3]:
            full = beam_search(
                list(task.tables), 2, simulator, memory, FAST_SEARCH
            )
            ablated = beam_search(
                list(task.tables),
                2,
                simulator,
                memory,
                FAST_SEARCH.with_ablation("beam_search"),
            )
            assert full.cost_ms <= ablated.cost_ms + 1e-9


class TestNeuroShardFacade:
    def test_shard_returns_diagnostics(self, tiny_bundle, tasks2):
        sharder = NeuroShard(tiny_bundle, search=FAST_SEARCH)
        result = sharder.shard(tasks2[0])
        assert result.feasible
        assert result.sharding_time_s > 0
        assert 0 <= result.cache_hit_rate <= 1
        assert result.evaluations > 0

    def test_lifelong_cache_improves_hit_rate(self, tiny_bundle, tasks2):
        sharder = NeuroShard(tiny_bundle, search=FAST_SEARCH, lifelong_cache=True)
        first = sharder.shard(tasks2[0])
        second = sharder.shard(tasks2[0])  # identical task re-sharded
        assert second.cache_hit_rate >= first.cache_hit_rate
        assert second.cache_hit_rate > 0.95

    def test_device_count_mismatch_rejected(self, tiny_bundle, tasks2):
        sharder = NeuroShard(tiny_bundle, search=FAST_SEARCH)
        task = tasks2[0]
        bad = ShardingTask(
            tables=task.tables, num_devices=4, memory_bytes=task.memory_bytes
        )
        with pytest.raises(ValueError, match="pre-trained for"):
            sharder.shard(bad)

    def test_from_directory(self, tiny_bundle, tasks2, tmp_path):
        tiny_bundle.save(tmp_path / "m")
        sharder = NeuroShard.from_directory(tmp_path / "m", search=FAST_SEARCH)
        result = sharder.shard(tasks2[0])
        assert result.feasible

    def test_cache_disabled_ablation(self, tiny_bundle, tasks2):
        cfg = SearchConfig(
            top_n=2, beam_width=1, max_steps=2, grid_points=3, use_cache=False
        )
        sharder = NeuroShard(tiny_bundle, search=cfg)
        result = sharder.shard(tasks2[0])
        assert result.feasible
        assert result.cache_hit_rate == 0.0
