"""Tests for repro.nn.data, repro.nn.train and repro.nn.serialize."""

import numpy as np
import pytest

from repro.config import TrainConfig
from repro.nn import (
    ArrayDataset,
    Sequential,
    Trainer,
    load_params,
    minibatches,
    save_params,
    train_valid_test_split,
)


class TestArrayDataset:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            ArrayDataset(inputs=np.zeros((3, 2)), targets=np.zeros(4))

    def test_non_empty(self):
        with pytest.raises(ValueError):
            ArrayDataset(inputs=np.zeros((0, 2)), targets=np.zeros(0))

    def test_subset_array_inputs(self):
        ds = ArrayDataset(inputs=np.arange(10).reshape(5, 2), targets=np.arange(5.0))
        sub = ds.subset(np.array([0, 3]))
        assert np.array_equal(sub.targets, [0.0, 3.0])
        assert np.array_equal(sub.inputs, [[0, 1], [6, 7]])

    def test_subset_list_inputs(self):
        ds = ArrayDataset(inputs=["a", "b", "c"], targets=np.arange(3.0))
        sub = ds.subset(np.array([2, 0]))
        assert sub.inputs == ["c", "a"]


class TestSplit:
    def test_fractions(self):
        ds = ArrayDataset(inputs=np.zeros((100, 2)), targets=np.arange(100.0))
        tr, va, te = train_valid_test_split(ds, 0.8, 0.1, seed=0)
        assert len(tr) == 80 and len(va) == 10 and len(te) == 10

    def test_partition_is_exact(self):
        ds = ArrayDataset(inputs=np.zeros((57, 1)), targets=np.arange(57.0))
        tr, va, te = train_valid_test_split(ds, 0.8, 0.1, seed=1)
        combined = sorted(
            list(tr.targets) + list(va.targets) + list(te.targets)
        )
        assert combined == sorted(ds.targets)

    def test_every_split_non_empty_even_tiny(self):
        ds = ArrayDataset(inputs=np.zeros((4, 1)), targets=np.arange(4.0))
        tr, va, te = train_valid_test_split(ds, 0.8, 0.1, seed=2)
        assert len(tr) >= 1 and len(va) >= 1 and len(te) >= 1

    def test_deterministic(self):
        ds = ArrayDataset(inputs=np.zeros((30, 1)), targets=np.arange(30.0))
        a = train_valid_test_split(ds, seed=5)
        b = train_valid_test_split(ds, seed=5)
        assert np.array_equal(a[0].targets, b[0].targets)

    def test_validates_fractions(self):
        ds = ArrayDataset(inputs=np.zeros((10, 1)), targets=np.arange(10.0))
        with pytest.raises(ValueError):
            train_valid_test_split(ds, 0.95, 0.1)


class TestMinibatches:
    def test_covers_everything(self):
        seen = np.concatenate(list(minibatches(10, 3)))
        assert sorted(seen) == list(range(10))

    def test_shuffles_with_rng(self):
        ordered = np.concatenate(list(minibatches(20, 5)))
        shuffled = np.concatenate(list(minibatches(20, 5, rng=3)))
        assert not np.array_equal(ordered, shuffled)
        assert sorted(shuffled) == list(range(20))

    def test_batch_sizes(self):
        batches = list(minibatches(10, 4))
        assert [len(b) for b in batches] == [4, 4, 2]


class _MlpRegressor:
    """Adapter: plain MLP as a TrainableRegressor over 2-D inputs."""

    def __init__(self, seed=0):
        self.net = Sequential.mlp([3, 16, 1], rng=np.random.default_rng(seed))

    def forward_batch(self, inputs):
        return self.net.forward(np.asarray(inputs))[:, 0]

    def backward_batch(self, grad):
        self.net.backward(np.asarray(grad)[:, None])

    def parameters(self):
        return self.net.parameters()

    def state_dict(self):
        return self.net.state_dict()

    def load_state_dict(self, state):
        self.net.load_state_dict(state)


def make_dataset(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = x[:, 0] * 2 + np.sin(x[:, 1])
    return ArrayDataset(inputs=x, targets=y)


class TestTrainer:
    def test_fit_reduces_loss(self):
        ds = make_dataset()
        tr, va, te = train_valid_test_split(ds, seed=0)
        model = _MlpRegressor()
        config = TrainConfig(epochs=60, batch_size=32, learning_rate=1e-2)
        result = Trainer(config).fit(model, tr, va, te, seed=1)
        assert result.train_losses[-1] < result.train_losses[0] / 2
        assert result.test_mse < np.var(ds.targets)

    def test_best_validation_weights_kept(self):
        ds = make_dataset()
        tr, va, te = train_valid_test_split(ds, seed=0)
        model = _MlpRegressor()
        trainer = Trainer(TrainConfig(epochs=30, batch_size=32))
        result = trainer.fit(model, tr, va, test=None, seed=1)
        # The loaded weights must reproduce the recorded best valid MSE.
        assert trainer.evaluate(model, va) == pytest.approx(
            result.best_valid_mse, rel=1e-6
        )
        assert 0 <= result.best_epoch < 30

    def test_no_test_set_gives_nan(self):
        ds = make_dataset(n=50)
        tr, va, _ = train_valid_test_split(ds, seed=0)
        result = Trainer(TrainConfig(epochs=3)).fit(
            _MlpRegressor(), tr, va, test=None
        )
        assert np.isnan(result.test_mse)

    def test_curves_recorded(self):
        ds = make_dataset(n=60)
        tr, va, te = train_valid_test_split(ds, seed=0)
        result = Trainer(TrainConfig(epochs=7)).fit(_MlpRegressor(), tr, va, te)
        assert len(result.train_losses) == 7
        assert len(result.valid_losses) == 7


class TestSerialize:
    def test_roundtrip(self, tmp_path):
        a = _MlpRegressor(seed=1)
        b = _MlpRegressor(seed=2)
        x = np.random.default_rng(0).normal(size=(5, 3))
        assert not np.allclose(a.forward_batch(x), b.forward_batch(x))
        path = tmp_path / "model.npz"
        save_params(a, path)
        load_params(b, path)
        assert np.allclose(a.forward_batch(x), b.forward_batch(x))

    def test_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_params(_MlpRegressor(), path)

    def test_rejects_shape_mismatch(self, tmp_path):
        class Other(_MlpRegressor):
            def __init__(self):
                self.net = Sequential.mlp([3, 8, 1])

        path = tmp_path / "model.npz"
        save_params(_MlpRegressor(), path)
        with pytest.raises(ValueError):
            load_params(Other(), path)
