"""Tests for the strategy registry (repro.api.registry / strategies)."""

import pytest

from repro.api import (
    UnknownStrategyError,
    all_names,
    available_strategies,
    iter_strategies,
    make_sharder,
    strategy_info,
)
from repro.baselines import GreedySharder, PlannerSharder, RandomSharder
from repro.core import NeuroShard

#: Every strategy the redesign promises (ISSUE 1 acceptance floor).
EXPECTED = {
    "beam",
    "greedy_grid",
    "random",
    "greedy",
    "size_greedy",
    "dim_greedy",
    "lookup_greedy",
    "size_lookup_greedy",
    "planner",
    "milp",
    "rl",
    "autoshard",
    "surco",
    "rowwise",
    "mixed",
    "guided",
    "imitation",
    "offline_rl",
}


class TestRegistry:
    def test_every_expected_strategy_registered(self):
        assert EXPECTED <= set(available_strategies())

    def test_every_name_resolves(self):
        for name in all_names():
            info = strategy_info(name)
            assert info.name in available_strategies()
            assert info.description
            assert info.category in ("core", "baseline", "extension")

    def test_categories_span_the_codebase(self):
        assert available_strategies("core")
        assert available_strategies("baseline")
        assert available_strategies("extension")

    def test_aliases_resolve_to_canonical(self):
        assert strategy_info("torchrec").name == "planner"
        assert strategy_info("dreamshard").name == "rl"
        assert strategy_info("neuroshard").name == "beam"

    def test_iter_strategies_sorted_and_complete(self):
        names = [info.name for info in iter_strategies()]
        assert names == sorted(names)
        assert set(names) == set(available_strategies())

    def test_unknown_name_is_helpful(self, cluster2):
        with pytest.raises(UnknownStrategyError) as exc:
            make_sharder("quantum", cluster=cluster2)
        message = str(exc.value)
        assert "quantum" in message
        assert "available strategies" in message
        assert "beam" in message  # the listing names real strategies

    def test_unknown_name_in_strategy_info(self):
        with pytest.raises(UnknownStrategyError):
            strategy_info("nope")


class TestMakeSharder:
    def test_bundle_free_strategies_construct(self, cluster2):
        assert isinstance(make_sharder("random", cluster=cluster2), RandomSharder)
        assert isinstance(make_sharder("planner", cluster=cluster2), PlannerSharder)
        greedy = make_sharder("greedy", cluster=cluster2, variant="Size-based")
        assert isinstance(greedy, GreedySharder)
        assert greedy.name == "Size-based"

    def test_greedy_variant_names(self, cluster2):
        for alias, display in {
            "size_greedy": "Size-based",
            "dim_greedy": "Dim-based",
            "lookup_greedy": "Lookup-based",
            "size_lookup_greedy": "Size-lookup-based",
        }.items():
            assert make_sharder(alias, cluster=cluster2).name == display

    def test_needs_bundle_fails_fast(self, cluster2):
        with pytest.raises(ValueError, match="bundle"):
            make_sharder("beam", cluster=cluster2)

    def test_alias_constructs_same_type(self, cluster2, tiny_bundle):
        direct = make_sharder("beam", cluster=cluster2, bundle=tiny_bundle)
        aliased = make_sharder("neuroshard", cluster=cluster2, bundle=tiny_bundle)
        assert isinstance(direct, NeuroShard)
        assert type(direct) is type(aliased)

    def test_device_count_mismatch_rejected(self, cluster4, tiny_bundle):
        # tiny_bundle is pre-trained for 2 devices.
        with pytest.raises(ValueError, match="devices"):
            make_sharder("beam", cluster=cluster4, bundle=tiny_bundle)

    def test_guided_requires_policy_or_tasks(self, cluster2, tiny_bundle):
        with pytest.raises(ValueError, match="policy"):
            make_sharder("guided", cluster=cluster2, bundle=tiny_bundle)

    def test_every_strategy_produces_a_sharder(
        self, cluster2, tiny_bundle, tasks2
    ):
        """Acceptance: every registered name is constructible."""
        heavy_kwargs = {
            "imitation": {"train_tasks": tasks2[:2], "epochs": 2},
            "offline_rl": {"train_tasks": tasks2[:2], "epochs": 2},
            "guided": {"train_tasks": tasks2[:2], "epochs": 2},
            "rl": {"episodes": 2},
            "autoshard": {"episodes": 2},
            "surco": {"iterations": 2},
        }
        for name in available_strategies():
            sharder = make_sharder(
                name,
                cluster=cluster2,
                bundle=tiny_bundle,
                **heavy_kwargs.get(name, {}),
            )
            assert callable(sharder.shard), name
            assert getattr(sharder, "name", None), name
