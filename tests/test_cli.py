"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_ALL_INFEASIBLE, build_parser, main
from repro.data import save_tasks
from repro.data.table import TableConfig
from repro.data.tasks import ShardingTask


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pretrain_args(self):
        args = build_parser().parse_args(
            ["pretrain", "/tmp/x", "--gpus", "8", "--samples", "100"]
        )
        assert args.command == "pretrain"
        assert args.gpus == 8
        assert args.samples == 100

    def test_compare_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "quantum"])

    def test_compare_accepts_registry_names_and_aliases(self):
        args = build_parser().parse_args(["compare", "torchrec", "dim_greedy"])
        assert args.algorithm == ["torchrec", "dim_greedy"]

    def test_shard_strategy_flag(self):
        args = build_parser().parse_args(
            ["shard", "/tmp/b", "--strategy", "planner"]
        )
        assert args.strategy == "planner"

    def test_shard_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "/tmp/b", "--strategy", "no"])

    def test_shard_profile_flag(self):
        args = build_parser().parse_args(["shard", "/tmp/b", "--profile"])
        assert args.profile is True
        assert build_parser().parse_args(["shard", "/tmp/b"]).profile is False

    def test_serve_batch_args(self):
        args = build_parser().parse_args(
            ["serve-batch", "/tmp/b", "/tmp/tasks.json", "--workers", "8"]
        )
        assert args.command == "serve-batch"
        assert args.workers == 8


class TestStrategiesCommand:
    def test_lists_all_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("beam", "milp", "rowwise", "mixed", "offline_rl"):
            assert name in out

    def test_category_filter(self, capsys):
        assert main(["strategies", "--category", "core"]) == 0
        out = capsys.readouterr().out
        assert "beam" in out
        assert "milp" not in out


def _oversized_task(num_devices: int = 2) -> ShardingTask:
    """A task no algorithm can place: one table far beyond the budget."""
    table = TableConfig(
        table_id=0, hash_size=10_000_000, dim=128, pooling_factor=10.0,
        zipf_alpha=1.05,
    )
    return ShardingTask(
        tables=(table,), num_devices=num_devices, memory_bytes=1024**2
    )


class TestExitCodes:
    @pytest.fixture()
    def bundle_dir(self, tmp_path, tiny_bundle):
        path = tmp_path / "bundle"
        tiny_bundle.save(path)
        return str(path)

    def test_shard_all_infeasible_is_nonzero(
        self, tmp_path, bundle_dir, capsys
    ):
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([_oversized_task()], tasks_file)
        code = main(
            ["shard", bundle_dir, "--strategy", "random",
             "--tasks-file", tasks_file]
        )
        assert code == EXIT_ALL_INFEASIBLE
        captured = capsys.readouterr()
        assert "no feasible plan" in captured.err
        assert "Valid 0 / 1" in captured.out

    def test_shard_profile_prints_counters(
        self, tmp_path, bundle_dir, tasks2, capsys
    ):
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([tasks2[0]], tasks_file)
        code = main(
            ["shard", bundle_dir, "--strategy", "beam",
             "--tasks-file", tasks_file, "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "search profile (aggregated over 1 tasks)" in out
        assert "evaluations" in out
        assert "stage seconds" in out

    def test_shard_missing_bundle_is_error(self, tmp_path, capsys):
        code = main(["shard", str(tmp_path / "ghost"), "--tasks", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_shard_factory_error_is_clean(self, tmp_path, bundle_dir, capsys):
        # 'guided' needs a trained policy: a clean error, not a traceback.
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([_oversized_task()], tasks_file)
        code = main(
            ["shard", bundle_dir, "--strategy", "guided",
             "--tasks-file", tasks_file]
        )
        assert code == 1
        assert "policy" in capsys.readouterr().err

    def test_compare_device_mismatch_is_clean(
        self, tmp_path, bundle_dir, capsys
    ):
        # The bundle is for 2 devices; asking for 4 must not traceback.
        code = main(
            ["compare", "beam", "--bundle", bundle_dir, "--gpus", "4",
             "--tasks", "1"]
        )
        assert code == 1
        assert "pre-trained for 2" in capsys.readouterr().err

    def test_serve_batch_all_infeasible_is_nonzero(
        self, tmp_path, bundle_dir, capsys
    ):
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([_oversized_task(), _oversized_task()], tasks_file)
        code = main(
            ["serve-batch", bundle_dir, tasks_file, "--strategy", "random",
             "--output", str(tmp_path / "out.json")]
        )
        assert code == EXIT_ALL_INFEASIBLE
        assert "0 / 2 feasible" in capsys.readouterr().err


class TestServeBatch:
    def test_writes_schema_valid_responses(
        self, tmp_path, tiny_bundle, tasks2, capsys
    ):
        bundle_dir = tmp_path / "bundle"
        tiny_bundle.save(bundle_dir)
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks(tasks2[:3], tasks_file)
        out_file = tmp_path / "responses.json"
        code = main(
            ["serve-batch", str(bundle_dir), tasks_file,
             "--strategy", "dim_greedy", "--workers", "2",
             "--output", str(out_file)]
        )
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert len(payload) == 3
        for record in payload:
            assert record["schema_version"] == 1
            assert record["strategy"] == "dim_greedy"
            assert record["feasible"] is True
            assert record["plan"]["num_devices"] == 2


class TestBundleStoreCli:
    def test_list_bundles_and_store_shard(
        self, tmp_path, tiny_bundle, tasks2, capsys
    ):
        from repro.api import BundleStore

        store_root = tmp_path / "store"
        BundleStore(store_root).save(tiny_bundle, "default")
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks(tasks2[:2], tasks_file)

        assert main(["list-bundles", str(store_root)]) == 0
        assert "default@v1" in capsys.readouterr().out

        code = main(
            ["shard", str(store_root), "--strategy", "dim_greedy",
             "--tasks-file", tasks_file]
        )
        assert code == 0
        assert "Valid 2 / 2" in capsys.readouterr().out


@pytest.mark.slow
class TestEndToEnd:
    def test_pretrain_then_shard(self, tmp_path, capsys):
        bundle_dir = str(tmp_path / "bundle")
        code = main(
            [
                "pretrain",
                bundle_dir,
                "--gpus",
                "4",
                "--samples",
                "400",
                "--epochs",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test MSE" in out
        assert "saved bundle" in out

        code = main(
            ["shard", bundle_dir, "--max-dim", "32", "--tasks", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Average:" in out
        assert "Valid" in out

    def test_compare_baseline(self, capsys):
        code = main(
            ["compare", "dim_greedy", "--max-dim", "16", "--tasks", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Valid 2 / 2" in out


class TestDeploymentParser:
    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "/tmp/bundle", "--store", "/tmp/deps", "--port", "0"]
        )
        assert args.command == "serve"
        assert args.store == "/tmp/deps"
        assert args.port == 0

    def test_deployment_actions_parse(self):
        for action in ("plan", "apply", "reshard", "rollback", "status",
                       "history"):
            args = build_parser().parse_args(
                ["deployment", action, "prod", "--store", "/tmp/d",
                 "/tmp/bundle"]
            )
            assert args.command == "deployment"
            assert args.action == action
            assert args.name == "prod"

    def test_reshard_knobs(self):
        args = build_parser().parse_args(
            ["deployment", "reshard", "prod", "--store", "/tmp/d",
             "/tmp/bundle", "--add", "3", "--remove", "1", "2",
             "--budget-ms", "500", "--lam", "0.01", "--no-apply"]
        )
        assert args.add == 3
        assert args.remove == [1, 2]
        assert args.budget_ms == 500.0
        assert args.lam == 0.01
        assert args.no_apply


class TestDeploymentLifecycleCli:
    @pytest.fixture()
    def bundle_dir(self, tmp_path, tiny_bundle):
        path = tmp_path / "bundle"
        tiny_bundle.save(path)
        return str(path)

    def test_full_lifecycle(self, tmp_path, bundle_dir, tasks2, capsys):
        store = str(tmp_path / "deps")
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([tasks2[0]], tasks_file)

        assert main(["deployment", "create", "prod", "--store", store,
                     bundle_dir, "--tasks-file", tasks_file]) == 0
        assert "created deployment 'prod'" in capsys.readouterr().out

        assert main(["deployment", "plan", "prod", "--store", store,
                     bundle_dir]) == 0
        assert "v1 [plan/beam]" in capsys.readouterr().out

        assert main(["deployment", "apply", "prod", "--store", store,
                     bundle_dir]) == 0
        capsys.readouterr()

        assert main(["deployment", "reshard", "prod", "--store", store,
                     bundle_dir, "--add", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "v2 [reshard/" in out
        assert "re-shard-from-scratch" in out

        assert main(["deployment", "rollback", "prod", "--store", store,
                     bundle_dir]) == 0
        assert "rolled back to v1" in capsys.readouterr().out

        assert main(["deployment", "status", "prod", "--store", store,
                     bundle_dir]) == 0
        out = capsys.readouterr().out
        assert "applied_version" in out

        assert main(["deployment", "history", "prod", "--store", store,
                     bundle_dir]) == 0
        out = capsys.readouterr().out
        assert "*live*" in out

        assert main(["deployment", "list", "--store", store,
                     bundle_dir]) == 0
        assert "prod" in capsys.readouterr().out

    def test_duplicate_create_is_clean_error(
        self, tmp_path, bundle_dir, tasks2, capsys
    ):
        store = str(tmp_path / "deps")
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([tasks2[0]], tasks_file)
        assert main(["deployment", "create", "prod", "--store", store,
                     bundle_dir, "--tasks-file", tasks_file]) == 0
        capsys.readouterr()
        assert main(["deployment", "create", "prod", "--store", store,
                     bundle_dir, "--tasks-file", tasks_file]) == 1
        assert "already exists" in capsys.readouterr().err

    def test_rollback_without_history_is_clean(
        self, tmp_path, bundle_dir, tasks2, capsys
    ):
        store = str(tmp_path / "deps")
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([tasks2[0]], tasks_file)
        main(["deployment", "create", "prod", "--store", store, bundle_dir,
              "--tasks-file", tasks_file])
        capsys.readouterr()
        assert main(["deployment", "rollback", "prod", "--store", store,
                     bundle_dir]) == 1
        assert "roll back" in capsys.readouterr().err


class TestFailingTaskIdsOnStderr:
    """The shared infeasibility contract: ids of the failing tasks."""

    @pytest.fixture()
    def bundle_dir(self, tmp_path, tiny_bundle):
        path = tmp_path / "bundle"
        tiny_bundle.save(path)
        return str(path)

    def test_shard_prints_failing_ids(self, tmp_path, bundle_dir, capsys):
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([_oversized_task()], tasks_file)
        code = main(["shard", bundle_dir, "--strategy", "random",
                     "--tasks-file", tasks_file])
        assert code == EXIT_ALL_INFEASIBLE
        assert "failing tasks: 0" in capsys.readouterr().err

    def test_serve_batch_prints_failing_ids(
        self, tmp_path, bundle_dir, capsys
    ):
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([_oversized_task(), _oversized_task()], tasks_file)
        code = main(["serve-batch", bundle_dir, tasks_file, "--strategy",
                     "random", "--output", str(tmp_path / "out.json")])
        assert code == EXIT_ALL_INFEASIBLE
        assert "failing tasks: 0, 0" in capsys.readouterr().err

    def test_deployment_apply_infeasible_is_exit_2(
        self, tmp_path, bundle_dir, capsys
    ):
        store = str(tmp_path / "deps")
        tasks_file = str(tmp_path / "tasks.json")
        save_tasks([_oversized_task()], tasks_file)
        assert main(["deployment", "create", "prod", "--store", store,
                     bundle_dir, "--tasks-file", tasks_file]) == 0
        # Every plan over the oversized workload is infeasible.
        assert main(["deployment", "plan", "prod", "--store", store,
                     bundle_dir]) == EXIT_ALL_INFEASIBLE
        capsys.readouterr()
        code = main(["deployment", "apply", "prod", "--store", store,
                     bundle_dir])
        assert code == EXIT_ALL_INFEASIBLE
        assert "failing tasks" in capsys.readouterr().err


class TestScenarioCommand:
    @pytest.fixture()
    def bundle_dir(self, tmp_path, tiny_bundle):
        path = tmp_path / "bundle"
        tiny_bundle.save(path)
        return str(path)

    def test_scenario_args_parse(self):
        args = build_parser().parse_args(
            ["scenario", "run", "flash_crowd", "/tmp/b", "--steps", "5",
             "--budget-ms", "2000", "--tables", "8", "--pool-seed", "2023"]
        )
        assert args.command == "scenario"
        assert args.action == "run"
        assert args.name == "flash_crowd"
        assert args.steps == 5
        assert args.budget_ms == 2000.0
        assert args.pool_seed == 2023

    def test_scenario_compare_args_parse(self):
        args = build_parser().parse_args(
            ["scenario", "compare", "diurnal", "table_churn", "/tmp/b"]
        )
        assert args.names == ["diurnal", "table_churn"]

    def test_list_shows_the_whole_atlas(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("diurnal", "flash_crowd", "table_churn", "dim_migration",
                     "skew_drift", "multi_tenant", "device_degradation",
                     "capacity_crunch"):
            assert name in out

    def test_list_tag_filter(self, capsys):
        assert main(["scenario", "list", "--tag", "capacity"]) == 0
        out = capsys.readouterr().out
        assert "capacity_crunch" in out
        assert "diurnal" not in out

    def test_unknown_scenario_is_clean_error(
        self, bundle_dir, capsys
    ):
        assert main(["scenario", "run", "quantum", bundle_dir]) == 1
        err = capsys.readouterr().err
        assert "quantum" in err
        assert "available scenarios" in err

    def test_run_writes_report_and_trace_json(
        self, tmp_path, bundle_dir, capsys
    ):
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.json"
        code = main([
            "scenario", "run", "flash_crowd", bundle_dir,
            "--tables", "8", "--steps", "5", "--budget-ms", "2000",
            "--refine-steps", "4",
            "--output", str(report_path),
            "--trace-output", str(trace_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flash_crowd" in out
        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 1
        assert report["scenario"] == "flash_crowd"
        assert len(report["steps"]) == 6  # 5 trace steps + the initial plan
        trace = json.loads(trace_path.read_text())
        assert trace["name"] == "flash_crowd"
        assert len(trace["steps"]) == 5
