"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pretrain_args(self):
        args = build_parser().parse_args(
            ["pretrain", "/tmp/x", "--gpus", "8", "--samples", "100"]
        )
        assert args.command == "pretrain"
        assert args.gpus == 8
        assert args.samples == 100

    def test_compare_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "quantum"])


@pytest.mark.slow
class TestEndToEnd:
    def test_pretrain_then_shard(self, tmp_path, capsys):
        bundle_dir = str(tmp_path / "bundle")
        code = main(
            [
                "pretrain",
                bundle_dir,
                "--gpus",
                "4",
                "--samples",
                "400",
                "--epochs",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test MSE" in out
        assert "saved bundle" in out

        code = main(
            ["shard", bundle_dir, "--max-dim", "32", "--tasks", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Average:" in out
        assert "Valid" in out

    def test_compare_baseline(self, capsys):
        code = main(
            ["compare", "dim_greedy", "--max-dim", "16", "--tasks", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Valid 2 / 2" in out
