"""Tests for the plan-lifecycle service (repro.api.service)."""

import dataclasses
import json

import pytest

from repro.api import (
    DeploymentNotFoundError,
    PlanRecord,
    PlanStore,
    ReshardConfig,
    ShardingEngine,
    ShardingRequest,
    ShardingService,
    WorkloadDelta,
    incremental_reshard,
)
from repro.costmodel.drift import DriftMonitor
from repro.data.pool import TablePool
from repro.data.tasks import ShardingTask


@pytest.fixture()
def engine(cluster2, tiny_bundle):
    return ShardingEngine(cluster2, tiny_bundle)


@pytest.fixture()
def service(engine, tasks2):
    service = ShardingService()
    service.create_deployment("prod", engine, tables=tasks2[0].tables)
    return service


def _fresh_tables(tasks2, count=2, start_id=90_000):
    return tuple(
        dataclasses.replace(t, table_id=start_id + i)
        for i, t in enumerate(tasks2[1].tables[:count])
    )


class TestDeploymentManagement:
    def test_create_and_status(self, service, tasks2):
        status = service.status("prod")
        assert status["name"] == "prod"
        assert status["num_tables"] == len(tasks2[0].tables)
        assert status["applied_version"] is None
        assert service.deployments() == ["prod"]

    def test_duplicate_name_rejected(self, service, engine, tasks2):
        with pytest.raises(ValueError, match="already exists"):
            service.create_deployment("prod", engine, tables=tasks2[0].tables)

    def test_empty_tables_rejected(self, engine):
        with pytest.raises(ValueError, match="at least one table"):
            ShardingService().create_deployment("x", engine, tables=())

    def test_unknown_deployment(self, service):
        with pytest.raises(DeploymentNotFoundError):
            service.status("nope")


class TestPlanApplyRollback:
    def test_plan_is_not_applied_until_apply(self, service):
        record = service.plan("prod")
        assert record.version == 1
        assert record.feasible
        assert service.status("prod")["applied_version"] is None
        applied = service.apply("prod")
        assert applied.version == 1
        assert service.status("prod")["applied_version"] == 1

    def test_plan_matches_direct_engine_call(self, service, engine, tasks2):
        record = service.plan("prod", strategy="beam")
        direct = engine.shard(
            ShardingRequest(
                ShardingTask(
                    tables=tasks2[0].tables,
                    num_devices=tasks2[0].num_devices,
                    memory_bytes=engine.cluster.config.memory_bytes,
                    task_id=record.version,
                ),
                strategy="beam",
            )
        )
        assert record.plan == direct.plan
        assert record.simulated_cost_ms == direct.simulated_cost_ms

    def test_apply_specific_version(self, service):
        service.plan("prod", strategy="beam")
        service.plan("prod", strategy="dim_greedy")
        applied = service.apply("prod", version=1)
        assert applied.version == 1
        assert applied.strategy == "beam"

    def test_apply_without_feasible_record_rejected(self, service):
        with pytest.raises(ValueError, match="no feasible plan record"):
            service.apply("prod")

    def test_rollback_needs_two_applies(self, service):
        service.plan("prod")
        service.apply("prod")
        with pytest.raises(ValueError, match="roll back"):
            service.rollback("prod")

    def test_rollback_restores_previous(self, service):
        service.plan("prod", strategy="beam")
        service.apply("prod", version=1)
        service.plan("prod", strategy="dim_greedy")
        service.apply("prod", version=2)
        restored = service.rollback("prod")
        assert restored.version == 1
        assert service.status("prod")["applied_version"] == 1

    def test_history_lists_all_versions(self, service):
        service.plan("prod")
        service.plan("prod")
        history = service.history("prod")
        assert [r["version"] for r in history] == [1, 2]

    def test_plan_batch_versions_in_order(self, service):
        records = service.plan_batch(
            "prod",
            [("beam", None, "a"), ("dim_greedy", None, "b")],
        )
        assert [r.version for r in records] == [1, 2]
        assert [r.request_id for r in records] == ["a", "b"]
        assert [r.strategy for r in records] == ["beam", "dim_greedy"]


class TestReshardLifecycle:
    """The end-to-end acceptance flow of the lifecycle API."""

    def test_end_to_end_lifecycle(self, service, engine, cluster2, tiny_bundle,
                                  small_pool, tasks2):
        # create -> plan -> apply
        v1 = service.plan("prod", strategy="beam")
        service.apply("prod")

        # inject drift: flatter index distributions degrade the model
        drifted_pool = TablePool(
            [
                dataclasses.replace(t, zipf_alpha=round(t.zipf_alpha * 0.5, 6))
                for t in small_pool.tables
            ],
            augment_dims=small_pool.augment_dims,
        )
        monitor = DriftMonitor(
            tiny_bundle, cluster2, drifted_pool, threshold_mse=1e-6, window=1
        )
        drift = monitor.probe(num_samples=4, seed=5)
        assert drift.needs_retraining

        # ... plus two new tables
        added = _fresh_tables(tasks2, count=2)
        delta = WorkloadDelta(add_tables=added, drift=drift)

        # First measure both candidates unconstrained, then pick a
        # migration budget between them so the budget is binding.
        probe = incremental_reshard(
            engine, v1.plan, v1.base_tables, delta,
            config=ReshardConfig(allow_full_search=True),
        )
        assert probe.full_diff is not None, "full candidate must be evaluated"
        scratch_cost = probe.full_response.simulated_cost_ms
        scratch_moved = probe.full_diff.moved_bytes
        assert scratch_moved > 0, "scratch re-search should reshuffle shards"
        budget = 0.9 * probe.full_diff.migration_cost_ms

        record = service.reshard(
            "prod",
            delta,
            config=ReshardConfig(migration_budget_ms=budget),
        )
        assert record.feasible
        assert record.kind == "reshard"
        assert record.metadata["drift_triggered"]
        assert record.metadata["within_budget"]
        assert record.diff is not None
        assert record.diff.migration_cost_ms <= budget

        # Acceptance: strictly fewer moved bytes than re-shard-from-
        # scratch, at a simulated cost within 5% of it.
        assert record.diff.moved_bytes < scratch_moved
        assert record.simulated_cost_ms <= 1.05 * scratch_cost

        # The reshard is live; rollback restores v1 byte-identically.
        assert service.status("prod")["applied_version"] == record.version
        restored = service.rollback("prod")
        assert restored.version == v1.version
        assert restored.plan == v1.plan
        assert restored.base_tables == v1.base_tables
        assert restored.to_dict() == v1.to_dict()

    def test_reshard_requires_applied_plan(self, service):
        with pytest.raises(ValueError, match="no applied plan"):
            service.reshard("prod", WorkloadDelta())

    def test_reshard_without_apply_keeps_live_plan(self, service, tasks2):
        service.plan("prod")
        service.apply("prod")
        record = service.reshard(
            "prod",
            WorkloadDelta(add_tables=_fresh_tables(tasks2)),
            apply=False,
        )
        assert record.version == 2
        assert service.status("prod")["applied_version"] == 1

    def test_reshard_updates_current_workload(self, service, tasks2):
        service.plan("prod")
        service.apply("prod")
        added = _fresh_tables(tasks2)
        service.reshard("prod", WorkloadDelta(add_tables=added))
        status = service.status("prod")
        assert status["num_tables"] >= len(tasks2[0].tables) + len(added)


class TestPersistence:
    def test_lifecycle_survives_reopen(self, engine, tasks2, tmp_path):
        store = PlanStore(tmp_path / "deployments")
        service = ShardingService(store)
        service.create_deployment(
            "prod", engine, tables=tasks2[0].tables, bundle_ref="bundles/x"
        )
        service.plan("prod")
        service.apply("prod")
        record = service.reshard(
            "prod", WorkloadDelta(add_tables=_fresh_tables(tasks2))
        )

        reopened = ShardingService.open(store, lambda meta: engine)
        assert reopened.deployments() == ["prod"]
        status = reopened.status("prod")
        assert status["applied_version"] == record.version
        live = reopened.applied_record("prod")
        assert live.plan == record.plan
        assert live.base_tables == record.base_tables
        assert [r["version"] for r in reopened.history("prod")] == [1, 2]

    def test_records_are_immutable_on_disk(self, engine, tasks2, tmp_path):
        store = PlanStore(tmp_path / "deployments")
        service = ShardingService(store)
        service.create_deployment("prod", engine, tables=tasks2[0].tables)
        record = service.plan("prod")
        with pytest.raises(FileExistsError, match="immutable"):
            store.save_record("prod", record.to_dict())

    def test_meta_round_trips(self, engine, tasks2, tmp_path):
        store = PlanStore(tmp_path / "deployments")
        service = ShardingService(store)
        service.create_deployment(
            "prod", engine, tables=tasks2[0].tables, bundle_ref="b@v1"
        )
        meta = store.load_meta("prod")
        assert meta["name"] == "prod"
        assert meta["bundle_ref"] == "b@v1"
        assert meta["num_devices"] == engine.cluster.num_devices
        assert len(meta["tables"]) == len(tasks2[0].tables)


class TestPlanRecordWire:
    def test_round_trip_through_json(self, service, tasks2):
        service.plan("prod")
        service.apply("prod")
        record = service.reshard(
            "prod", WorkloadDelta(add_tables=_fresh_tables(tasks2))
        )
        restored = PlanRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert restored == record

    def test_version_mismatch_rejected(self, service):
        payload = service.plan("prod").to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            PlanRecord.from_dict(payload)


class TestOpenOnError:
    def test_one_bad_deployment_does_not_block_the_rest(
        self, engine, tasks2, tmp_path
    ):
        store = PlanStore(tmp_path / "deployments")
        service = ShardingService(store)
        service.create_deployment("good", engine, tables=tasks2[0].tables)
        service.create_deployment("bad", engine, tables=tasks2[1].tables)

        def factory(meta):
            if meta["name"] == "bad":
                raise ValueError("device-count mismatch")
            return engine

        with pytest.raises(ValueError, match="mismatch"):
            ShardingService.open(store, factory)  # default: raise

        reopened = ShardingService.open(store, factory, on_error="skip")
        assert reopened.deployments() == ["good"]
        assert "bad" in reopened.skipped_deployments
        assert "mismatch" in reopened.skipped_deployments["bad"]

    def test_invalid_on_error_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            ShardingService.open(
                PlanStore(tmp_path / "d"), lambda meta: None, on_error="ignore"
            )
