"""Hash-chained plan provenance: canonical digests and chain links.

Every persisted :class:`~repro.api.service.PlanRecord` carries a
``provenance`` object committing to (a) a canonical digest of the
record's own content and (b) the digest of its predecessor record —
anchored, for the first record, in a digest of the deployment metadata.
A third party holding nothing but the store directory can therefore
re-derive every digest and walk the chain: silent edits, truncation,
deletion and reordering of the history become detectable, without any
cooperation from the code that wrote it.

Digest discipline (all sha256 hex over canonical JSON — sorted keys,
compact separators — because a record cannot commit to its *own file
bytes*; the digest must survive the parse/serialize round trip):

- :func:`record_digest` — the record payload **excluding** its
  ``provenance`` and ``validation`` keys: the plan content itself.
  Validation reports are stamped with this digest (the digest of what
  they validated).
- :func:`content_digest` — the payload excluding only ``provenance``
  (validation report included), the digest a chain link commits to: a
  flipped byte anywhere in the stored record, report included, breaks
  it.
- :func:`chain_digest` — binds ``(version, prev_version, prev_digest,
  content_digest)`` together, so reordering records is as detectable as
  editing them.
- :func:`genesis_digest` — the chain anchor, derived from the
  deployment metadata written at creation time.
- :func:`state_stamp` — the mutable ``state.json`` commits to the
  applied stack *and* the chain digest of its top-of-stack record, so
  truncating the applied history is detectable too.

What the chain does **not** give: there are no secrets or signatures,
so an adversary willing to recompute every digest downstream of an edit
can forge a consistent history.  The chain is tamper-*evident* against
silent corruption, bit rot, partial copies and casual edits — the cheap
80% of verifiable-lifecycle work (see PAPERS.md's verifiable-FL line),
not the ZKP machinery.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.utils import source_fingerprint

__all__ = [
    "ProvenanceLink",
    "STAMP_SOURCES",
    "canonical_bytes",
    "chain_digest",
    "content_digest",
    "genesis_digest",
    "link_digest_of_payload",
    "link_record",
    "raw_digest",
    "record_digest",
    "stamp_fingerprint",
    "state_digest",
    "state_stamp",
]

#: Source entries (relative to ``src/repro``) whose bytes determine what
#: a validation verdict *means*: the validator itself, the plan/diff/
#: reshard machinery it re-derives invariants from, and this package.
STAMP_SOURCES = (
    "config.py",
    "api",
    "core",
    "data",
    "hardware",
    "provenance",
    "validation",
)


def stamp_fingerprint() -> str:
    """The repro-source code fingerprint validation stamps carry.

    Cached (per process) by :func:`repro.utils.source_fingerprint` — the
    same mechanism pre-trained bundles use for their
    ``code_fingerprint.txt``.
    """
    return source_fingerprint(*STAMP_SOURCES)


def canonical_bytes(payload: Any) -> bytes:
    """The canonical JSON encoding digests are computed over.

    Sorted keys and compact separators: two payloads digest equal iff
    they are value-equal, independent of key order or the pretty-printed
    indentation the store writes with.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _digest(tag: bytes, payload: Any) -> str:
    digest = hashlib.sha256()
    digest.update(tag)
    digest.update(b"\0")
    digest.update(canonical_bytes(payload))
    return digest.hexdigest()


def record_digest(payload: Mapping[str, Any]) -> str:
    """Digest of a record's plan content (sans provenance *and* validation).

    This is the digest stamped onto the record's validation report — the
    report vouches for the content, so the content must not include the
    report.
    """
    body = {
        k: v
        for k, v in payload.items()
        if k not in ("provenance", "validation")
    }
    return _digest(b"record", body)


def content_digest(payload: Mapping[str, Any]) -> str:
    """Digest of everything a chain link commits to (sans provenance only).

    The validation report (stamps included) is covered: a byte flipped
    anywhere in the stored record except inside the provenance object
    itself changes this digest.
    """
    body = {k: v for k, v in payload.items() if k != "provenance"}
    return _digest(b"content", body)


def chain_digest(
    version: int, prev_version: int, prev_digest: str, content: str
) -> str:
    """The digest one record's successor commits to.

    Binds the version number and the predecessor link into the digest,
    so a record cannot be silently renumbered or re-parented.
    """
    return _digest(
        b"chain",
        {
            "version": int(version),
            "prev_version": int(prev_version),
            "prev_digest": str(prev_digest),
            "content_digest": str(content),
        },
    )


def genesis_digest(meta: Mapping[str, Any]) -> str:
    """The chain anchor of a deployment: a digest of its metadata."""
    return _digest(b"genesis", dict(meta))


def raw_digest(data: bytes) -> str:
    """Digest of raw file bytes — the fallback identity of a record file
    that does not parse (a torn write the writer still chained past)."""
    digest = hashlib.sha256()
    digest.update(b"raw\0")
    digest.update(data)
    return digest.hexdigest()


@dataclass(frozen=True)
class ProvenanceLink:
    """The chain fields persisted on one plan record.

    Attributes:
        prev_version: version of the predecessor record this one commits
            to (0 for the first record of a deployment).
        prev_digest: the predecessor's :func:`link digest
            <link_digest_of_payload>` — its chain digest, or the genesis
            digest when ``prev_version`` is 0.
        content_digest: :func:`content_digest` of this record's payload.
        chain_digest: :func:`chain_digest` over this record's version and
            the three fields above — what *this* record's successor
            commits to.
    """

    prev_version: int
    prev_digest: str
    content_digest: str
    chain_digest: str

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the link."""
        return {
            "prev_version": self.prev_version,
            "prev_digest": self.prev_digest,
            "content_digest": self.content_digest,
            "chain_digest": self.chain_digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProvenanceLink":
        """Inverse of :meth:`to_dict`."""
        return cls(
            prev_version=int(data["prev_version"]),
            prev_digest=str(data["prev_digest"]),
            content_digest=str(data["content_digest"]),
            chain_digest=str(data["chain_digest"]),
        )


def link_record(
    payload: Mapping[str, Any], prev_version: int, prev_digest: str
) -> ProvenanceLink:
    """Compute the chain link for a record payload about to be stored.

    ``payload`` is the record's serialized dict (its ``provenance`` key,
    if present, is ignored); ``prev_version``/``prev_digest`` identify
    the predecessor the writer observed.
    """
    content = content_digest(payload)
    return ProvenanceLink(
        prev_version=int(prev_version),
        prev_digest=str(prev_digest),
        content_digest=content,
        chain_digest=chain_digest(
            int(payload["version"]), prev_version, prev_digest, content
        ),
    )


def link_digest_of_payload(payload: Mapping[str, Any]) -> str:
    """The digest a successor record commits to for ``payload``.

    A chained record is identified by its *stored* chain digest (the
    auditor separately verifies that stored digest is self-consistent);
    a legacy record (no ``provenance``) by the recomputed content digest
    of its payload.
    """
    provenance = payload.get("provenance")
    if isinstance(provenance, Mapping) and provenance.get("chain_digest"):
        return str(provenance["chain_digest"])
    return content_digest(payload)


def state_digest(
    applied_stack: list[int],
    memory_bytes: Any,
    anchor_version: int,
    anchor_digest: str,
) -> str:
    """Digest the mutable deployment state commits to."""
    return _digest(
        b"state",
        {
            "applied_stack": [int(v) for v in applied_stack],
            "memory_bytes": memory_bytes,
            "anchor_version": int(anchor_version),
            "anchor_digest": str(anchor_digest),
        },
    )


def state_stamp(
    applied_stack: list[int],
    memory_bytes: Any,
    anchor_version: int,
    anchor_digest: str,
) -> dict[str, Any]:
    """The provenance stamp written into ``state.json``.

    ``anchor_version``/``anchor_digest`` name the top-of-stack record's
    chain digest (the genesis digest when nothing is applied), so a
    truncated or rewritten applied stack no longer matches its own
    stamp.
    """
    return {
        "anchor_version": int(anchor_version),
        "anchor_digest": str(anchor_digest),
        "digest": state_digest(
            applied_stack, memory_bytes, anchor_version, anchor_digest
        ),
    }
