"""Tamper-evident plan provenance: hash chains, stamps, offline audit.

The validation layer (:mod:`repro.validation`) proves a plan is
*internally* consistent; this package makes the lifecycle history
*externally* auditable.  :mod:`repro.provenance.chain` defines the
digest discipline — every :class:`~repro.api.service.PlanRecord`
commits to its own canonical content digest and its predecessor's chain
digest (genesis anchored in the deployment metadata), validation
reports are stamped with the digest they validated plus the source-tree
fingerprint, and the mutable state commits to its applied stack.
:mod:`repro.provenance.audit` walks a store offline — no engine or
bundle — verifying the full chain, re-running the validator, and
localizing any damage to the first offending version.

Surfaced as ``repro audit`` on the CLI, ``GET
/v1/deployments/<name>/audit`` on the server, and
:meth:`~repro.api.service.ShardingService.audit_deployment`.
"""

from repro.provenance.audit import (
    AuditFinding,
    AuditReport,
    audit_deployment,
    audit_store,
)
from repro.provenance.chain import (
    STAMP_SOURCES,
    ProvenanceLink,
    canonical_bytes,
    chain_digest,
    content_digest,
    genesis_digest,
    link_digest_of_payload,
    link_record,
    raw_digest,
    record_digest,
    stamp_fingerprint,
    state_digest,
    state_stamp,
)

__all__ = [
    "AuditFinding",
    "AuditReport",
    "ProvenanceLink",
    "STAMP_SOURCES",
    "audit_deployment",
    "audit_store",
    "canonical_bytes",
    "chain_digest",
    "content_digest",
    "genesis_digest",
    "link_digest_of_payload",
    "link_record",
    "raw_digest",
    "record_digest",
    "stamp_fingerprint",
    "state_digest",
    "state_stamp",
]
