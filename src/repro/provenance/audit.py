"""Offline store auditor: walk the hash chain, re-run the validator.

:func:`audit_deployment` needs nothing but a
:class:`~repro.api.store.PlanStore` directory — no engine, no bundle —
so a store copied off a production box is independently checkable.  Per
deployment it

1. re-derives the genesis digest from the deployment metadata,
2. walks every stored record in version order, recomputing content and
   chain digests and verifying each record's committed link against the
   digest registered for its claimed predecessor,
3. verifies every validation stamp (the ``validated_digest`` must match
   the re-derived record digest; a stale ``code_fingerprint`` is an
   advisory — the code evolved, the record did not),
4. verifies the mutable state's provenance stamp (applied stack + chain
   anchor), and
5. re-runs :class:`~repro.validation.invariants.PlanValidator` over the
   parseable history, folding its violations into the findings.

Findings carry a stable machine-readable ``code`` (``chain/...`` plus
the validator's own codes) and a severity: **errors** are evidence of
tampering, corruption or invariant violations and make the audit fail;
**advisories** note verifiable-but-noteworthy conditions — legacy
records written before the chain existed, non-immediate predecessor
links from multi-writer interleaving, a code fingerprint from an older
source tree — and leave the audit clean.

Localization discipline: damage is attributed to the *first offending
version* and never cascades.  A record whose content was edited fails
its own content check, while its successor's link — committed to the
predecessor's *stored* chain digest — still verifies; a link that
cannot be verified only because its predecessor is already broken is an
advisory, not a second error; a deleted record is reported **at the
deleted version** (its successor's claimed predecessor is missing), so
:attr:`AuditReport.first_broken_version` names exactly the version an
operator should restore from backup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.provenance.chain import (
    ProvenanceLink,
    chain_digest,
    content_digest,
    genesis_digest,
    link_digest_of_payload,
    raw_digest,
    record_digest,
    stamp_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover — typing only, no runtime cycle
    from repro.api.store import PlanStore
    from repro.validation.invariants import PlanValidator

__all__ = ["AuditFinding", "AuditReport", "audit_deployment", "audit_store"]


@dataclass(frozen=True)
class AuditFinding:
    """One audit observation.

    Attributes:
        code: stable machine-readable identifier (``"chain/broken-link"``,
            ``"plan/memory"``, ...).
        severity: ``"error"`` (tampering / corruption / invariant
            violation — fails the audit) or ``"advisory"`` (noteworthy
            but verifiable — the audit stays clean).
        version: the plan version the finding is attributed to (``None``
            for deployment-level findings such as state damage).
        message: human-readable diagnosis.
        context: JSON-safe details (digests, claimed links, ...).
    """

    code: str
    severity: str
    version: int | None
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON view of the finding."""
        return {
            "code": self.code,
            "severity": self.severity,
            "version": self.version,
            "message": self.message,
            "context": dict(self.context),
        }


@dataclass(frozen=True)
class AuditReport:
    """Outcome of auditing one deployment.

    Attributes:
        deployment: the audited deployment's name.
        findings: every observation, in walk order (chain findings
            version-ascending, then state findings, then re-run
            validator findings).
        versions: the stored record versions, ascending.
        applied_stack: the applied stack read from the stored state.
        code_fingerprint: the auditing source tree's own fingerprint
            (:func:`~repro.provenance.chain.stamp_fingerprint`) — what
            stamped fingerprints were compared against.
    """

    deployment: str
    findings: tuple[AuditFinding, ...] = ()
    versions: tuple[int, ...] = ()
    applied_stack: tuple[int, ...] = ()
    code_fingerprint: str = ""

    @property
    def errors(self) -> tuple[AuditFinding, ...]:
        """The error-severity findings."""
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def advisories(self) -> tuple[AuditFinding, ...]:
        """The advisory-severity findings."""
        return tuple(f for f in self.findings if f.severity == "advisory")

    @property
    def ok(self) -> bool:
        """Whether the audit found no errors (advisories allowed)."""
        return not self.errors

    @property
    def error_codes(self) -> tuple[str, ...]:
        """Codes of the error findings, in discovery order."""
        return tuple(f.code for f in self.errors)

    @property
    def first_broken_version(self) -> int | None:
        """Lowest version any error finding is attributed to.

        ``None`` when the audit is clean or every error is
        deployment-level (no version to blame).
        """
        versions = [
            f.version
            for f in self.errors
            if f.version is not None
        ]
        return min(versions) if versions else None

    def to_dict(self) -> dict[str, Any]:
        """Deterministic plain-JSON view (same store → identical bytes)."""
        return {
            "deployment": self.deployment,
            "ok": self.ok,
            "first_broken_version": self.first_broken_version,
            "versions": list(self.versions),
            "applied_stack": list(self.applied_stack),
            "code_fingerprint": self.code_fingerprint,
            "num_errors": len(self.errors),
            "num_advisories": len(self.advisories),
            "findings": [f.to_dict() for f in self.findings],
        }

    def with_findings(self, extra: Sequence[AuditFinding]) -> "AuditReport":
        """This report plus ``extra`` findings appended."""
        return replace(self, findings=self.findings + tuple(extra))


class _Walker:
    """Per-deployment chain-walk state: registered digests and damage."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.findings: list[AuditFinding] = []
        #: version -> the digest a successor's link is verified against
        #: (stored chain digest / legacy content digest / raw bytes).
        self.registered: dict[int, str] = {}
        #: versions already carrying an error — their successors' link
        #: failures become advisories, not cascaded errors.
        self.broken: set[int] = set()

    def error(
        self, code: str, version: int | None, message: str, **context: Any
    ) -> None:
        self.findings.append(
            AuditFinding(code, "error", version, message, dict(context))
        )
        if version is not None:
            self.broken.add(version)

    def advise(
        self, code: str, version: int | None, message: str, **context: Any
    ) -> None:
        self.findings.append(
            AuditFinding(code, "advisory", version, message, dict(context))
        )


def _walk_record(
    walker: _Walker,
    version: int,
    raw: bytes | None,
    genesis: str | None,
    stored_versions: Sequence[int],
) -> Mapping[str, Any] | None:
    """Verify one stored record's digests and chain link.

    Registers the digest successors commit to for ``version`` and
    returns the parsed payload (``None`` when the file is unreadable).
    """
    if raw is None:
        walker.error(
            "chain/unreadable-record",
            version,
            f"plan record v{version} cannot be read",
        )
        return None
    try:
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"expected an object, got {type(payload).__name__}")
    except Exception as exc:  # noqa: BLE001 — any parse failure is a finding
        walker.error(
            "chain/unreadable-record",
            version,
            f"plan record v{version} does not parse "
            f"({type(exc).__name__}: {exc})",
        )
        # A successor written after recovery chained over this file's
        # raw bytes; register them so its link stays verifiable.
        walker.registered[version] = raw_digest(raw)
        return None

    walker.registered[version] = link_digest_of_payload(payload)

    claimed_version = payload.get("version")
    if claimed_version != version:
        walker.error(
            "chain/version-mismatch",
            version,
            f"record file v{version}.json claims version "
            f"{claimed_version!r} — records were renamed or reordered",
            claimed_version=claimed_version,
        )

    provenance = payload.get("provenance")
    if provenance is None:
        walker.advise(
            "chain/legacy-record",
            version,
            f"record v{version} predates the provenance chain "
            "(no chain fields); identified by content digest",
        )
        return payload
    try:
        link = ProvenanceLink.from_dict(provenance)
    except Exception as exc:  # noqa: BLE001 — malformed chain fields
        walker.error(
            "chain/digest-mismatch",
            version,
            f"record v{version} carries malformed provenance "
            f"({type(exc).__name__}: {exc})",
        )
        return payload

    actual_content = content_digest(payload)
    if link.content_digest != actual_content:
        walker.error(
            "chain/content-mismatch",
            version,
            f"record v{version} content does not match its committed "
            "digest — the record was edited",
            committed=link.content_digest,
            actual=actual_content,
        )
    expected_chain = chain_digest(
        version if claimed_version == version else int(claimed_version),
        link.prev_version,
        link.prev_digest,
        link.content_digest,
    )
    if link.chain_digest != expected_chain:
        walker.error(
            "chain/digest-mismatch",
            version,
            f"record v{version}'s chain digest does not match its own "
            "committed fields",
            committed=link.chain_digest,
            expected=expected_chain,
        )

    # --- the predecessor link -----------------------------------------
    earlier = [v for v in stored_versions if v < version]
    pv = link.prev_version
    if pv >= version:
        walker.error(
            "chain/broken-link",
            version,
            f"record v{version} claims a non-prior predecessor v{pv}",
            prev_version=pv,
        )
    elif pv == 0:
        if earlier:
            walker.error(
                "chain/broken-link",
                version,
                f"record v{version} claims the genesis anchor but "
                f"v{earlier[-1]} precedes it",
                prev_version=0,
            )
        elif genesis is None:
            walker.advise(
                "chain/unverifiable-link",
                version,
                f"record v{version}'s genesis link cannot be verified "
                "(deployment metadata is unreadable)",
            )
        elif link.prev_digest != genesis:
            walker.error(
                "chain/broken-link",
                version,
                f"record v{version}'s genesis link does not match the "
                "deployment metadata digest",
                claimed=link.prev_digest,
                expected=genesis,
            )
    elif pv not in walker.registered:
        # The claimed predecessor's file is gone: blame the *deleted*
        # version, so first_broken_version names what to restore.
        walker.error(
            "chain/missing-record",
            pv,
            f"record v{pv} is missing but v{version} commits to it — "
            "a record file was deleted",
            successor=version,
        )
    elif link.prev_digest != walker.registered[pv]:
        if pv in walker.broken:
            walker.advise(
                "chain/unverifiable-link",
                version,
                f"record v{version}'s link to v{pv} cannot be verified "
                f"(v{pv} is already damaged); not cascading",
                prev_version=pv,
            )
        else:
            walker.error(
                "chain/broken-link",
                version,
                f"record v{version}'s committed predecessor digest does "
                f"not match v{pv} as stored",
                prev_version=pv,
                claimed=link.prev_digest,
                expected=walker.registered[pv],
            )
    if pv != 0 and earlier and pv != earlier[-1]:
        walker.advise(
            "chain/fork",
            version,
            f"record v{version} chains to v{pv}, not its immediate "
            f"predecessor v{earlier[-1]} (multi-writer interleaving)",
            prev_version=pv,
            immediate=earlier[-1],
        )

    # --- the validation stamp -----------------------------------------
    validation = payload.get("validation")
    if isinstance(validation, dict):
        stamped_digest = validation.get("validated_digest", "")
        if stamped_digest:
            actual = record_digest(payload)
            if stamped_digest != actual:
                walker.error(
                    "chain/stamp-mismatch",
                    version,
                    f"record v{version}'s validation report is stamped "
                    "with a different record digest — the report and the "
                    "plan disagree",
                    stamped=stamped_digest,
                    actual=actual,
                )
        stamped_fp = validation.get("code_fingerprint", "")
        if stamped_fp and stamped_fp != stamp_fingerprint():
            walker.advise(
                "chain/stamp-fingerprint",
                version,
                f"record v{version} was validated by a different source "
                "tree (code evolved since)",
                stamped=stamped_fp,
            )
    return payload


def _walk_state(
    walker: _Walker,
    state: Mapping[str, Any] | None,
    genesis: str | None,
) -> tuple[list[int], int | None]:
    """Verify the mutable state's provenance stamp.

    Returns the applied stack and memory budget for the validator
    re-run.
    """
    from repro.provenance.chain import state_digest

    if state is None:
        walker.error(
            "chain/state-unreadable", None, "deployment state cannot be read"
        )
        return [], None
    try:
        stack = [int(v) for v in state.get("applied_stack", [])]
    except (TypeError, ValueError):
        walker.error(
            "chain/state-unreadable",
            None,
            f"applied_stack {state.get('applied_stack')!r} is not a list "
            "of integers",
        )
        return [], None
    memory = state.get("memory_bytes")
    memory = int(memory) if memory is not None else None

    stamp = state.get("provenance")
    if stamp is None:
        walker.advise(
            "chain/legacy-state",
            None,
            "deployment state predates the provenance chain (no stamp)",
        )
        return stack, memory
    try:
        anchor_version = int(stamp["anchor_version"])
        anchor_digest = str(stamp["anchor_digest"])
        digest = str(stamp["digest"])
    except Exception as exc:  # noqa: BLE001 — malformed stamp
        walker.error(
            "chain/state-mismatch",
            None,
            f"deployment state carries a malformed provenance stamp "
            f"({type(exc).__name__}: {exc})",
        )
        return stack, memory

    expected = state_digest(stack, memory, anchor_version, anchor_digest)
    if digest != expected:
        walker.error(
            "chain/state-mismatch",
            None,
            "deployment state does not match its own provenance stamp — "
            "the applied stack or budget was edited",
            stamped=digest,
            expected=expected,
        )
    top = stack[-1] if stack else 0
    if anchor_version != top:
        walker.error(
            "chain/state-mismatch",
            None,
            f"state stamp anchors v{anchor_version} but the applied "
            f"stack tops out at {'v%d' % top if top else 'nothing'}",
            anchor_version=anchor_version,
            top=top or None,
        )
    elif top == 0:
        if genesis is not None and anchor_digest != genesis:
            walker.error(
                "chain/state-mismatch",
                None,
                "state stamp's genesis anchor does not match the "
                "deployment metadata digest",
                claimed=anchor_digest,
                expected=genesis,
            )
    elif top in walker.registered:
        if anchor_digest != walker.registered[top]:
            if top in walker.broken:
                walker.advise(
                    "chain/unverifiable-link",
                    None,
                    f"state anchor to v{top} cannot be verified (v{top} "
                    "is already damaged); not cascading",
                    anchor_version=top,
                )
            else:
                walker.error(
                    "chain/state-mismatch",
                    None,
                    f"state stamp's anchor digest does not match v{top} "
                    "as stored",
                    claimed=anchor_digest,
                    expected=walker.registered[top],
                )
    else:
        walker.error(
            "chain/missing-record",
            top,
            f"record v{top} is missing but the state stamp anchors it",
        )
    return stack, memory


def _rerun_validator(
    walker: _Walker,
    payloads: Mapping[int, Mapping[str, Any]],
    stack: Sequence[int],
    memory: int | None,
    validator: "PlanValidator",
) -> None:
    """Re-run the offline invariant suite, folding violations in.

    Mirrors ``repro validate``'s offline unit: records re-built from
    the parseable stored payloads, byte-identity against the store, the
    applied stack, transitions — no engine needed.
    """
    from repro.api.service import PlanRecord

    records = []
    for version in sorted(payloads):
        try:
            records.append(PlanRecord.from_dict(payloads[version]))
        except Exception as exc:  # noqa: BLE001 — parse failure is a finding
            walker.error(
                "record/deserialize",
                version,
                f"record v{version} does not deserialize "
                f"({type(exc).__name__}: {exc})",
            )
    report = validator.validate_history(
        records,
        list(stack),
        stored={v: dict(p) for v, p in payloads.items()},
        subject=f"deployment:{walker.name}",
        memory_bytes=memory,
    )
    # The validator names the version a record *claims*; a tampered
    # version field would misdirect first_broken_version at a version
    # with no file to restore.  Blame the file that makes the claim.
    claimed_to_file = {}
    for file_version in sorted(payloads):
        claimed = payloads[file_version].get("version")
        if isinstance(claimed, int) and claimed != file_version:
            claimed_to_file.setdefault(claimed, file_version)
    for error in report.errors:
        version = error.context.get("version")
        if isinstance(version, int) and version not in payloads:
            version = claimed_to_file.get(version, version)
        walker.error(
            error.code,
            version if isinstance(version, int) else None,
            error.message,
            **{k: v for k, v in error.context.items() if k != "version"},
        )


def audit_deployment(
    store: "PlanStore",
    name: str,
    validator: "PlanValidator | None" = None,
) -> AuditReport:
    """Audit one deployment's stored history offline.

    Args:
        store: the plan store to walk (no engine or bundle is loaded).
        name: the deployment to audit.
        validator: the invariant checker to re-run (a default-configured
            :class:`~repro.validation.invariants.PlanValidator` when
            omitted).

    Returns:
        The :class:`AuditReport`; never raises on damage — every problem
        is a finding.

    Raises:
        FileNotFoundError: when the deployment does not exist at all.
    """
    from repro.validation.invariants import PlanValidator

    if not store.has_deployment(name):
        # Reuse the store's canonical unknown-deployment error.
        store.load_meta(name)
    walker = _Walker(name)

    genesis: str | None
    try:
        meta = store.load_meta(name)
        genesis = genesis_digest(meta)
    except Exception as exc:  # noqa: BLE001 — corrupt metadata is a finding
        walker.error(
            "chain/meta-unreadable",
            None,
            f"deployment metadata cannot be read "
            f"({type(exc).__name__}: {exc})",
        )
        genesis = None

    stored_versions = store.versions(name)
    payloads: dict[int, Mapping[str, Any]] = {}
    for version in stored_versions:
        try:
            raw: bytes | None = store.read_record_bytes(name, version)
        except Exception:  # noqa: BLE001 — listed but unreadable
            raw = None
        payload = _walk_record(walker, version, raw, genesis, stored_versions)
        if payload is not None:
            payloads[version] = payload

    state: Mapping[str, Any] | None
    try:
        state = store.load_state(name)
        if not isinstance(state, dict):
            raise ValueError(
                f"expected an object, got {type(state).__name__}"
            )
    except Exception:  # noqa: BLE001 — corrupt state is a finding
        state = None
    stack, memory = _walk_state(walker, state, genesis)

    _rerun_validator(walker, payloads, stack, memory, validator or PlanValidator())

    return AuditReport(
        deployment=name,
        findings=tuple(walker.findings),
        versions=tuple(stored_versions),
        applied_stack=tuple(stack),
        code_fingerprint=stamp_fingerprint(),
    )


def audit_store(
    store: "PlanStore",
    deployments: Sequence[str] | None = None,
    validator: "PlanValidator | None" = None,
) -> list[AuditReport]:
    """Audit every (or the named) deployment(s) of a store, name-sorted.

    Raises:
        FileNotFoundError: when a named deployment does not exist.
    """
    names = sorted(deployments) if deployments else store.names()
    return [audit_deployment(store, name, validator=validator) for name in names]
