"""Command-line interface: ``python -m repro <command>``.

Mirrors the workflow of the paper's artifact scripts (Appendix I), with
all sharding algorithms served through the :mod:`repro.api` registry:

- ``gen-data`` — synthesize the table pool and save it to JSON
  (the artifact's ``tools/gen_dlrm_data.py``).
- ``gen-tasks`` — generate benchmark sharding tasks and save them to
  JSON (the artifact's ``tools/gen_tasks.py``).
- ``pretrain`` — collect micro-benchmark data on the simulated cluster
  and train the cost models, saving either a bare bundle directory or a
  versioned :class:`~repro.api.store.BundleStore` entry
  (the artifact's ``collect_*_cost_data.py`` + ``train_*_cost_model.py``).
- ``shard`` — load a bundle and run any registered strategy over
  benchmark tasks, reporting simulated and real (simulated-hardware)
  costs (the artifact's ``eval_simulator.py`` / ``eval.py``).  Exits
  non-zero when every task is infeasible.  ``--profile`` additionally
  prints the aggregated search profile (stage timers, evaluation /
  memoization / cache counters — see :mod:`repro.perf`).
- ``compare`` — run one or more registry strategies on the same tasks
  for a side-by-side (the artifact's ``--alg`` flag).
- ``serve-batch`` — answer a tasks file concurrently through
  :meth:`~repro.api.engine.ShardingEngine.shard_batch`, writing
  schema-versioned response JSON.
- ``strategies`` — list every registered strategy.
- ``list-bundles`` — list the contents of a bundle store.

Exit codes: 0 success, 1 usage/input error, 2 every task infeasible.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Sequence

from repro.api import (
    BundleStore,
    ShardingEngine,
    ShardingRequest,
    all_names,
    iter_strategies,
    strategy_info,
)
from repro.config import (
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TaskConfig,
    TrainConfig,
)
from repro.core import NeuroShard
from repro.costmodel import PretrainedCostModels
from repro.data import (
    TablePool,
    generate_tasks,
    load_pool,
    load_tasks,
    save_pool,
    save_tasks,
    synthesize_table_pool,
)
from repro.evaluation import evaluate_sharder, format_text_table
from repro.hardware import SimulatedCluster
from repro.hardware.memory import OutOfMemoryError
from repro.perf import SearchProfile

__all__ = ["main", "build_parser"]

#: All-tasks-infeasible exit status of ``shard`` / ``serve-batch``.
EXIT_ALL_INFEASIBLE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroShard reproduction (MLSys 2023) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen_data = sub.add_parser(
        "gen-data", help="synthesize the table pool, save it as JSON"
    )
    gen_data.add_argument("output", help="pool JSON file to write")
    gen_data.add_argument("--tables", type=int, default=856,
                          help="pool size (paper: 856)")
    gen_data.add_argument("--seed", type=int, default=0)

    gen_tasks = sub.add_parser(
        "gen-tasks", help="generate benchmark sharding tasks, save as JSON"
    )
    gen_tasks.add_argument("output", help="tasks JSON file to write")
    gen_tasks.add_argument("--pool", help="pool JSON from 'gen-data' "
                           "(default: the built-in synthesized pool)")
    gen_tasks.add_argument("--gpus", type=int, default=4)
    gen_tasks.add_argument("--max-dim", type=int, default=128)
    gen_tasks.add_argument("--tasks", type=int, default=100)
    gen_tasks.add_argument("--seed", type=int, default=0)

    pre = sub.add_parser("pretrain", help="pre-train cost models, save a bundle")
    pre.add_argument("output", help="bundle directory (or store root with "
                     "--bundle-name) to create")
    pre.add_argument("--bundle-name", help="save into a versioned bundle "
                     "store under OUTPUT instead of a bare directory")
    pre.add_argument("--gpus", type=int, default=4)
    pre.add_argument("--samples", type=int, default=4000,
                     help="compute-model training samples (paper: 100000)")
    pre.add_argument("--epochs", type=int, default=200,
                     help="training epochs (paper: 1000)")
    pre.add_argument("--seed", type=int, default=0)

    def add_bundle_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("bundle", help="bundle directory from 'pretrain', or "
                       "a bundle-store root")
        p.add_argument("--bundle-name", default="default",
                       help="bundle line when BUNDLE is a store root")
        p.add_argument("--bundle-version", type=int,
                       help="store version (default: latest)")

    shard = sub.add_parser("shard", help="shard benchmark tasks with a bundle")
    add_bundle_args(shard)
    shard.add_argument("--strategy", default="beam", choices=sorted(all_names()),
                       help="registry strategy to run (default: beam)")
    shard.add_argument("--max-dim", type=int, default=128)
    shard.add_argument("--tasks", type=int, default=5)
    shard.add_argument("--tasks-file", help="tasks JSON from 'gen-tasks' "
                       "(overrides --max-dim/--tasks)")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--profile", action="store_true",
                       help="collect search-stage timers and work counters "
                       "(core strategies) and print the aggregate")

    cmp = sub.add_parser("compare", help="run registry strategies on "
                         "benchmark tasks")
    cmp.add_argument("algorithm", nargs="+", choices=sorted(all_names()),
                     help="one or more registry strategies")
    cmp.add_argument("--bundle", help="cost-model bundle (required by "
                     "cost-model-driven strategies)")
    cmp.add_argument("--bundle-name", default="default")
    cmp.add_argument("--bundle-version", type=int)
    cmp.add_argument("--gpus", type=int,
                     help="device count (default: the bundle's, else 4)")
    cmp.add_argument("--max-dim", type=int, default=128)
    cmp.add_argument("--tasks", type=int, default=5)
    cmp.add_argument("--tasks-file", help="tasks JSON from 'gen-tasks' "
                     "(overrides --gpus/--max-dim/--tasks)")
    cmp.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve-batch", help="answer a tasks file through "
                           "the engine's concurrent batch path")
    add_bundle_args(serve)
    serve.add_argument("tasks_file", help="tasks JSON from 'gen-tasks'")
    serve.add_argument("--strategy", default="beam",
                       choices=sorted(all_names()))
    serve.add_argument("--workers", type=int, default=4,
                       help="thread-pool size (default: 4)")
    serve.add_argument("--output", help="write response JSON here "
                       "(default: stdout)")

    strategies = sub.add_parser("strategies", help="list registered "
                                "sharding strategies")
    strategies.add_argument("--category", choices=("core", "baseline",
                            "extension"))

    bundles = sub.add_parser("list-bundles", help="list a bundle store's "
                             "contents")
    bundles.add_argument("store", help="bundle store root directory")
    return parser


def _pool() -> TablePool:
    return TablePool(synthesize_table_pool(seed=0))


def _tasks(pool: TablePool, num_devices: int, max_dim: int, count: int, seed: int):
    lo, hi = (10, 60) if num_devices == 4 else (20, 120)
    cfg = TaskConfig(
        num_devices=num_devices, max_dim=max_dim, min_tables=lo, max_tables=hi
    )
    return generate_tasks(pool, cfg, count=count, seed=seed)


def _load_bundle(args) -> PretrainedCostModels:
    """Resolve ``args.bundle`` as a bare directory or a store entry."""
    if BundleStore.is_raw_bundle(args.bundle):
        return PretrainedCostModels.load(args.bundle)
    return BundleStore(args.bundle).load(
        args.bundle_name, getattr(args, "bundle_version", None)
    )


def _cmd_gen_data(args) -> int:
    print(f"synthesizing a {args.tables}-table pool (seed {args.seed})...")
    pool = TablePool(
        synthesize_table_pool(num_tables=args.tables, seed=args.seed)
    )
    save_pool(pool, args.output)
    print(f"saved pool to {args.output}")
    return 0


def _cmd_gen_tasks(args) -> int:
    pool = load_pool(args.pool) if args.pool else _pool()
    tasks = _tasks(pool, args.gpus, args.max_dim, args.tasks, args.seed)
    save_tasks(tasks, args.output)
    print(f"{len(tasks)} sharding tasks generated!")
    print(f"saved tasks to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    pool = _pool()
    cluster = SimulatedCluster(ClusterConfig(num_devices=args.gpus))
    print(
        f"collecting {args.samples} compute samples and training for "
        f"{args.epochs} epochs on a simulated {args.gpus}-GPU cluster..."
    )
    sharder, report = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(
            num_compute_samples=args.samples,
            num_comm_samples=max(args.samples // 3, 300),
        ).for_devices(args.gpus),
        train=TrainConfig(epochs=args.epochs),
        seed=args.seed,
    )
    mse_rows = report.test_mse_rows()
    for name, mse in mse_rows.items():
        print(f"  {name:24s} test MSE = {mse:.3f} ms^2")
    if args.bundle_name:
        info = BundleStore(args.output).save(
            sharder.models,
            args.bundle_name,
            metadata={"test_mse": mse_rows, "seed": args.seed},
        )
        print(f"saved bundle {info.version_tag} to {info.path}")
    else:
        sharder.models.save(args.output)
        print(f"saved bundle to {args.output}")
    return 0


def _load_or_generate_tasks(args, num_devices: int):
    """Tasks for shard/compare; ``None`` on a device-count mismatch."""
    if args.tasks_file:
        tasks = load_tasks(args.tasks_file)
        bad = [t.task_id for t in tasks if t.num_devices != num_devices]
        if bad:
            print(
                f"error: tasks {bad} target a different device count than "
                f"the expected {num_devices}",
                file=sys.stderr,
            )
            return None
        return tasks
    return _tasks(_pool(), num_devices, args.max_dim, args.tasks, args.seed)


def _infeasible_exit(num_success: int, num_tasks: int, strategy: str) -> int:
    """The all-tasks-infeasible contract: stderr one-liner + exit 2."""
    if num_tasks and num_success == 0:
        print(
            f"error: {strategy} produced no feasible plan on any of "
            f"{num_tasks} tasks",
            file=sys.stderr,
        )
        return EXIT_ALL_INFEASIBLE
    return 0


def _cmd_shard(args) -> int:
    try:
        bundle = _load_bundle(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    num_devices = bundle.num_devices
    cluster = SimulatedCluster(ClusterConfig(num_devices=num_devices))
    tasks = _load_or_generate_tasks(args, num_devices)
    if tasks is None:
        return 1
    engine = ShardingEngine(
        cluster, bundle, search=SearchConfig(), default_strategy=args.strategy
    )
    try:
        strategy_name = getattr(
            engine.sharder_for(args.strategy), "name", args.strategy
        )
    except Exception as exc:  # factory error, e.g. guided without a policy
        print(f"error: {exc}", file=sys.stderr)
        return 1
    options = {}
    if getattr(args, "profile", False):
        if strategy_info(args.strategy).category == "core":
            options = {"profile": True}
        else:
            print(
                f"note: --profile instruments the core search; strategy "
                f"{args.strategy!r} reports timing only",
                file=sys.stderr,
            )
    responses = [
        engine.shard(ShardingRequest(task, options=options)) for task in tasks
    ]

    rows = []
    real_costs = []
    errors = []
    for task, resp in zip(tasks, responses):
        real = math.nan
        if resp.plan is not None:
            per_device = resp.plan.per_device_tables(resp.plan_tables(task))
            try:
                real = cluster.evaluate_plan(per_device).max_cost_ms
            except OutOfMemoryError:
                pass
        ok = resp.feasible and not math.isnan(real)
        if resp.error is not None:
            status = "error"
            errors.append((task.task_id, resp.error))
        else:
            status = "ok" if ok else "OOM"
        rows.append([task.task_id, status, real, resp.sharding_time_s])
        if ok:
            real_costs.append(real)
    for task_id, message in errors:
        print(f"task {task_id}: {message}", file=sys.stderr)
    print(
        format_text_table(
            ["task", "status", "real cost (ms)", "search time (s)"],
            rows,
            title=f"{strategy_name} on {len(tasks)} tasks "
            f"({num_devices} GPUs, max dim {args.max_dim})",
        )
    )
    all_ok = len(real_costs) == len(tasks)
    mean = sum(real_costs) / len(real_costs) if all_ok and real_costs else math.nan
    print(f"Average: {'-' if math.isnan(mean) else f'{mean:.3f}'}")
    print(f"Valid {len(real_costs)} / {len(tasks)}")
    if getattr(args, "profile", False):
        aggregate = SearchProfile()
        profiled = 0
        for resp in responses:
            if resp.profile is not None:
                aggregate.merge(resp.profile)
                profiled += 1
        if profiled:  # non-core strategies report no search profile
            print(f"\nsearch profile (aggregated over {profiled} tasks):")
            for line in aggregate.format_lines():
                print(line)
    return _infeasible_exit(len(real_costs), len(tasks), strategy_name)


def _cmd_compare(args) -> int:
    bundle = None
    if args.bundle:
        try:
            bundle = _load_bundle(
                argparse.Namespace(
                    bundle=args.bundle,
                    bundle_name=args.bundle_name,
                    bundle_version=args.bundle_version,
                )
            )
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    needy = [
        name for name in args.algorithm
        if strategy_info(name).needs_bundle and bundle is None
    ]
    if needy:
        print(
            f"error: strategies {needy} need a cost-model bundle; pass "
            "--bundle",
            file=sys.stderr,
        )
        return 1
    if args.tasks_file:
        tasks = load_tasks(args.tasks_file)
        num_devices = tasks[0].num_devices
    else:
        num_devices = args.gpus or (
            bundle.num_devices if bundle is not None else 4
        )
        tasks = _tasks(_pool(), num_devices, args.max_dim, args.tasks, args.seed)
    if bundle is not None and bundle.num_devices != num_devices:
        print(
            f"error: the tasks target {num_devices} devices but the bundle "
            f"was pre-trained for {bundle.num_devices}",
            file=sys.stderr,
        )
        return 1
    cluster = SimulatedCluster(ClusterConfig(num_devices=num_devices))
    engine = ShardingEngine(
        cluster, bundle, strategy_kwargs={"random": {"seed": args.seed}}
    )
    for name in args.algorithm:
        try:
            sharder = engine.sharder_for(name)
        except Exception as exc:  # factory error, e.g. guided w/o policy
            print(f"error: {exc}", file=sys.stderr)
            return 1
        evaluation = evaluate_sharder(
            sharder, tasks, cluster, name=strategy_info(name).name
        )
        mean = evaluation.mean_cost_ms
        if len(args.algorithm) > 1:
            print(f"[{evaluation.method}]")
        print(f"Average: {'-' if math.isnan(mean) else f'{mean:.3f}'}")
        print(f"Valid {evaluation.num_success} / {evaluation.num_tasks}")
    return 0


def _cmd_serve_batch(args) -> int:
    try:
        bundle = _load_bundle(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    cluster = SimulatedCluster(ClusterConfig(num_devices=bundle.num_devices))
    tasks = load_tasks(args.tasks_file)
    bad = [t.task_id for t in tasks if t.num_devices != bundle.num_devices]
    if bad:
        print(
            f"error: tasks {bad} target a different device count than the "
            f"bundle's {bundle.num_devices}",
            file=sys.stderr,
        )
        return 1
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 1
    engine = ShardingEngine(cluster, bundle, default_strategy=args.strategy)
    requests = [
        ShardingRequest(task, strategy=args.strategy, request_id=str(task.task_id))
        for task in tasks
    ]
    responses = engine.shard_batch(requests, max_workers=args.workers)
    payload = json.dumps([r.to_dict() for r in responses], indent=1)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"wrote {len(responses)} responses to {args.output}")
    else:
        print(payload)
    feasible = sum(1 for r in responses if r.feasible)
    print(
        f"{args.strategy}: {feasible} / {len(responses)} feasible "
        f"({args.workers} workers)",
        file=sys.stderr if feasible == 0 else sys.stdout,
    )
    return 0 if feasible else EXIT_ALL_INFEASIBLE


def _cmd_strategies(args) -> int:
    rows = [
        [
            info.name,
            info.category,
            "yes" if info.needs_bundle else "no",
            ", ".join(info.aliases) or "-",
            info.description,
        ]
        for info in iter_strategies()
        if args.category is None or info.category == args.category
    ]
    print(
        format_text_table(
            ["strategy", "category", "bundle?", "aliases", "description"],
            rows,
            title=f"{len(rows)} registered sharding strategies",
        )
    )
    return 0


def _cmd_list_bundles(args) -> int:
    store = BundleStore(args.store)
    infos = store.list_bundles()
    if not infos:
        print(f"no bundles in {args.store}")
        return 0
    rows = [
        [i.version_tag, i.num_devices, i.batch_size, i.path] for i in infos
    ]
    print(
        format_text_table(
            ["bundle", "gpus", "batch", "path"],
            rows,
            title=f"{len(infos)} bundles in {args.store}",
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "gen-data": _cmd_gen_data,
        "gen-tasks": _cmd_gen_tasks,
        "pretrain": _cmd_pretrain,
        "shard": _cmd_shard,
        "compare": _cmd_compare,
        "serve-batch": _cmd_serve_batch,
        "strategies": _cmd_strategies,
        "list-bundles": _cmd_list_bundles,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
