"""Command-line interface: ``python -m repro <command>``.

Mirrors the workflow of the paper's artifact scripts (Appendix I):

- ``gen-data`` — synthesize the table pool and save it to JSON
  (the artifact's ``tools/gen_dlrm_data.py``).
- ``gen-tasks`` — generate benchmark sharding tasks and save them to
  JSON (the artifact's ``tools/gen_tasks.py``).
- ``pretrain`` — collect micro-benchmark data on the simulated cluster
  and train the cost models, saving a bundle directory
  (the artifact's ``collect_*_cost_data.py`` + ``train_*_cost_model.py``).
- ``shard`` — load a bundle, generate (or load) benchmark tasks and run
  the online search, reporting simulated and real (simulated-hardware)
  costs (the artifact's ``eval_simulator.py`` / ``eval.py``).
- ``compare`` — run a baseline algorithm on the same tasks for a
  side-by-side (the artifact's ``--alg`` flag).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.baselines import (
    GREEDY_COSTS,
    GreedySharder,
    MilpSharder,
    PlannerSharder,
    RandomSharder,
)
from repro.config import (
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TaskConfig,
    TrainConfig,
)
from repro.core import NeuroShard
from repro.data import (
    TablePool,
    generate_tasks,
    load_pool,
    load_tasks,
    save_pool,
    save_tasks,
    synthesize_table_pool,
)
from repro.evaluation import evaluate_sharder, format_text_table
from repro.hardware import SimulatedCluster

__all__ = ["main", "build_parser"]

_BASELINES = {
    "random": lambda seed: RandomSharder(seed=seed),
    "size_greedy": lambda seed: GreedySharder("Size-based"),
    "dim_greedy": lambda seed: GreedySharder("Dim-based"),
    "lookup_greedy": lambda seed: GreedySharder("Lookup-based"),
    "size_lookup_greedy": lambda seed: GreedySharder("Size-lookup-based"),
    "torchrec": lambda seed: PlannerSharder(),
    "milp": lambda seed: MilpSharder(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroShard reproduction (MLSys 2023) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen_data = sub.add_parser(
        "gen-data", help="synthesize the table pool, save it as JSON"
    )
    gen_data.add_argument("output", help="pool JSON file to write")
    gen_data.add_argument("--tables", type=int, default=856,
                          help="pool size (paper: 856)")
    gen_data.add_argument("--seed", type=int, default=0)

    gen_tasks = sub.add_parser(
        "gen-tasks", help="generate benchmark sharding tasks, save as JSON"
    )
    gen_tasks.add_argument("output", help="tasks JSON file to write")
    gen_tasks.add_argument("--pool", help="pool JSON from 'gen-data' "
                           "(default: the built-in synthesized pool)")
    gen_tasks.add_argument("--gpus", type=int, default=4)
    gen_tasks.add_argument("--max-dim", type=int, default=128)
    gen_tasks.add_argument("--tasks", type=int, default=100)
    gen_tasks.add_argument("--seed", type=int, default=0)

    pre = sub.add_parser("pretrain", help="pre-train cost models, save a bundle")
    pre.add_argument("output", help="bundle directory to create")
    pre.add_argument("--gpus", type=int, default=4)
    pre.add_argument("--samples", type=int, default=4000,
                     help="compute-model training samples (paper: 100000)")
    pre.add_argument("--epochs", type=int, default=200,
                     help="training epochs (paper: 1000)")
    pre.add_argument("--seed", type=int, default=0)

    shard = sub.add_parser("shard", help="shard benchmark tasks with a bundle")
    shard.add_argument("bundle", help="bundle directory from 'pretrain'")
    shard.add_argument("--max-dim", type=int, default=128)
    shard.add_argument("--tasks", type=int, default=5)
    shard.add_argument("--tasks-file", help="tasks JSON from 'gen-tasks' "
                       "(overrides --max-dim/--tasks)")
    shard.add_argument("--seed", type=int, default=0)

    cmp = sub.add_parser("compare", help="run a baseline on benchmark tasks")
    cmp.add_argument("algorithm", choices=sorted(_BASELINES))
    cmp.add_argument("--gpus", type=int, default=4)
    cmp.add_argument("--max-dim", type=int, default=128)
    cmp.add_argument("--tasks", type=int, default=5)
    cmp.add_argument("--tasks-file", help="tasks JSON from 'gen-tasks' "
                     "(overrides --gpus/--max-dim/--tasks)")
    cmp.add_argument("--seed", type=int, default=0)
    return parser


def _pool() -> TablePool:
    return TablePool(synthesize_table_pool(seed=0))


def _tasks(pool: TablePool, num_devices: int, max_dim: int, count: int, seed: int):
    lo, hi = (10, 60) if num_devices == 4 else (20, 120)
    cfg = TaskConfig(
        num_devices=num_devices, max_dim=max_dim, min_tables=lo, max_tables=hi
    )
    return generate_tasks(pool, cfg, count=count, seed=seed)


def _cmd_gen_data(args) -> int:
    print(f"synthesizing a {args.tables}-table pool (seed {args.seed})...")
    pool = TablePool(
        synthesize_table_pool(num_tables=args.tables, seed=args.seed)
    )
    save_pool(pool, args.output)
    print(f"saved pool to {args.output}")
    return 0


def _cmd_gen_tasks(args) -> int:
    pool = load_pool(args.pool) if args.pool else _pool()
    tasks = _tasks(pool, args.gpus, args.max_dim, args.tasks, args.seed)
    save_tasks(tasks, args.output)
    print(f"{len(tasks)} sharding tasks generated!")
    print(f"saved tasks to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    pool = _pool()
    cluster = SimulatedCluster(ClusterConfig(num_devices=args.gpus))
    print(
        f"collecting {args.samples} compute samples and training for "
        f"{args.epochs} epochs on a simulated {args.gpus}-GPU cluster..."
    )
    sharder, report = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(
            num_compute_samples=args.samples,
            num_comm_samples=max(args.samples // 3, 300),
        ).for_devices(args.gpus),
        train=TrainConfig(epochs=args.epochs),
        seed=args.seed,
    )
    for name, mse in report.test_mse_rows().items():
        print(f"  {name:24s} test MSE = {mse:.3f} ms^2")
    sharder.models.save(args.output)
    print(f"saved bundle to {args.output}")
    return 0


def _cmd_shard(args) -> int:
    sharder = NeuroShard.from_directory(args.bundle, search=SearchConfig())
    num_devices = sharder.models.num_devices
    cluster = SimulatedCluster(ClusterConfig(num_devices=num_devices))
    if args.tasks_file:
        tasks = load_tasks(args.tasks_file)
        bad = [t.task_id for t in tasks if t.num_devices != num_devices]
        if bad:
            print(
                f"error: tasks {bad} target a different device count than "
                f"the bundle's {num_devices}",
                file=sys.stderr,
            )
            return 1
    else:
        tasks = _tasks(_pool(), num_devices, args.max_dim, args.tasks, args.seed)
    evaluation = evaluate_sharder(sharder, tasks, cluster, name="NeuroShard")
    rows = [
        [o.task_id, "ok" if o.success else "OOM", o.cost_ms, o.sharding_time_s]
        for o in evaluation.outcomes
    ]
    print(
        format_text_table(
            ["task", "status", "real cost (ms)", "search time (s)"],
            rows,
            title=f"NeuroShard on {len(tasks)} tasks "
            f"({num_devices} GPUs, max dim {args.max_dim})",
        )
    )
    mean = evaluation.mean_cost_ms
    print(f"Average: {'-' if math.isnan(mean) else f'{mean:.3f}'}")
    print(f"Valid {evaluation.num_success} / {evaluation.num_tasks}")
    return 0


def _cmd_compare(args) -> int:
    if args.tasks_file:
        tasks = load_tasks(args.tasks_file)
        num_devices = tasks[0].num_devices
        cluster = SimulatedCluster(ClusterConfig(num_devices=num_devices))
    else:
        cluster = SimulatedCluster(ClusterConfig(num_devices=args.gpus))
        tasks = _tasks(_pool(), args.gpus, args.max_dim, args.tasks, args.seed)
    sharder = _BASELINES[args.algorithm](args.seed)
    evaluation = evaluate_sharder(sharder, tasks, cluster)
    mean = evaluation.mean_cost_ms
    print(f"Average: {'-' if math.isnan(mean) else f'{mean:.3f}'}")
    print(f"Valid {evaluation.num_success} / {evaluation.num_tasks}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "gen-data": _cmd_gen_data,
        "gen-tasks": _cmd_gen_tasks,
        "pretrain": _cmd_pretrain,
        "shard": _cmd_shard,
        "compare": _cmd_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
