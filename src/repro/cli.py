"""Command-line interface: ``python -m repro <command>``.

Mirrors the workflow of the paper's artifact scripts (Appendix I), with
all sharding algorithms served through the :mod:`repro.api` registry:

- ``gen-data`` — synthesize the table pool and save it to JSON
  (the artifact's ``tools/gen_dlrm_data.py``).
- ``gen-tasks`` — generate benchmark sharding tasks and save them to
  JSON (the artifact's ``tools/gen_tasks.py``).
- ``pretrain`` — collect micro-benchmark data on the simulated cluster
  and train the cost models, saving either a bare bundle directory or a
  versioned :class:`~repro.api.store.BundleStore` entry
  (the artifact's ``collect_*_cost_data.py`` + ``train_*_cost_model.py``).
- ``shard`` — load a bundle and run any registered strategy over
  benchmark tasks, reporting simulated and real (simulated-hardware)
  costs (the artifact's ``eval_simulator.py`` / ``eval.py``).  Exits
  non-zero when every task is infeasible.  ``--profile`` additionally
  prints the aggregated search profile (stage timers, evaluation /
  memoization / cache counters — see :mod:`repro.perf`).
- ``compare`` — run one or more registry strategies on the same tasks
  for a side-by-side (the artifact's ``--alg`` flag).
- ``serve-batch`` — answer a tasks file concurrently through
  :meth:`~repro.api.engine.ShardingEngine.shard_batch`, writing
  schema-versioned response JSON.
- ``serve`` — run the plan-lifecycle HTTP server
  (:mod:`repro.api.server`) over a deployment store.
- ``deployment`` — drive the plan lifecycle from the shell:
  ``create / plan / apply / reshard / rollback / status / history /
  list`` against a persistent :class:`~repro.api.store.PlanStore`.
- ``scenario`` — the workload scenario atlas (:mod:`repro.scenarios`):
  ``list`` the registry, ``run`` one scenario's trace through the
  lifecycle service (per-step report, optional JSON artifacts),
  ``compare`` several scenarios' aggregate replay metrics side by side.
- ``simulate`` — the discrete-event cluster simulator
  (:mod:`repro.simulator`): ``list`` the online-policy registry,
  ``run`` one policy over one scenario regime (time-weighted SLO
  metrics, optional report JSON), ``compare`` a policy x scenario
  matrix side by side.
- ``validate`` — run the invariant suite (:mod:`repro.validation`) over
  stored deployments (plan structure, memory feasibility, lifecycle
  conservation laws, store byte-identity) and/or stored bundles
  (manifest + loadability).  No engine or bundle is needed to validate
  a plan store: the checks re-derive everything from the stored records.
- ``audit`` — verify a plan store's provenance hash chain offline
  (:mod:`repro.provenance`): every record's committed content digest
  and predecessor link, every validation stamp, the state anchor, plus
  a full validator re-run — localizing any tampering, deletion or
  reordering to the first offending version.  Like ``validate``, no
  engine or bundle is needed: a store copied off a production box is
  independently checkable.
- ``strategies`` — list every registered strategy.
- ``list-bundles`` — list the contents of a bundle store.

Exit codes: 0 success, 1 usage/input error, 2 everything infeasible
(``shard`` / ``serve-batch`` / ``deployment plan`` / ``deployment
reshard`` / ``deployment apply`` with the failing task ids on stderr;
``scenario run`` when the initial workload is unplannable or every
reshard step of the replay fails, failing step numbers on stderr;
``validate`` when *any* validated unit has violations — a validator
that half-passes must not exit 0 — with the failing deployment/bundle
names on stderr; ``audit`` when any audited deployment has
error-severity findings, with the first broken version per failing
deployment on stderr).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import signal
import sys
from typing import Sequence

import numpy as np

from repro.api import (
    BundleStore,
    EngineSpec,
    PlanStore,
    ReshardConfig,
    ShardingEngine,
    ShardingHTTPServer,
    ShardingRequest,
    ShardingService,
    WorkerPool,
    WorkloadDelta,
    all_names,
    iter_strategies,
    strategy_info,
)
from repro.config import (
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TaskConfig,
    TrainConfig,
)
from repro.core import NeuroShard
from repro.costmodel import PretrainedCostModels
from repro.data import (
    TablePool,
    generate_tasks,
    load_pool,
    load_tasks,
    save_pool,
    save_tasks,
    synthesize_table_pool,
)
from repro.evaluation import (
    REPLAY_SEARCH_CONFIG,
    evaluate_sharder,
    format_text_table,
    replay_workload_trace,
)
from repro.hardware import SimulatedCluster
from repro.hardware.memory import OutOfMemoryError
from repro.perf import SearchProfile
from repro.scenarios import (
    UnknownScenarioError,
    format_scenario_report,
    iter_scenarios,
    make_trace,
)
from repro.scenarios.catalog import DEFAULT_MEMORY_BYTES
from repro.simulator import (
    FleetSpec,
    SimulationConfig,
    UnknownPolicyError,
    available_policies,
    format_policy_matrix,
    format_simulation_report,
    iter_policies,
    make_policy,
    simulate_policy,
)
from repro.tuning import (
    DEFAULT_SEARCH_SPACE,
    list_profiles,
    load_profile,
    profile_path,
    save_profile,
    tune_scenario,
)
from repro.utils import parse_key_value_args

__all__ = ["main", "build_parser"]

#: All-tasks-infeasible exit status of ``shard`` / ``serve-batch``.
EXIT_ALL_INFEASIBLE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuroShard reproduction (MLSys 2023) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen_data = sub.add_parser(
        "gen-data", help="synthesize the table pool, save it as JSON"
    )
    gen_data.add_argument("output", help="pool JSON file to write")
    gen_data.add_argument("--tables", type=int, default=856,
                          help="pool size (paper: 856)")
    gen_data.add_argument("--seed", type=int, default=0)

    gen_tasks = sub.add_parser(
        "gen-tasks", help="generate benchmark sharding tasks, save as JSON"
    )
    gen_tasks.add_argument("output", help="tasks JSON file to write")
    gen_tasks.add_argument("--pool", help="pool JSON from 'gen-data' "
                           "(default: the built-in synthesized pool)")
    gen_tasks.add_argument("--gpus", type=int, default=4)
    gen_tasks.add_argument("--max-dim", type=int, default=128)
    gen_tasks.add_argument("--tasks", type=int, default=100)
    gen_tasks.add_argument("--seed", type=int, default=0)

    pre = sub.add_parser("pretrain", help="pre-train cost models, save a bundle")
    pre.add_argument("output", help="bundle directory (or store root with "
                     "--bundle-name) to create")
    pre.add_argument("--bundle-name", help="save into a versioned bundle "
                     "store under OUTPUT instead of a bare directory")
    pre.add_argument("--gpus", type=int, default=4)
    pre.add_argument("--samples", type=int, default=4000,
                     help="compute-model training samples (paper: 100000)")
    pre.add_argument("--epochs", type=int, default=200,
                     help="training epochs (paper: 1000)")
    pre.add_argument("--seed", type=int, default=0)

    def add_bundle_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("bundle", help="bundle directory from 'pretrain', or "
                       "a bundle-store root")
        p.add_argument("--bundle-name", default="default",
                       help="bundle line when BUNDLE is a store root")
        p.add_argument("--bundle-version", type=int,
                       help="store version (default: latest)")

    shard = sub.add_parser("shard", help="shard benchmark tasks with a bundle")
    add_bundle_args(shard)
    shard.add_argument("--strategy", default="beam", choices=sorted(all_names()),
                       help="registry strategy to run (default: beam)")
    shard.add_argument("--max-dim", type=int, default=128)
    shard.add_argument("--tasks", type=int, default=5)
    shard.add_argument("--tasks-file", help="tasks JSON from 'gen-tasks' "
                       "(overrides --max-dim/--tasks)")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--profile", action="store_true",
                       help="collect search-stage timers and work counters "
                       "(core strategies) and print the aggregate")

    cmp = sub.add_parser("compare", help="run registry strategies on "
                         "benchmark tasks")
    cmp.add_argument("algorithm", nargs="+", choices=sorted(all_names()),
                     help="one or more registry strategies")
    cmp.add_argument("--bundle", help="cost-model bundle (required by "
                     "cost-model-driven strategies)")
    cmp.add_argument("--bundle-name", default="default")
    cmp.add_argument("--bundle-version", type=int)
    cmp.add_argument("--gpus", type=int,
                     help="device count (default: the bundle's, else 4)")
    cmp.add_argument("--max-dim", type=int, default=128)
    cmp.add_argument("--tasks", type=int, default=5)
    cmp.add_argument("--tasks-file", help="tasks JSON from 'gen-tasks' "
                     "(overrides --gpus/--max-dim/--tasks)")
    cmp.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve-batch", help="answer a tasks file through "
                           "the engine's concurrent batch path")
    add_bundle_args(serve)
    serve.add_argument("tasks_file", help="tasks JSON from 'gen-tasks'")
    serve.add_argument("--strategy", default="beam",
                       choices=sorted(all_names()))
    serve.add_argument("--workers", type=int, default=4,
                       help="thread-pool size (default: 4)")
    serve.add_argument("--output", help="write response JSON here "
                       "(default: stdout)")

    serve_http = sub.add_parser("serve", help="run the plan-lifecycle HTTP "
                                "server over a deployment store")
    add_bundle_args(serve_http)
    serve_http.add_argument("--store", required=True,
                            help="plan-store root directory (deployments "
                            "persist here)")
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument("--port", type=int, default=8731)
    serve_http.add_argument("--max-batch", type=int, default=8,
                            help="plan micro-batch size (default: 8)")
    serve_http.add_argument("--batch-wait-ms", type=float, default=10.0,
                            help="micro-batch collection window (default: 10)")
    serve_http.add_argument("--workers", type=int, default=1,
                            help="process-pool search workers; 1 serves "
                            "in-process (default: 1)")
    serve_http.add_argument("--request-timeout", type=float, default=60.0,
                            help="per-connection socket timeout in seconds "
                            "(default: 60)")
    serve_http.add_argument("--verbose", action="store_true",
                            help="log one line per HTTP request")

    dep = sub.add_parser("deployment", help="drive the plan lifecycle: "
                         "create/plan/apply/reshard/rollback/status/history")
    dep_sub = dep.add_subparsers(dest="action", required=True)

    def add_dep_args(p: argparse.ArgumentParser, bundle: bool = True) -> None:
        p.add_argument("name", help="deployment name")
        p.add_argument("--store", required=True,
                       help="plan-store root directory")
        if bundle:
            add_bundle_args(p)

    dep_create = dep_sub.add_parser("create", help="register a deployment "
                                    "with an initial workload")
    add_dep_args(dep_create)
    dep_create.add_argument("--tasks-file", help="tasks JSON from "
                            "'gen-tasks'; the first task is the workload")
    dep_create.add_argument("--task-index", type=int, default=0,
                            help="which task of --tasks-file to deploy")
    dep_create.add_argument("--max-dim", type=int, default=128)
    dep_create.add_argument("--seed", type=int, default=0)
    dep_create.add_argument("--memory-bytes", type=int,
                            help="per-device budget (default: 4 GiB)")
    dep_create.add_argument("--profile", metavar="PROFILE_JSON",
                            help="TunedProfile JSON from 'tune run'; its "
                            "chosen search/reshard knobs become the "
                            "deployment defaults")

    dep_plan = dep_sub.add_parser("plan", help="compute a new plan version "
                                  "for the current workload")
    add_dep_args(dep_plan)
    dep_plan.add_argument("--strategy", choices=sorted(all_names()),
                          help="registry strategy (deployment default "
                          "when omitted)")

    dep_apply = dep_sub.add_parser("apply", help="make a plan version live")
    add_dep_args(dep_apply)
    dep_apply.add_argument("--version", type=int,
                           help="record to apply (default: latest feasible)")

    dep_reshard = dep_sub.add_parser("reshard", help="incrementally re-plan "
                                     "for a changed workload")
    add_dep_args(dep_reshard)
    dep_reshard.add_argument("--add", type=int, default=0, metavar="N",
                             help="add N fresh tables sampled from the "
                             "built-in pool")
    dep_reshard.add_argument("--remove", type=int, nargs="*", default=[],
                             metavar="TABLE_ID",
                             help="table ids to drop from the workload")
    dep_reshard.add_argument("--max-dim", type=int, default=128,
                             help="max dimension of added tables")
    dep_reshard.add_argument("--seed", type=int, default=0,
                             help="sampling seed of added tables")
    dep_reshard.add_argument("--budget-ms", type=float,
                             help="hard migration budget (default: "
                             "unbounded)")
    dep_reshard.add_argument("--lam", type=float, default=1e-4,
                             help="migration amortization weight lambda "
                             "(default: 1e-4)")
    dep_reshard.add_argument("--no-full-search", action="store_true",
                             help="skip the from-scratch candidate")
    dep_reshard.add_argument("--no-apply", action="store_true",
                             help="record the reshard without applying it")
    dep_reshard.add_argument("--strategy", choices=sorted(all_names()),
                             help="full-search strategy")

    dep_rollback = dep_sub.add_parser("rollback", help="restore the "
                                      "previously applied plan version")
    add_dep_args(dep_rollback)

    dep_status = dep_sub.add_parser("status", help="one deployment's "
                                    "operational snapshot")
    add_dep_args(dep_status)

    dep_history = dep_sub.add_parser("history", help="all plan records of "
                                     "one deployment")
    add_dep_args(dep_history)

    dep_list = dep_sub.add_parser("list", help="deployments in a store")
    dep_list.add_argument("--store", required=True,
                          help="plan-store root directory")
    add_bundle_args(dep_list)

    scen = sub.add_parser("scenario", help="workload scenario atlas: "
                          "list/run/compare production regimes")
    scen_sub = scen.add_subparsers(dest="action", required=True)

    scen_list = scen_sub.add_parser("list", help="list registered workload "
                                    "scenarios")
    scen_list.add_argument("--tag", help="only scenarios carrying this tag")

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        add_bundle_args(p)
        p.add_argument("--seed", type=int, default=0,
                       help="trace generator seed (default: 0)")
        p.add_argument("--pool-seed", type=int, default=0,
                       help="synthesis seed of the table pool the "
                       "scenario samples from (default: 0; the "
                       "committed benchmark artifacts use 2023)")
        p.add_argument("--tables", type=int,
                       help="initial workload size (scenario default "
                       "when omitted)")
        p.add_argument("--steps", type=int,
                       help="trace steps (scenario default when omitted)")
        p.add_argument("--memory-bytes", type=int,
                       help="base per-device budget (default: 2 GiB)")
        p.add_argument("--budget-ms", type=float,
                       help="hard migration budget per reshard step "
                       "(default: unbounded)")
        p.add_argument("--lam", type=float, default=1e-4,
                       help="migration amortization weight lambda "
                       "(default: 1e-4)")
        p.add_argument("--refine-steps", type=int, default=32,
                       help="local-search bound per reshard (default: 32)")
        p.add_argument("--no-full-search", action="store_true",
                       help="skip the re-shard-from-scratch candidate")
        p.add_argument("--strategy", choices=sorted(all_names()),
                       help="full-search strategy (engine default when "
                       "omitted)")

    scen_run = scen_sub.add_parser("run", help="replay one scenario through "
                                   "the plan-lifecycle service")
    scen_run.add_argument("name", help="registry scenario name "
                          "(see 'scenario list')")
    add_scenario_args(scen_run)
    scen_run.add_argument("--output", help="write the ScenarioReport JSON "
                          "here")
    scen_run.add_argument("--trace-output", help="write the generated "
                          "WorkloadTrace JSON here")

    scen_cmp = scen_sub.add_parser("compare", help="replay several scenarios, "
                                   "summarize side by side")
    scen_cmp.add_argument("names", nargs="+", metavar="name",
                          help="registry scenario names (see "
                          "'scenario list')")
    add_scenario_args(scen_cmp)

    sim = sub.add_parser("simulate", help="discrete-event cluster "
                         "simulation: online when-to-reshard policies "
                         "over scenario regimes")
    sim_sub = sim.add_subparsers(dest="action", required=True)

    sim_sub.add_parser("list", help="list registered online resharding "
                       "policies")

    def add_simulate_args(p: argparse.ArgumentParser) -> None:
        add_scenario_args(p)
        p.add_argument("--slo-factor", type=float, default=1.5,
                       help="SLO = factor x initial plan cost "
                       "(default: 1.5)")
        p.add_argument("--tick-hours", type=float, default=1.0,
                       help="policy wake-up cadence in simulated hours "
                       "(default: 1.0)")
        p.add_argument("--horizon-hours", type=float,
                       help="simulated span (default: one tick past the "
                       "last scheduled event)")
        p.add_argument("--sim-seed", type=int, default=0,
                       help="seed of the fleet/machine processes "
                       "(default: 0)")
        p.add_argument("--mtbf-hours", type=float, default=0.0,
                       help="per-device mean time between failures; 0 "
                       "disables device flaps (default: 0)")
        p.add_argument("--mttr-hours", type=float, default=0.25,
                       help="mean repair time of a down device "
                       "(default: 0.25)")
        p.add_argument("--straggler-rate", type=float, default=0.0,
                       help="straggler episodes per device-hour; 0 "
                       "disables stragglers (default: 0)")
        p.add_argument("--straggler-hours", type=float, default=0.5,
                       help="mean straggler episode duration "
                       "(default: 0.5)")

    sim_run = sim_sub.add_parser("run", help="simulate one policy over one "
                                 "scenario regime")
    sim_run.add_argument("name", help="registry scenario name "
                         "(see 'scenario list')")
    add_simulate_args(sim_run)
    sim_run.add_argument("--policy", default="periodic",
                         help="online policy (see 'simulate list'; "
                         "default: periodic)")
    sim_run.add_argument("--policy-arg", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="policy knob override, repeatable "
                         "(e.g. --policy-arg interval_hours=4)")
    sim_run.add_argument("--output", help="write the SimulationReport "
                         "JSON here")

    sim_cmp = sim_sub.add_parser("compare", help="simulate several policies "
                                 "x scenarios, tabulate side by side")
    sim_cmp.add_argument("names", nargs="+", metavar="name",
                         help="registry scenario names (see "
                         "'scenario list')")
    add_simulate_args(sim_cmp)
    sim_cmp.add_argument("--policies", nargs="+", metavar="policy",
                         help="online policies (default: every "
                         "registered policy)")

    tune = sub.add_parser("tune", help="budget-aware auto-tuning of the "
                          "search/reshard knobs per workload scenario")
    tune_sub = tune.add_subparsers(dest="action", required=True)

    def add_profiles_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--profiles", default="profiles",
                       help="profile directory, one JSON per scenario "
                       "(default: profiles/)")

    tune_run = tune_sub.add_parser("run", help="tune one scenario under a "
                                   "wall-clock budget, save its profile")
    tune_run.add_argument("name", help="registry scenario name "
                          "(see 'scenario list')")
    add_bundle_args(tune_run)
    tune_run.add_argument("--budget-s", type=float, default=60.0,
                          help="hard wall-clock tuning budget in seconds "
                          "(default: 60)")
    tune_run.add_argument("--seed", type=int, default=0,
                          help="trace generator seed (default: 0)")
    tune_run.add_argument("--pool-seed", type=int, default=0,
                          help="synthesis seed of the table pool the "
                          "scenario samples from (default: 0)")
    tune_run.add_argument("--tables", type=int,
                          help="initial workload size (scenario default "
                          "when omitted)")
    tune_run.add_argument("--steps", type=int,
                          help="trace steps (scenario default when omitted)")
    tune_run.add_argument("--memory-bytes", type=int,
                          help="base per-device budget (default: 2 GiB)")
    tune_run.add_argument("--max-candidates", type=int,
                          help="stop after this many evaluated configs "
                          "even with budget left")
    tune_run.add_argument("--cache-dir",
                          help="disk cache of per-config evaluations; "
                          "reruns with the same code are free")
    tune_run.add_argument("--tune-arg", action="append", default=[],
                          metavar="KEY=VALUE",
                          help="override one knob's value grid, "
                          "repeatable (e.g. --tune-arg top_n=[2,4])")
    add_profiles_arg(tune_run)

    tune_list = tune_sub.add_parser("list", help="list saved tuned profiles")
    add_profiles_arg(tune_list)

    tune_show = tune_sub.add_parser("show", help="one profile's chosen "
                                    "config and frontier")
    tune_show.add_argument("name", help="scenario name of the profile")
    add_profiles_arg(tune_show)
    tune_show.add_argument("--json", action="store_true",
                           help="print the raw profile JSON")

    val = sub.add_parser("validate", help="validate stored deployments "
                         "and/or bundles against the invariant suite")
    val.add_argument("--store", help="plan-store root whose deployments "
                     "to validate")
    val.add_argument("--deployment", action="append", metavar="NAME",
                     help="restrict --store validation to this "
                     "deployment (repeatable; default: all)")
    val.add_argument("--bundle-store", help="bundle-store root whose "
                     "bundles to validate")
    val.add_argument("--json", action="store_true",
                     help="print the full reports as JSON instead of a "
                     "table")

    aud = sub.add_parser("audit", help="verify a plan store's provenance "
                         "hash chain offline (no engine or bundle needed)")
    aud.add_argument("--store", required=True,
                     help="plan-store root whose deployments to audit")
    aud.add_argument("--deployment", action="append", metavar="NAME",
                     help="restrict the audit to this deployment "
                     "(repeatable; default: all)")
    aud.add_argument("--json", action="store_true",
                     help="print the full audit reports as JSON instead "
                     "of a table")

    strategies = sub.add_parser("strategies", help="list registered "
                                "sharding strategies")
    strategies.add_argument("--category", choices=("core", "baseline",
                            "extension"))

    bundles = sub.add_parser("list-bundles", help="list a bundle store's "
                             "contents")
    bundles.add_argument("store", help="bundle store root directory")
    return parser


def _pool() -> TablePool:
    return TablePool(synthesize_table_pool(seed=0))


def _tasks(pool: TablePool, num_devices: int, max_dim: int, count: int, seed: int):
    lo, hi = (10, 60) if num_devices == 4 else (20, 120)
    cfg = TaskConfig(
        num_devices=num_devices, max_dim=max_dim, min_tables=lo, max_tables=hi
    )
    return generate_tasks(pool, cfg, count=count, seed=seed)


def _load_bundle(args) -> PretrainedCostModels:
    """Resolve ``args.bundle`` as a bare directory or a store entry."""
    if BundleStore.is_raw_bundle(args.bundle):
        return PretrainedCostModels.load(args.bundle)
    return BundleStore(args.bundle).load(
        args.bundle_name, getattr(args, "bundle_version", None)
    )


def _bundle_path(args) -> str:
    """The on-disk directory ``_load_bundle`` reads — pool workers
    re-load the bundle from this path in their own process."""
    if BundleStore.is_raw_bundle(args.bundle):
        return args.bundle
    return BundleStore(args.bundle).info(
        args.bundle_name, getattr(args, "bundle_version", None)
    ).path


def _cmd_gen_data(args) -> int:
    print(f"synthesizing a {args.tables}-table pool (seed {args.seed})...")
    pool = TablePool(
        synthesize_table_pool(num_tables=args.tables, seed=args.seed)
    )
    save_pool(pool, args.output)
    print(f"saved pool to {args.output}")
    return 0


def _cmd_gen_tasks(args) -> int:
    pool = load_pool(args.pool) if args.pool else _pool()
    tasks = _tasks(pool, args.gpus, args.max_dim, args.tasks, args.seed)
    save_tasks(tasks, args.output)
    print(f"{len(tasks)} sharding tasks generated!")
    print(f"saved tasks to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    pool = _pool()
    cluster = SimulatedCluster(ClusterConfig(num_devices=args.gpus))
    print(
        f"collecting {args.samples} compute samples and training for "
        f"{args.epochs} epochs on a simulated {args.gpus}-GPU cluster..."
    )
    sharder, report = NeuroShard.pretrain(
        cluster,
        pool,
        collection=CollectionConfig(
            num_compute_samples=args.samples,
            num_comm_samples=max(args.samples // 3, 300),
        ).for_devices(args.gpus),
        train=TrainConfig(epochs=args.epochs),
        seed=args.seed,
    )
    mse_rows = report.test_mse_rows()
    for name, mse in mse_rows.items():
        print(f"  {name:24s} test MSE = {mse:.3f} ms^2")
    if args.bundle_name:
        info = BundleStore(args.output).save(
            sharder.models,
            args.bundle_name,
            metadata={"test_mse": mse_rows, "seed": args.seed},
        )
        print(f"saved bundle {info.version_tag} to {info.path}")
    else:
        sharder.models.save(args.output)
        print(f"saved bundle to {args.output}")
    return 0


def _load_or_generate_tasks(args, num_devices: int):
    """Tasks for shard/compare; ``None`` on a device-count mismatch."""
    if args.tasks_file:
        tasks = load_tasks(args.tasks_file)
        bad = [t.task_id for t in tasks if t.num_devices != num_devices]
        if bad:
            print(
                f"error: tasks {bad} target a different device count than "
                f"the expected {num_devices}",
                file=sys.stderr,
            )
            return None
        return tasks
    return _tasks(_pool(), num_devices, args.max_dim, args.tasks, args.seed)


def _infeasible_exit(
    num_success: int,
    num_tasks: int,
    strategy: str,
    failed_task_ids: Sequence[int | str] = (),
    unit: str = "tasks",
) -> int:
    """The everything-infeasible contract: stderr + exit 2.

    Shared by ``shard``, ``serve-batch``, the ``deployment``
    plan/apply/reshard actions and ``scenario run``: when *every* unit
    of work (task, or reshard step of a replay) is infeasible the
    command prints the failing ids to stderr and exits 2.
    """
    if num_tasks and num_success == 0:
        print(
            f"error: {strategy} produced no feasible plan on any of "
            f"{num_tasks} {unit} "
            f"(failing {unit}: {', '.join(str(i) for i in failed_task_ids) or '-'})",
            file=sys.stderr,
        )
        return EXIT_ALL_INFEASIBLE
    return 0


def _cmd_shard(args) -> int:
    try:
        bundle = _load_bundle(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    num_devices = bundle.num_devices
    cluster = SimulatedCluster(ClusterConfig(num_devices=num_devices))
    tasks = _load_or_generate_tasks(args, num_devices)
    if tasks is None:
        return 1
    engine = ShardingEngine(
        cluster, bundle, search=SearchConfig(), default_strategy=args.strategy
    )
    try:
        strategy_name = getattr(
            engine.sharder_for(args.strategy), "name", args.strategy
        )
    except Exception as exc:  # factory error, e.g. guided without a policy
        print(f"error: {exc}", file=sys.stderr)
        return 1
    options = {}
    if getattr(args, "profile", False):
        if strategy_info(args.strategy).category == "core":
            options = {"profile": True}
        else:
            print(
                f"note: --profile instruments the core search; strategy "
                f"{args.strategy!r} reports timing only",
                file=sys.stderr,
            )
    responses = [
        engine.shard(ShardingRequest(task, options=options)) for task in tasks
    ]

    rows = []
    real_costs = []
    errors = []
    failed_ids = []
    for task, resp in zip(tasks, responses):
        real = math.nan
        if resp.plan is not None:
            per_device = resp.plan.per_device_tables(resp.plan_tables(task))
            try:
                real = cluster.evaluate_plan(per_device).max_cost_ms
            except OutOfMemoryError:
                pass
        ok = resp.feasible and not math.isnan(real)
        if not ok:
            failed_ids.append(task.task_id)
        if resp.error is not None:
            status = "error"
            errors.append((task.task_id, resp.error))
        else:
            status = "ok" if ok else "OOM"
        rows.append([task.task_id, status, real, resp.sharding_time_s])
        if ok:
            real_costs.append(real)
    for task_id, message in errors:
        print(f"task {task_id}: {message}", file=sys.stderr)
    print(
        format_text_table(
            ["task", "status", "real cost (ms)", "search time (s)"],
            rows,
            title=f"{strategy_name} on {len(tasks)} tasks "
            f"({num_devices} GPUs, max dim {args.max_dim})",
        )
    )
    all_ok = len(real_costs) == len(tasks)
    mean = sum(real_costs) / len(real_costs) if all_ok and real_costs else math.nan
    print(f"Average: {'-' if math.isnan(mean) else f'{mean:.3f}'}")
    print(f"Valid {len(real_costs)} / {len(tasks)}")
    if getattr(args, "profile", False):
        aggregate = SearchProfile()
        profiled = 0
        for resp in responses:
            if resp.profile is not None:
                aggregate.merge(resp.profile)
                profiled += 1
        if profiled:  # non-core strategies report no search profile
            print(f"\nsearch profile (aggregated over {profiled} tasks):")
            for line in aggregate.format_lines():
                print(line)
    return _infeasible_exit(len(real_costs), len(tasks), strategy_name, failed_ids)


def _cmd_compare(args) -> int:
    bundle = None
    if args.bundle:
        try:
            bundle = _load_bundle(
                argparse.Namespace(
                    bundle=args.bundle,
                    bundle_name=args.bundle_name,
                    bundle_version=args.bundle_version,
                )
            )
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    needy = [
        name for name in args.algorithm
        if strategy_info(name).needs_bundle and bundle is None
    ]
    if needy:
        print(
            f"error: strategies {needy} need a cost-model bundle; pass "
            "--bundle",
            file=sys.stderr,
        )
        return 1
    if args.tasks_file:
        tasks = load_tasks(args.tasks_file)
        num_devices = tasks[0].num_devices
    else:
        num_devices = args.gpus or (
            bundle.num_devices if bundle is not None else 4
        )
        tasks = _tasks(_pool(), num_devices, args.max_dim, args.tasks, args.seed)
    if bundle is not None and bundle.num_devices != num_devices:
        print(
            f"error: the tasks target {num_devices} devices but the bundle "
            f"was pre-trained for {bundle.num_devices}",
            file=sys.stderr,
        )
        return 1
    cluster = SimulatedCluster(ClusterConfig(num_devices=num_devices))
    engine = ShardingEngine(
        cluster, bundle, strategy_kwargs={"random": {"seed": args.seed}}
    )
    for name in args.algorithm:
        try:
            sharder = engine.sharder_for(name)
        except Exception as exc:  # factory error, e.g. guided w/o policy
            print(f"error: {exc}", file=sys.stderr)
            return 1
        evaluation = evaluate_sharder(
            sharder, tasks, cluster, name=strategy_info(name).name
        )
        mean = evaluation.mean_cost_ms
        if len(args.algorithm) > 1:
            print(f"[{evaluation.method}]")
        print(f"Average: {'-' if math.isnan(mean) else f'{mean:.3f}'}")
        print(f"Valid {evaluation.num_success} / {evaluation.num_tasks}")
    return 0


def _cmd_serve_batch(args) -> int:
    try:
        bundle = _load_bundle(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    cluster = SimulatedCluster(ClusterConfig(num_devices=bundle.num_devices))
    tasks = load_tasks(args.tasks_file)
    bad = [t.task_id for t in tasks if t.num_devices != bundle.num_devices]
    if bad:
        print(
            f"error: tasks {bad} target a different device count than the "
            f"bundle's {bundle.num_devices}",
            file=sys.stderr,
        )
        return 1
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 1
    engine = ShardingEngine(cluster, bundle, default_strategy=args.strategy)
    requests = [
        ShardingRequest(task, strategy=args.strategy, request_id=str(task.task_id))
        for task in tasks
    ]
    responses = engine.shard_batch(requests, max_workers=args.workers)
    payload = json.dumps([r.to_dict() for r in responses], indent=1)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"wrote {len(responses)} responses to {args.output}")
    else:
        print(payload)
    feasible = sum(1 for r in responses if r.feasible)
    print(
        f"{args.strategy}: {feasible} / {len(responses)} feasible "
        f"({args.workers} workers)",
        file=sys.stderr if feasible == 0 else sys.stdout,
    )
    return _infeasible_exit(
        feasible,
        len(responses),
        args.strategy,
        [t.task_id for t, r in zip(tasks, responses) if not r.feasible],
    )


def _deployment_engine(
    args, bundle: PretrainedCostModels, worker_pool: WorkerPool | None = None
) -> ShardingEngine:
    """The serving engine of CLI-driven deployments."""
    memory = getattr(args, "memory_bytes", None) or 4 * 1024**3
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=bundle.num_devices, memory_bytes=memory)
    )
    return ShardingEngine(
        cluster, bundle, search=SearchConfig(), worker_pool=worker_pool
    )


def _open_service(
    args, worker_pool: WorkerPool | None = None
) -> tuple[ShardingService, ShardingEngine] | None:
    """Load the plan store and rebuild its deployments' engines.

    Every deployment is served by one engine built from the CLI's bundle
    arguments; deployments whose stored device count mismatches fail
    loudly.  One optional ``worker_pool`` is shared by *every* engine —
    search results depend only on the request and the bundle, so any
    same-device-count deployment can fan out to the same workers.
    Returns ``None`` (after printing) on input errors.
    """
    try:
        bundle = _load_bundle(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    store = PlanStore(args.store)

    def factory(meta) -> ShardingEngine:
        if meta["num_devices"] != bundle.num_devices:
            raise ValueError(
                f"deployment {meta['name']!r} targets {meta['num_devices']} "
                f"devices but the bundle was pre-trained for "
                f"{bundle.num_devices}"
            )
        cluster = SimulatedCluster(
            ClusterConfig(
                num_devices=meta["num_devices"],
                memory_bytes=meta["memory_bytes"],
                batch_size=meta.get("batch_size", 65536),
            )
        )
        return ShardingEngine(
            cluster, bundle, search=SearchConfig(), worker_pool=worker_pool
        )

    try:
        service = ShardingService.open(store, factory, on_error="skip")
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    for name, reason in service.skipped_deployments.items():
        print(
            f"warning: skipping deployment {name!r}: {reason}",
            file=sys.stderr,
        )
    return service, _deployment_engine(args, bundle, worker_pool)


def _serve_worker_pool(args) -> WorkerPool | None:
    """The shared search pool of ``repro serve`` (``None`` below 2 workers)."""
    if args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if args.workers == 1:
        return None
    bundle_path = _bundle_path(args)
    with open(os.path.join(bundle_path, "metadata.json")) as handle:
        num_devices = int(json.load(handle)["num_devices"])
    spec = EngineSpec(
        cluster=ClusterConfig(num_devices=num_devices),
        bundle_path=bundle_path,
        search=SearchConfig(),
    )
    return WorkerPool(spec, max_workers=args.workers)


def _cmd_serve(args) -> int:
    try:
        worker_pool = _serve_worker_pool(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    opened = _open_service(args, worker_pool)
    if opened is None:
        if worker_pool is not None:
            worker_pool.close()
        return 1
    service, engine = opened

    # Shut down cleanly on SIGTERM too (docker stop, CI cleanup, and
    # non-interactive shells where background jobs ignore SIGINT).
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    server = ShardingHTTPServer(
        service,
        engine,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        batch_wait_s=args.batch_wait_ms / 1000.0,
        bundle_ref=args.bundle,
        verbose=args.verbose,
        request_timeout_s=args.request_timeout,
    )
    names = service.deployments()
    workers = "in-process" if worker_pool is None else (
        f"{args.workers} worker processes"
    )
    print(
        f"serving {len(names)} deployment(s) "
        f"({', '.join(names) or 'none yet'}) on "
        f"http://{args.host}:{server.port} [{workers}] — Ctrl-C to stop"
    )
    try:
        server.run()
    finally:
        if worker_pool is not None:
            worker_pool.close()
    return 0


def _record_line(record) -> str:
    cost = (
        "-"
        if not record.feasible or math.isinf(record.simulated_cost_ms)
        else f"{record.simulated_cost_ms:.3f} ms"
    )
    extra = ""
    if record.diff is not None:
        extra = (
            f", moved {record.diff.moved_bytes / 1e6:.1f} MB "
            f"(migration {record.diff.migration_cost_ms:.1f} ms)"
        )
    return (
        f"v{record.version} [{record.kind}/{record.strategy}] "
        f"feasible={record.feasible} cost={cost}{extra}"
    )


def _record_exit(record, action: str) -> int:
    """The shared infeasibility contract for plan/reshard/apply actions."""
    if not record.feasible:
        return _infeasible_exit(0, 1, f"deployment {action}", [record.version])
    return 0


def _cmd_deployment(args) -> int:
    opened = _open_service(args)
    if opened is None:
        return 1
    service, engine = opened

    try:
        if args.action == "list":
            names = service.deployments()
            if not names:
                print(f"no deployments in {args.store}")
                return 0
            rows = []
            for name in names:
                status = service.status(name)
                rows.append([
                    name,
                    status["num_devices"],
                    status["num_tables"],
                    status["num_records"],
                    status["applied_version"] or "-",
                ])
            print(
                format_text_table(
                    ["deployment", "gpus", "tables", "records", "applied"],
                    rows,
                    title=f"{len(names)} deployments in {args.store}",
                )
            )
            return 0

        if args.action == "create":
            if args.tasks_file:
                tasks = load_tasks(args.tasks_file)
                if not 0 <= args.task_index < len(tasks):
                    print(
                        f"error: --task-index {args.task_index} out of range "
                        f"(file has {len(tasks)} tasks)",
                        file=sys.stderr,
                    )
                    return 1
                task = tasks[args.task_index]
                if task.num_devices != engine.cluster.num_devices:
                    print(
                        f"error: task targets {task.num_devices} devices but "
                        f"the bundle serves {engine.cluster.num_devices}",
                        file=sys.stderr,
                    )
                    return 1
                tables = task.tables
                memory = args.memory_bytes or task.memory_bytes
            else:
                generated = _tasks(
                    _pool(), engine.cluster.num_devices, args.max_dim, 1,
                    args.seed,
                )
                tables = generated[0].tables
                memory = args.memory_bytes or generated[0].memory_bytes
            profile = None
            if args.profile:
                try:
                    profile = load_profile(args.profile)
                except (FileNotFoundError, json.JSONDecodeError) as exc:
                    print(f"error: --profile: {exc}", file=sys.stderr)
                    return 1
            status = service.create_deployment(
                args.name,
                engine,
                tables=tables,
                memory_bytes=memory,
                bundle_ref=args.bundle,
                profile=profile,
            )
            tuned = (
                "" if profile is None
                else f" [tuned: {profile.scenario}]"
            )
            print(
                f"created deployment {args.name!r}: "
                f"{status['num_tables']} tables on "
                f"{status['num_devices']} GPUs{tuned}"
            )
            return 0

        if args.action == "plan":
            record = service.plan(args.name, strategy=args.strategy)
            print(_record_line(record))
            return _record_exit(record, "plan")

        if args.action == "apply":
            if args.version is not None:
                record = service.get_record(args.name, args.version)
                if not record.feasible:
                    return _infeasible_exit(
                        0, 1, "deployment apply", [record.version]
                    )
            else:
                history = service.history(args.name)
                if history and not any(r["feasible"] for r in history):
                    return _infeasible_exit(
                        0,
                        len(history),
                        "deployment apply",
                        [r["version"] for r in history],
                    )
            record = service.apply(args.name, args.version)
            print(f"applied {_record_line(record)}")
            return 0

        if args.action == "reshard":
            add_tables = ()
            if args.add:
                rng = np.random.default_rng(args.seed)
                sampled = _pool().sample_tables(args.add, rng)
                dims = rng.choice(
                    [d for d in (4, 8, 16, 32, 64, 128) if d <= args.max_dim],
                    size=len(sampled),
                )
                # Fresh table ids: added tables are *new* tables, never
                # aliases of workload tables the pool also contains
                # (colliding ids would make --remove drop both and let
                # the diff under-price the addition as "surviving").
                applied = service.applied_record(args.name)
                next_id = 1 + max(
                    (t.table_id for t in applied.base_tables)
                    if applied is not None
                    else (t.table_id for t in sampled),
                    default=0,
                )
                add_tables = tuple(
                    dataclasses.replace(t.with_dim(int(d)), table_id=next_id + i)
                    for i, (t, d) in enumerate(zip(sampled, dims))
                )
            delta = WorkloadDelta(
                add_tables=add_tables,
                remove_table_ids=tuple(args.remove),
            )
            config = ReshardConfig(
                migration_budget_ms=args.budget_ms,
                migration_lambda=args.lam,
                allow_full_search=not args.no_full_search,
            )
            record = service.reshard(
                args.name,
                delta,
                config=config,
                strategy=args.strategy,
                apply=not args.no_apply,
            )
            print(_record_line(record))
            full = record.metadata.get("full_search")
            if full is not None and record.diff is not None:
                print(
                    f"  vs re-shard-from-scratch: cost "
                    f"{full['simulated_cost_ms']:.3f} ms, moved "
                    f"{full['moved_bytes'] / 1e6:.1f} MB "
                    f"(chosen: {record.metadata['chosen']})"
                )
            return _record_exit(record, "reshard")

        if args.action == "rollback":
            record = service.rollback(args.name)
            print(f"rolled back to {_record_line(record)}")
            return 0

        if args.action == "status":
            status = service.status(args.name)
            for key, value in status.items():
                print(f"{key:18s} {value}")
            return 0

        if args.action == "history":
            records = service.history(args.name)
            applied = service.status(args.name)["applied_version"]
            for data in records:
                marker = " *live*" if data["version"] == applied else ""
                cost = data["simulated_cost_ms"]
                print(
                    f"v{data['version']} [{data['kind']}/{data['strategy']}] "
                    f"feasible={data['feasible']} "
                    f"cost={'-' if cost is None else f'{cost:.3f} ms'}"
                    f"{marker}"
                )
            return 0
    except (ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled deployment action {args.action!r}")


def _scenario_memory(args) -> int:
    """The replay's base per-device budget (explicit zero is not 'unset')."""
    if args.memory_bytes is None:
        return DEFAULT_MEMORY_BYTES
    return args.memory_bytes


def _scenario_trace(args, name: str, num_devices: int):
    """Build one registry scenario's trace from the CLI knobs."""
    kwargs = {"num_devices": num_devices, "seed": args.seed}
    kwargs["memory_bytes"] = _scenario_memory(args)
    if args.tables is not None:
        kwargs["num_tables"] = args.tables
    if args.steps is not None:
        kwargs["steps"] = args.steps
    pool = (
        _pool()
        if args.pool_seed == 0
        else TablePool(synthesize_table_pool(seed=args.pool_seed))
    )
    return make_trace(name, pool, **kwargs)


def _scenario_engine(bundle: PretrainedCostModels, memory_bytes: int) -> ShardingEngine:
    """A lifecycle-scale engine (reduced search: one reshard per step).

    Built on the same ``REPLAY_SEARCH_CONFIG`` as the committed scenario
    benchmarks; a CLI replay byte-reproduces a committed
    ``benchmarks/results/scenario_*.txt`` artifact when the remaining
    inputs also match — that benchmark's 4-GPU cached bundle plus
    ``--pool-seed 2023 --seed 2023 --tables 16 --budget-ms 150
    --refine-steps 16`` (and the default 2 GiB ``--memory-bytes``).
    """
    cluster = SimulatedCluster(
        ClusterConfig(
            num_devices=bundle.num_devices, memory_bytes=memory_bytes
        )
    )
    return ShardingEngine(cluster, bundle, search=REPLAY_SEARCH_CONFIG)


def _scenario_config(args) -> ReshardConfig:
    return ReshardConfig(
        migration_budget_ms=args.budget_ms,
        migration_lambda=args.lam,
        allow_full_search=not args.no_full_search,
        max_refine_steps=args.refine_steps,
    )


def _replay_exit(report, name: str) -> int:
    """Exit 2 when *every* reshard step of a replay was infeasible."""
    failing = [s.step for s in report.steps if s.resharded and not s.feasible]
    reshards = report.num_reshard_steps
    if reshards:
        return _infeasible_exit(
            reshards - len(failing),
            reshards,
            f"scenario {name}",
            failing,
            unit="reshard steps",
        )
    return 0


def _cmd_scenario(args) -> int:
    if args.action == "list":
        rows = [
            [
                info.name,
                ", ".join(info.tags) or "-",
                info.default_steps,
                info.description,
            ]
            for info in iter_scenarios()
            if args.tag is None or args.tag in info.tags
        ]
        print(
            format_text_table(
                ["scenario", "tags", "steps", "description"],
                rows,
                title=f"{len(rows)} registered workload scenarios",
            )
        )
        return 0

    try:
        bundle = _load_bundle(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    memory = _scenario_memory(args)
    if memory <= 0:
        print(f"error: --memory-bytes must be > 0, got {memory}",
              file=sys.stderr)
        return 1
    config = _scenario_config(args)

    if args.action == "run":
        try:
            trace = _scenario_trace(args, args.name, bundle.num_devices)
        except (UnknownScenarioError, ValueError, RuntimeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.trace_output:
            with open(args.trace_output, "w", encoding="utf-8") as fh:
                json.dump(trace.to_dict(), fh, indent=1)
                fh.write("\n")
            print(f"wrote trace to {args.trace_output}")
        engine = _scenario_engine(bundle, memory)
        try:
            report = replay_workload_trace(
                trace, engine, reshard_config=config, strategy=args.strategy
            )
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ALL_INFEASIBLE
        print(format_scenario_report(report))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=1)
                fh.write("\n")
            print(f"wrote report to {args.output}")
        return _replay_exit(report, args.name)

    if args.action == "compare":
        engine = _scenario_engine(bundle, memory)
        rows = []
        failures = 0
        for name in args.names:
            try:
                trace = _scenario_trace(args, name, bundle.num_devices)
            except (UnknownScenarioError, ValueError, RuntimeError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            try:
                report = replay_workload_trace(
                    trace, engine, reshard_config=config,
                    strategy=args.strategy,
                )
            except RuntimeError as exc:
                print(f"warning: scenario {name}: {exc}", file=sys.stderr)
                failures += 1
                rows.append([name, "-", "-", "-", "-", "-", "-", "-"])
                continue
            summary = report.summary()
            rows.append([
                name,
                summary["steps"],
                summary["reshards"],
                f"{summary['infeasible_rate']:.2f}",
                f"{summary['budget_bound_rate']:.2f}",
                f"{summary['total_moved_mb']:.1f}",
                f"{summary['total_scratch_moved_mb']:.1f}",
                f"{summary['peak_serving_cost_ms']:.3f}",
            ])
        print(
            format_text_table(
                ["scenario", "steps", "reshards", "infeasible",
                 "budget-bound", "moved (MB)", "scratch (MB)",
                 "peak cost (ms)"],
                rows,
                title=f"{len(args.names)} scenarios on "
                f"{bundle.num_devices} devices "
                f"(budget {'-' if args.budget_ms is None else args.budget_ms} ms)",
            )
        )
        if failures == len(args.names):
            return EXIT_ALL_INFEASIBLE
        return 0

    raise AssertionError(f"unhandled scenario action {args.action!r}")


def _policy_kwargs(pairs: list[str]) -> dict[str, object]:
    """Parse repeatable ``--policy-arg key=value`` into typed kwargs.

    Delegates to the shared typed parser
    (:func:`repro.utils.parse_key_value_args`), so ``--policy-arg`` and
    ``tune --tune-arg`` coerce values identically — including the
    Python-style boolean spellings the old JSON fallback kept as
    (truthy) strings.

    Raises:
        ValueError: on an argument without ``=``.
    """
    return parse_key_value_args(pairs, flag="--policy-arg")


def _simulation_config(args) -> SimulationConfig:
    return SimulationConfig(
        horizon_hours=args.horizon_hours,
        tick_hours=args.tick_hours,
        slo_factor=args.slo_factor,
        sim_seed=args.sim_seed,
        fleet=FleetSpec(
            mtbf_hours=args.mtbf_hours,
            mttr_hours=args.mttr_hours,
            straggler_rate_per_hour=args.straggler_rate,
            straggler_duration_hours=args.straggler_hours,
        ),
    )


def _cmd_simulate(args) -> int:
    if args.action == "list":
        rows = [
            [
                info.name,
                ", ".join(
                    f"{k}={v}" for k, v in sorted(info.defaults.items())
                ) or "-",
                info.description,
            ]
            for info in iter_policies()
        ]
        print(
            format_text_table(
                ["policy", "defaults", "description"],
                rows,
                title=f"{len(rows)} registered online resharding policies",
            )
        )
        return 0

    try:
        bundle = _load_bundle(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    memory = _scenario_memory(args)
    if memory <= 0:
        print(f"error: --memory-bytes must be > 0, got {memory}",
              file=sys.stderr)
        return 1
    try:
        sim_config = _simulation_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    reshard_config = _scenario_config(args)
    engine = _scenario_engine(bundle, memory)

    if args.action == "run":
        try:
            policy = make_policy(args.policy, **_policy_kwargs(args.policy_arg))
        except (UnknownPolicyError, ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            trace = _scenario_trace(args, args.name, bundle.num_devices)
        except (UnknownScenarioError, ValueError, RuntimeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            report = simulate_policy(
                trace, engine, policy,
                reshard_config=reshard_config,
                strategy=args.strategy,
                config=sim_config,
            )
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ALL_INFEASIBLE
        print(format_simulation_report(report))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=1)
                fh.write("\n")
            print(f"wrote report to {args.output}")
        if report.reshard_count and (
            report.infeasible_reshards == report.reshard_count
        ):
            print(
                f"simulate {args.name}: every reshard was infeasible",
                file=sys.stderr,
            )
            return EXIT_ALL_INFEASIBLE
        return 0

    if args.action == "compare":
        policies = args.policies or available_policies()
        try:
            for name in policies:
                make_policy(name)  # fail fast on unknown names
        except UnknownPolicyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        reports = []
        failures = 0
        for name in args.names:
            try:
                trace = _scenario_trace(args, name, bundle.num_devices)
            except (UnknownScenarioError, ValueError, RuntimeError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            for policy_name in policies:
                try:
                    reports.append(
                        simulate_policy(
                            trace, engine, make_policy(policy_name),
                            reshard_config=reshard_config,
                            strategy=args.strategy,
                            config=sim_config,
                        )
                    )
                except RuntimeError as exc:
                    print(
                        f"warning: {name} x {policy_name}: {exc}",
                        file=sys.stderr,
                    )
                    failures += 1
        print(format_policy_matrix(reports))
        if not reports and failures:
            return EXIT_ALL_INFEASIBLE
        return 0

    raise AssertionError(f"unhandled simulate action {args.action!r}")


def _tune_search_space(pairs: list[str]) -> dict | None:
    """``--tune-arg KEY=VALUE`` pairs as per-knob value-grid overrides.

    A JSON-list value replaces the knob's whole grid; a scalar pins the
    knob to that single value.  Unknown knob names fail loudly inside
    :func:`repro.tuning.enumerate_candidates`.
    """
    overrides = parse_key_value_args(pairs, flag="--tune-arg")
    if not overrides:
        return None
    space = dict(DEFAULT_SEARCH_SPACE)
    for knob, value in overrides.items():
        space[knob] = (
            tuple(value) if isinstance(value, (list, tuple)) else (value,)
        )
    return space


def _candidate_row(candidate, chosen, default) -> list:
    marks = []
    if candidate.search == chosen.search and candidate.reshard == chosen.reshard:
        marks.append("chosen")
    if (
        candidate.search == default.search
        and candidate.reshard == default.reshard
    ):
        marks.append("default")
    budget = candidate.reshard.migration_budget_ms
    return [
        candidate.search.top_n,
        candidate.search.beam_width,
        candidate.search.max_steps,
        candidate.search.grid_points,
        f"{candidate.search.grid_end_factor:g}",
        f"{candidate.reshard.migration_lambda:g}",
        "-" if budget is None else f"{budget:g}",
        candidate.work,
        "-" if not candidate.feasible else f"{candidate.cost_ms:.3f}",
        " ".join(marks) or "-",
    ]


_FRONTIER_HEADER = [
    "N", "K", "L", "M", "end", "lambda", "budget_ms", "work", "cost_ms",
    "mark",
]


def _print_profile(profile) -> None:
    print(
        f"scenario {profile.scenario}: chosen cost "
        f"{profile.chosen.cost_ms:.3f} ms (default "
        f"{profile.default.cost_ms:.3f} ms) — "
        f"{profile.evaluated} evaluated, {profile.pruned} pruned, "
        f"{profile.skipped} skipped, {profile.cache_hits} cache hits "
        f"in {profile.elapsed_s:.1f}s of {profile.budget_s:g}s budget"
    )
    rows = [
        _candidate_row(c, profile.chosen, profile.default)
        for c in profile.frontier
    ]
    print(
        format_text_table(
            _FRONTIER_HEADER,
            rows,
            title=f"frontier: {len(rows)} non-dominated configs",
        )
    )


def _cmd_tune(args) -> int:
    if args.action == "list":
        profiles = list_profiles(args.profiles)
        if not profiles:
            print(f"no profiles in {args.profiles}")
            return 0
        rows = [
            [
                p.scenario,
                p.num_devices,
                p.evaluated,
                f"{p.chosen.cost_ms:.3f}",
                f"{p.default.cost_ms:.3f}",
                p.bundle_key,
            ]
            for p in profiles
        ]
        print(
            format_text_table(
                ["scenario", "gpus", "evaluated", "chosen_ms", "default_ms",
                 "bundle"],
                rows,
                title=f"{len(rows)} tuned profiles in {args.profiles}",
            )
        )
        return 0

    if args.action == "show":
        path = profile_path(args.profiles, args.name)
        try:
            profile = load_profile(path)
        except FileNotFoundError:
            print(
                f"error: no profile for {args.name!r} in {args.profiles}",
                file=sys.stderr,
            )
            return 1
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
            return 0
        _print_profile(profile)
        return 0

    if args.action == "run":
        try:
            bundle = _load_bundle(args)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.memory_bytes is not None and args.memory_bytes <= 0:
            print(
                f"error: --memory-bytes must be > 0, got {args.memory_bytes}",
                file=sys.stderr,
            )
            return 1
        pool = (
            _pool()
            if args.pool_seed == 0
            else TablePool(synthesize_table_pool(seed=args.pool_seed))
        )
        try:
            profile = tune_scenario(
                args.name,
                bundle,
                pool,
                budget_s=args.budget_s,
                memory_bytes=args.memory_bytes,
                num_tables=args.tables,
                steps=args.steps,
                seed=args.seed,
                search_space=_tune_search_space(args.tune_arg),
                max_candidates=args.max_candidates,
                cache_dir=args.cache_dir,
            )
        except (UnknownScenarioError, ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ALL_INFEASIBLE
        path = save_profile(profile, args.profiles)
        _print_profile(profile)
        print(f"wrote profile to {path}")
        return 0

    raise AssertionError(f"unhandled tune action {args.action!r}")


def _validate_deployment_unit(store, name, validator):
    """Validate one stored deployment offline; returns (report_dict, errors).

    Everything is re-derived from the stored JSON — no engine or bundle
    is needed — so ``repro validate`` can audit a store the serving
    process cannot even load (e.g. after a bundle mismatch).
    """
    from repro.api import check_version
    from repro.api.service import PlanRecord

    extra: list[str] = []
    try:
        meta = store.load_meta(name)
        check_version(meta, "deployment metadata")
    except Exception as exc:  # corrupted metadata is a finding, not a crash
        extra.append(f"meta: {type(exc).__name__}: {exc}")
    records = []
    stored = {}
    for version in store.versions(name):
        try:
            data = store.load_record(name, version)
        except Exception as exc:
            extra.append(f"record v{version}: unreadable ({type(exc).__name__})")
            continue
        stored[version] = data
        try:
            records.append(PlanRecord.from_dict(data))
        except Exception as exc:
            extra.append(
                f"record v{version}: does not deserialize "
                f"({type(exc).__name__}: {exc})"
            )
    memory = None
    try:
        state = store.load_state(name)
    except Exception as exc:
        extra.append(f"state: unreadable ({type(exc).__name__})")
        state = {}
    if not isinstance(state, dict):
        extra.append(f"state: expected an object, got {type(state).__name__}")
        state = {}
    raw_stack = state.get("applied_stack", [])
    try:
        if not isinstance(raw_stack, list):
            raise TypeError(type(raw_stack).__name__)
        stack = [int(v) for v in raw_stack]
    except (TypeError, ValueError):
        extra.append(
            f"state: applied_stack {raw_stack!r} is not a list of integers"
        )
        stack = []
    # The budget the deployment currently runs under (absent in stores
    # written before budgets were state-tracked): the applied record is
    # audited against it, not its creation-time snapshot.  A bad budget
    # field degrades to the snapshot audit without dropping the stack.
    if state.get("memory_bytes") is not None:
        try:
            memory = int(state["memory_bytes"])
        except (TypeError, ValueError):
            extra.append(
                f"state: memory_bytes {state['memory_bytes']!r} is not an "
                "integer"
            )
    report = validator.validate_history(
        records,
        stack,
        stored=stored,
        subject=f"deployment:{name}",
        memory_bytes=memory,
    )
    payload = report.to_dict()
    payload["extra_errors"] = extra
    payload["num_records"] = len(records)
    payload["applied_version"] = stack[-1] if stack else None
    errors = [f"{e.code}: {e.message}" for e in report.errors] + extra
    return payload, errors


def _cmd_validate(args) -> int:
    from repro.validation import PlanValidator

    if not args.store and not args.bundle_store:
        print("error: validate needs --store and/or --bundle-store",
              file=sys.stderr)
        return 1
    validator = PlanValidator()
    units: list[tuple[str, dict, list[str]]] = []

    if args.store:
        store = PlanStore(args.store)
        names = args.deployment or store.names()
        unknown = sorted(set(names) - set(store.names()))
        if unknown:
            print(
                f"error: no deployment named {unknown} in store "
                f"{args.store} (known: {store.names() or 'none'})",
                file=sys.stderr,
            )
            return 1
        for name in names:
            payload, errors = _validate_deployment_unit(store, name, validator)
            units.append((f"deployment:{name}", payload, errors))

    if args.bundle_store:
        bundles = BundleStore(args.bundle_store)
        for name in bundles.names():
            for version in bundles.versions(name):
                errors = []
                try:
                    info = bundles.info(name, version)
                    loaded = bundles.load(name, version)
                    if loaded.num_devices != info.num_devices:
                        errors.append(
                            f"manifest says {info.num_devices} devices, "
                            f"bundle has {loaded.num_devices}"
                        )
                except Exception as exc:
                    errors.append(f"{type(exc).__name__}: {exc}")
                units.append((
                    f"bundle:{name}@v{version}",
                    {"subject": f"bundle:{name}@v{version}",
                     "ok": not errors, "errors": errors},
                    errors,
                ))

    if args.json:
        print(json.dumps([payload for _, payload, _ in units], indent=1))
    else:
        rows = [
            [unit, payload.get("num_records", "-"),
             payload.get("applied_version", "-") or "-",
             "ok" if not errors else f"{len(errors)} violation(s)"]
            for unit, payload, errors in units
        ]
        print(
            format_text_table(
                ["unit", "records", "applied", "result"],
                rows,
                title=f"validated {len(units)} unit(s)",
            )
        )
    failing = [unit for unit, _, errors in units if errors]
    for unit, _, errors in units:
        for error in errors:
            print(f"{unit}: {error}", file=sys.stderr)
    if failing:
        print(
            f"error: validation found violations in {len(failing)} of "
            f"{len(units)} unit(s): {', '.join(failing)}",
            file=sys.stderr,
        )
        return EXIT_ALL_INFEASIBLE
    return 0


def _cmd_audit(args) -> int:
    from repro.provenance import audit_deployment

    store = PlanStore(args.store)
    names = args.deployment or store.names()
    unknown = sorted(set(names) - set(store.names()))
    if unknown:
        print(
            f"error: no deployment named {unknown} in store "
            f"{args.store} (known: {store.names() or 'none'})",
            file=sys.stderr,
        )
        return 1
    reports = [audit_deployment(store, name) for name in sorted(names)]
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=1))
    else:
        rows = [
            [
                r.deployment,
                len(r.versions),
                (r.applied_stack[-1] if r.applied_stack else "-"),
                len(r.advisories),
                (
                    "ok"
                    if r.ok
                    else f"{len(r.errors)} error(s), first broken "
                    f"v{r.first_broken_version}"
                    if r.first_broken_version is not None
                    else f"{len(r.errors)} error(s)"
                ),
            ]
            for r in reports
        ]
        print(
            format_text_table(
                ["deployment", "records", "applied", "advisories", "result"],
                rows,
                title=f"audited {len(reports)} deployment(s)",
            )
        )
    failing = [r for r in reports if not r.ok]
    for report in reports:
        for finding in report.errors:
            tag = "-" if finding.version is None else f"v{finding.version}"
            print(
                f"{report.deployment}/{tag}: {finding.code}: "
                f"{finding.message}",
                file=sys.stderr,
            )
    if failing:
        print(
            "error: audit found tampering or damage in "
            f"{len(failing)} of {len(reports)} deployment(s): "
            + ", ".join(
                f"{r.deployment} (first broken: "
                + (
                    f"v{r.first_broken_version}"
                    if r.first_broken_version is not None
                    else "deployment state"
                )
                + ")"
                for r in failing
            ),
            file=sys.stderr,
        )
        return EXIT_ALL_INFEASIBLE
    return 0


def _cmd_strategies(args) -> int:
    rows = [
        [
            info.name,
            info.category,
            "yes" if info.needs_bundle else "no",
            ", ".join(info.aliases) or "-",
            info.description,
        ]
        for info in iter_strategies()
        if args.category is None or info.category == args.category
    ]
    print(
        format_text_table(
            ["strategy", "category", "bundle?", "aliases", "description"],
            rows,
            title=f"{len(rows)} registered sharding strategies",
        )
    )
    return 0


def _cmd_list_bundles(args) -> int:
    store = BundleStore(args.store)
    infos = store.list_bundles()
    if not infos:
        print(f"no bundles in {args.store}")
        return 0
    rows = [
        [i.version_tag, i.num_devices, i.batch_size, i.path] for i in infos
    ]
    print(
        format_text_table(
            ["bundle", "gpus", "batch", "path"],
            rows,
            title=f"{len(infos)} bundles in {args.store}",
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "gen-data": _cmd_gen_data,
        "gen-tasks": _cmd_gen_tasks,
        "pretrain": _cmd_pretrain,
        "shard": _cmd_shard,
        "compare": _cmd_compare,
        "serve-batch": _cmd_serve_batch,
        "serve": _cmd_serve,
        "deployment": _cmd_deployment,
        "scenario": _cmd_scenario,
        "simulate": _cmd_simulate,
        "tune": _cmd_tune,
        "validate": _cmd_validate,
        "audit": _cmd_audit,
        "strategies": _cmd_strategies,
        "list-bundles": _cmd_list_bundles,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
