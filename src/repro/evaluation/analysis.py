"""Plan analysis and what-if probing on the cost-model simulator.

When a sharding plan under-performs in production, the first questions an
engineer asks are diagnostic: *which device is the bottleneck, is it
compute- or communication-bound, how unbalanced is the plan, and would
moving or splitting one table help?*  The pre-trained cost models answer
all of these in milliseconds without touching hardware — the same
"universal simulator" role they play in the search, repurposed for
interactive analysis.

Provided tools:

- :func:`analyze_plan` — per-device cost breakdown plus imbalance
  metrics (:class:`PlanAnalysis`).
- :func:`what_if_move` — simulated cost delta of moving one table to
  another device.
- :func:`what_if_split` — simulated cost delta of column-splitting one
  table (keeping both shards in place or moving one to the lightest
  device).
- :func:`best_single_improvement` — exhaustive scan of single-move and
  single-split edits, ranked by simulated improvement; the "one more
  step" a production operator could apply without re-running the search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.simulator import NeuroShardSimulator, PlanCost
from repro.data.table import TableConfig
from repro.hardware.memory import MemoryModel

__all__ = [
    "PlanAnalysis",
    "WhatIfResult",
    "analyze_plan",
    "best_single_improvement",
    "what_if_move",
    "what_if_split",
]


@dataclass(frozen=True)
class PlanAnalysis:
    """Diagnostic summary of one placement.

    Attributes:
        breakdown: per-device simulated compute/comm costs.
        bottleneck_device: index of the most costly device.
        bottleneck_fraction_compute: share of the bottleneck device's
            cost that is computation (vs communication) — tells the
            operator which lever (splitting hot tables vs shedding
            dimensions) to pull.
        compute_balance: ``mean / max`` of per-device compute costs in
            (0, 1]; 1 is perfect balance (AutoShard's balance metric).
        dim_balance: ``mean / max`` of device dimensions (the
            communication-balance proxy of Observation 3).
        device_dims: per-device dimension sums.
        device_bytes: per-device memory footprints (weights + optimizer).
    """

    breakdown: PlanCost
    bottleneck_device: int
    bottleneck_fraction_compute: float
    compute_balance: float
    dim_balance: float
    device_dims: tuple[int, ...]
    device_bytes: tuple[int, ...]

    @property
    def max_cost_ms(self) -> float:
        return self.breakdown.max_cost_ms


def analyze_plan(
    per_device: Sequence[Sequence[TableConfig]],
    simulator: NeuroShardSimulator,
    memory: MemoryModel | None = None,
) -> PlanAnalysis:
    """Diagnose a placement on the simulator.

    Args:
        per_device: table sets per device.
        simulator: cost-model-backed simulator (device count must match).
        memory: optional memory model for footprint reporting; a 1-byte
            placeholder budget is fine since only ``table_bytes`` is used.
    """
    if len(per_device) == 0:
        raise ValueError("placement must have at least one device")
    memory = memory or MemoryModel(1)
    breakdown = simulator.plan_cost(per_device)
    device_costs = breakdown.device_costs_ms
    bottleneck = int(np.argmax(device_costs))
    comm = (
        breakdown.fwd_comm_ms[bottleneck] + breakdown.bwd_comm_ms[bottleneck]
    )
    total = device_costs[bottleneck]
    fraction_compute = breakdown.compute_ms[bottleneck] / total if total else 0.0

    compute = np.asarray(breakdown.compute_ms)
    max_compute = float(compute.max())
    compute_balance = float(compute.mean() / max_compute) if max_compute else 1.0
    dims = [sum(t.dim for t in dev) for dev in per_device]
    max_dim = max(dims)
    dim_balance = float(np.mean(dims) / max_dim) if max_dim else 1.0

    return PlanAnalysis(
        breakdown=breakdown,
        bottleneck_device=bottleneck,
        bottleneck_fraction_compute=fraction_compute,
        compute_balance=compute_balance,
        dim_balance=dim_balance,
        device_dims=tuple(dims),
        device_bytes=tuple(
            sum(memory.table_bytes(t) for t in dev) for dev in per_device
        ),
    )


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of one hypothetical plan edit.

    Attributes:
        description: human-readable edit summary.
        feasible: the edited plan respects the memory budget.
        cost_before_ms / cost_after_ms: simulated bottleneck costs.
        edited: the edited placement (``None`` when the edit is
            infeasible/illegal), so callers can apply the winning edit
            without reconstructing it.
    """

    description: str
    feasible: bool
    cost_before_ms: float
    cost_after_ms: float
    edited: tuple[tuple[TableConfig, ...], ...] | None = None

    @property
    def improvement_ms(self) -> float:
        """Positive when the edit helps."""
        return self.cost_before_ms - self.cost_after_ms


def _copy(per_device) -> list[list[TableConfig]]:
    return [list(dev) for dev in per_device]


def what_if_move(
    per_device: Sequence[Sequence[TableConfig]],
    simulator: NeuroShardSimulator,
    source: int,
    table_index: int,
    target: int,
    memory: MemoryModel | None = None,
) -> WhatIfResult:
    """Cost delta of moving ``per_device[source][table_index]`` to
    ``target``."""
    num_devices = len(per_device)
    if not (0 <= source < num_devices and 0 <= target < num_devices):
        raise ValueError(
            f"source/target must be in [0, {num_devices}), got "
            f"{source} -> {target}"
        )
    if source == target:
        raise ValueError("source and target devices are the same")
    if not 0 <= table_index < len(per_device[source]):
        raise ValueError(
            f"device {source} has {len(per_device[source])} tables, index "
            f"{table_index} out of range"
        )
    before = simulator.plan_cost(per_device).max_cost_ms
    edited = _copy(per_device)
    table = edited[source].pop(table_index)
    edited[target].append(table)
    feasible = True
    if memory is not None:
        feasible = memory.fits(edited[target])
    after = (
        simulator.plan_cost(edited).max_cost_ms if feasible else math.inf
    )
    return WhatIfResult(
        description=(
            f"move table {table.uid} from device {source} to {target}"
        ),
        feasible=feasible,
        cost_before_ms=before,
        cost_after_ms=after,
        edited=tuple(tuple(dev) for dev in edited) if feasible else None,
    )


def what_if_split(
    per_device: Sequence[Sequence[TableConfig]],
    simulator: NeuroShardSimulator,
    device: int,
    table_index: int,
    memory: MemoryModel | None = None,
) -> WhatIfResult:
    """Cost delta of column-splitting one table, sending the second
    shard to the device with the lowest simulated compute cost."""
    num_devices = len(per_device)
    if not 0 <= device < num_devices:
        raise ValueError(f"device must be in [0, {num_devices}), got {device}")
    if not 0 <= table_index < len(per_device[device]):
        raise ValueError(
            f"device {device} has {len(per_device[device])} tables, index "
            f"{table_index} out of range"
        )
    table = per_device[device][table_index]
    before = simulator.plan_cost(per_device).max_cost_ms
    if not table.can_halve:
        return WhatIfResult(
            description=f"split table {table.uid} (illegal: dim {table.dim})",
            feasible=False,
            cost_before_ms=before,
            cost_after_ms=math.inf,
        )
    first, second = table.halved()
    edited = _copy(per_device)
    edited[device][table_index] = first
    # Send the second shard to the cheapest device (including staying).
    compute = simulator.device_compute_costs(edited)
    target = int(np.argmin(compute))
    edited[target].append(second)
    feasible = True
    if memory is not None:
        feasible = all(memory.fits(dev) for dev in edited)
    after = simulator.plan_cost(edited).max_cost_ms if feasible else math.inf
    return WhatIfResult(
        description=(
            f"split table {table.uid} on device {device}, second shard to "
            f"device {target}"
        ),
        feasible=feasible,
        cost_before_ms=before,
        cost_after_ms=after,
        edited=tuple(tuple(dev) for dev in edited) if feasible else None,
    )


def best_single_improvement(
    per_device: Sequence[Sequence[TableConfig]],
    simulator: NeuroShardSimulator,
    memory: MemoryModel | None = None,
    top_k: int = 5,
) -> list[WhatIfResult]:
    """Rank every single-move and single-split edit by improvement.

    Edits are scanned from the devices that can actually cause the
    bottleneck, not all of them: the bottleneck-*cost* device, the
    max-*compute* device and the max-*dimension* device.  These differ
    because measured costs include collective waiting (Figure 1's
    straggler effect): the device with the highest measured cost is often
    a lightly-loaded one that waits on the straggler, while the edit that
    helps removes load from the straggler itself — the max-compute or
    max-dimension device.

    Returns the ``top_k`` best edits, best first (possibly with negative
    improvements when nothing helps).
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    analysis = analyze_plan(per_device, simulator, memory)
    sources = {
        analysis.bottleneck_device,
        int(np.argmax(analysis.breakdown.compute_ms)),
        int(np.argmax(analysis.device_dims)),
    }
    results: list[WhatIfResult] = []
    for b in sorted(sources):
        for ti in range(len(per_device[b])):
            for target in range(len(per_device)):
                if target == b:
                    continue
                results.append(
                    what_if_move(per_device, simulator, b, ti, target, memory)
                )
            results.append(what_if_split(per_device, simulator, b, ti, memory))
    results.sort(key=lambda r: -r.improvement_ms)
    return results[:top_k]
