"""Evaluation harness (Section 4's protocol).

For each sharding task, an algorithm produces a plan; the plan is
*executed on the (simulated) hardware* and the max per-device embedding
cost is recorded — never the algorithm's own cost estimate.  An algorithm
"cannot scale" to a setting when any task's plan is missing or
out-of-memory (the "-" entries of Table 1).

- :mod:`~repro.evaluation.runner` — run a sharder over a task batch.
- :mod:`~repro.evaluation.metrics` — improvements, summaries.
- :mod:`~repro.evaluation.reporting` — text/markdown tables.
- :mod:`~repro.evaluation.production` — the production-scale experiment
  (Table 4): embedding cost + end-to-end training throughput.
- :mod:`~repro.evaluation.analysis` — plan diagnostics and what-if
  probing on the cost-model simulator (bottleneck breakdowns, single
  move/split improvement scans).
"""

from repro.evaluation.runner import (
    MethodEvaluation,
    TaskOutcome,
    evaluate_sharder,
    evaluate_strategy,
    execute_plan,
)
from repro.evaluation.metrics import (
    improvement_percent,
    strongest_baseline,
)
from repro.evaluation.reporting import format_markdown_table, format_text_table
from repro.evaluation.production import (
    REPLAY_SEARCH_CONFIG,
    LifecycleRow,
    ProductionRow,
    replay_workload_trace,
    run_lifecycle_experiment,
    run_production_experiment,
)
from repro.evaluation.analysis import (
    PlanAnalysis,
    WhatIfResult,
    analyze_plan,
    best_single_improvement,
    what_if_move,
    what_if_split,
)

__all__ = [
    "PlanAnalysis",
    "WhatIfResult",
    "analyze_plan",
    "best_single_improvement",
    "what_if_move",
    "what_if_split",
    "TaskOutcome",
    "MethodEvaluation",
    "evaluate_sharder",
    "evaluate_strategy",
    "execute_plan",
    "improvement_percent",
    "strongest_baseline",
    "format_text_table",
    "format_markdown_table",
    "LifecycleRow",
    "ProductionRow",
    "REPLAY_SEARCH_CONFIG",
    "replay_workload_trace",
    "run_lifecycle_experiment",
    "run_production_experiment",
]
