"""The production-scale experiment (Section 4.5 / Table 4).

The paper deploys NeuroShard on an ultra-large production DLRM: nearly a
thousand embedding tables demanding multi-terabyte memory, sharded onto
128 GPUs, reporting per-method embedding cost and end-to-end training
throughput improvement over random sharding.  Production hardware and
model are unavailable, so this experiment *scales the same shape down*:
a large table subset with big dimensions under a deliberately tight
memory budget (so column-wise sharding is mandatory), a large simulated
cluster, and throughput measured from the trace simulator's steady-state
iteration time.

Faithful to the paper's protocol, the table-wise-only baselines first
receive NeuroShard's column-wise plan ("we first apply the column-wise
sharding plan proposed by NeuroShard and then run the baselines"), while
TorchRec plans its own column splits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    AutoShardSharder,
    DreamShardSharder,
    GreedySharder,
    PlannerSharder,
    RandomSharder,
)
from repro.baselines.base import Sharder, assignment_to_plan
from repro.config import (
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TrainConfig,
)
from repro.core.plan import apply_column_plan
from repro.core.sharder import NeuroShard
from repro.data.pool import TablePool
from repro.data.tasks import ShardingTask
from repro.evaluation.runner import execute_plan
from repro.hardware.cluster import SimulatedCluster

__all__ = ["ProductionRow", "run_production_experiment"]


@dataclass(frozen=True)
class ProductionRow:
    """One Table 4 row: method, cost, throughput improvement."""

    method: str
    embedding_cost_ms: float
    throughput_improvement_pct: float  # vs Random; nan for Random itself


def _make_production_task(
    pool: TablePool,
    num_devices: int,
    num_tables: int,
    memory_bytes: int,
    seed: int,
) -> ShardingTask:
    """A production-flavoured task: many tables, large dimensions.

    Dimensions are drawn from {64, 128} weighted toward 128, the regime
    where table-wise-only methods hit memory walls.
    """
    rng = np.random.default_rng(seed)
    tables = pool.sample_tables(num_tables, rng)
    dims = rng.choice([64, 128], size=len(tables), p=[0.3, 0.7])
    tables = [t.with_dim(int(d)) for t, d in zip(tables, dims)]
    # Keep the aggregate under cluster capacity (tasks must be solvable
    # by *some* plan); drop the largest tables until it is.
    tables.sort(key=lambda t: t.size_bytes)
    while tables and sum(t.size_bytes for t in tables) > 0.7 * memory_bytes * num_devices:
        tables.pop()
    if not tables:
        raise RuntimeError("memory budget too small for any production table")
    return ShardingTask(
        tables=tuple(tables),
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        task_id=0,
    )


def run_production_experiment(
    pool: TablePool,
    num_devices: int = 32,
    num_tables: int = 120,
    memory_bytes: int = 2 * 1024**3,
    collection: CollectionConfig | None = None,
    train: TrainConfig | None = None,
    search: SearchConfig | None = None,
    rl_episodes: int = 30,
    seed: int = 0,
) -> list[ProductionRow]:
    """Reproduce Table 4's comparison on a scaled production task.

    Args:
        pool: the table pool.
        num_devices: cluster size (paper: 128; default scaled to 32 so
            the experiment runs in minutes — see EXPERIMENTS.md).
        num_tables: tables in the production model (paper: ~1000).
        memory_bytes: per-device budget, deliberately tight.
        collection / train / search: NeuroShard configuration.
        rl_episodes: episode budget of the RL baselines.
        seed: master seed.

    Returns:
        One row per method, Random first.
    """
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=num_devices, memory_bytes=memory_bytes)
    )
    task = _make_production_task(
        pool, num_devices, num_tables, memory_bytes, seed
    )

    search = search or SearchConfig(top_n=4, beam_width=2, max_steps=6, grid_points=5)
    neuroshard, _ = NeuroShard.pretrain(
        cluster,
        pool,
        collection=collection,
        train=train,
        search=search,
        seed=seed,
    )
    ns_result = neuroshard.shard(task)
    if not ns_result.feasible or ns_result.plan is None:
        raise RuntimeError(
            "NeuroShard found no feasible production plan; loosen the "
            "memory budget or reduce num_tables"
        )
    column_plan = ns_result.plan.column_plan

    # Baselines (except TorchRec) run table-wise on NeuroShard's
    # column-sharded tables, as in the paper.
    sharded_tables = apply_column_plan(task.tables, column_plan)
    sharded_task = ShardingTask(
        tables=tuple(sharded_tables),
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        task_id=0,
    )

    baselines: list[Sharder] = [
        RandomSharder(seed=seed),
        GreedySharder("Size-based"),
        GreedySharder("Dim-based"),
        GreedySharder("Lookup-based"),
        GreedySharder("Size-lookup-based"),
        AutoShardSharder(neuroshard.models, episodes=rl_episodes, seed=seed),
        DreamShardSharder(neuroshard.models, episodes=rl_episodes, seed=seed),
    ]

    rows: list[ProductionRow] = []
    random_throughput = math.nan

    def run(method: str, plan) -> tuple[float, float]:
        if plan is None:
            return math.nan, math.nan
        execution = execute_plan(plan, task, cluster)
        if execution is None:
            return math.nan, math.nan
        return execution.max_cost_ms, execution.throughput_samples_per_s

    for baseline in baselines:
        plan = baseline.shard(sharded_task)
        if plan is not None:
            # Re-anchor the assignment onto the original task by carrying
            # NeuroShard's column plan.
            plan = assignment_to_plan(
                plan.assignment, num_devices, column_plan=column_plan
            )
        cost, throughput = run(baseline.name, plan)
        if baseline.name == "Random":
            random_throughput = throughput
            rows.append(ProductionRow(baseline.name, cost, math.nan))
        else:
            improvement = (
                (throughput - random_throughput) / random_throughput * 100.0
                if not math.isnan(throughput) and not math.isnan(random_throughput)
                else math.nan
            )
            rows.append(ProductionRow(baseline.name, cost, improvement))

    # TorchRec plans its own column-wise sharding on the original task.
    torchrec = PlannerSharder(batch_size=cluster.batch_size)
    cost, throughput = run(torchrec.name, torchrec.shard(task))
    rows.append(
        ProductionRow(
            torchrec.name,
            cost,
            (throughput - random_throughput) / random_throughput * 100.0
            if not math.isnan(throughput) and not math.isnan(random_throughput)
            else math.nan,
        )
    )

    cost, throughput = run("NeuroShard", ns_result.plan)
    rows.append(
        ProductionRow(
            "NeuroShard",
            cost,
            (throughput - random_throughput) / random_throughput * 100.0
            if not math.isnan(throughput) and not math.isnan(random_throughput)
            else math.nan,
        )
    )
    return rows
