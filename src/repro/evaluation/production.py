"""The production-scale experiments (Section 4.5 / Table 4 + lifecycle).

**Table 4** (:func:`run_production_experiment`): the paper deploys
NeuroShard on an ultra-large production DLRM: nearly a thousand
embedding tables demanding multi-terabyte memory, sharded onto 128 GPUs,
reporting per-method embedding cost and end-to-end training throughput
improvement over random sharding.  Production hardware and model are
unavailable, so this experiment *scales the same shape down*: a large
table subset with big dimensions under a deliberately tight memory
budget (so column-wise sharding is mandatory), a large simulated
cluster, and throughput measured from the trace simulator's steady-state
iteration time.

Faithful to the paper's protocol, the table-wise-only baselines first
receive NeuroShard's column-wise plan ("we first apply the column-wise
sharding plan proposed by NeuroShard and then run the baselines"), while
TorchRec plans its own column splits.

**Day-over-day lifecycle** (:func:`run_lifecycle_experiment`): the
paper's deployment notes describe a *living* workload — tables are added
and retired day over day as models iterate.  This experiment replays
such a day-sequence through the plan-lifecycle service
(:class:`~repro.api.service.ShardingService`): day 0 plans and applies,
every later day mutates the workload and ``reshard``s under a migration
budget, and each day the incremental plan is compared against the
re-shard-from-scratch candidate evaluated from the same applied state —
reporting per-day and cumulative migrated bytes next to the simulated
embedding cost, i.e. how much plan quality the budget buys per byte
*not* moved.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    AutoShardSharder,
    DreamShardSharder,
    GreedySharder,
    PlannerSharder,
    RandomSharder,
)
from repro.baselines.base import Sharder, assignment_to_plan
from repro.config import (
    ClusterConfig,
    CollectionConfig,
    SearchConfig,
    TrainConfig,
)
from repro.core.plan import apply_column_plan
from repro.core.sharder import NeuroShard
from repro.data.pool import TablePool
from repro.data.tasks import ShardingTask
from repro.evaluation.runner import execute_plan
from repro.hardware.cluster import SimulatedCluster

__all__ = [
    "LifecycleRow",
    "ProductionRow",
    "run_lifecycle_experiment",
    "run_production_experiment",
]


@dataclass(frozen=True)
class ProductionRow:
    """One Table 4 row: method, cost, throughput improvement."""

    method: str
    embedding_cost_ms: float
    throughput_improvement_pct: float  # vs Random; nan for Random itself


def _make_production_task(
    pool: TablePool,
    num_devices: int,
    num_tables: int,
    memory_bytes: int,
    seed: int,
) -> ShardingTask:
    """A production-flavoured task: many tables, large dimensions.

    Dimensions are drawn from {64, 128} weighted toward 128, the regime
    where table-wise-only methods hit memory walls.
    """
    rng = np.random.default_rng(seed)
    tables = pool.sample_tables(num_tables, rng)
    dims = rng.choice([64, 128], size=len(tables), p=[0.3, 0.7])
    tables = [t.with_dim(int(d)) for t, d in zip(tables, dims)]
    # Keep the aggregate under cluster capacity (tasks must be solvable
    # by *some* plan); drop the largest tables until it is.
    tables.sort(key=lambda t: t.size_bytes)
    while tables and sum(t.size_bytes for t in tables) > 0.7 * memory_bytes * num_devices:
        tables.pop()
    if not tables:
        raise RuntimeError("memory budget too small for any production table")
    return ShardingTask(
        tables=tuple(tables),
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        task_id=0,
    )


def run_production_experiment(
    pool: TablePool,
    num_devices: int = 32,
    num_tables: int = 120,
    memory_bytes: int = 2 * 1024**3,
    collection: CollectionConfig | None = None,
    train: TrainConfig | None = None,
    search: SearchConfig | None = None,
    rl_episodes: int = 30,
    seed: int = 0,
) -> list[ProductionRow]:
    """Reproduce Table 4's comparison on a scaled production task.

    Args:
        pool: the table pool.
        num_devices: cluster size (paper: 128; default scaled to 32 so
            the experiment runs in minutes — see EXPERIMENTS.md).
        num_tables: tables in the production model (paper: ~1000).
        memory_bytes: per-device budget, deliberately tight.
        collection / train / search: NeuroShard configuration.
        rl_episodes: episode budget of the RL baselines.
        seed: master seed.

    Returns:
        One row per method, Random first.
    """
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=num_devices, memory_bytes=memory_bytes)
    )
    task = _make_production_task(
        pool, num_devices, num_tables, memory_bytes, seed
    )

    search = search or SearchConfig(top_n=4, beam_width=2, max_steps=6, grid_points=5)
    neuroshard, _ = NeuroShard.pretrain(
        cluster,
        pool,
        collection=collection,
        train=train,
        search=search,
        seed=seed,
    )
    ns_result = neuroshard.shard(task)
    if not ns_result.feasible or ns_result.plan is None:
        raise RuntimeError(
            "NeuroShard found no feasible production plan; loosen the "
            "memory budget or reduce num_tables"
        )
    column_plan = ns_result.plan.column_plan

    # Baselines (except TorchRec) run table-wise on NeuroShard's
    # column-sharded tables, as in the paper.
    sharded_tables = apply_column_plan(task.tables, column_plan)
    sharded_task = ShardingTask(
        tables=tuple(sharded_tables),
        num_devices=num_devices,
        memory_bytes=memory_bytes,
        task_id=0,
    )

    baselines: list[Sharder] = [
        RandomSharder(seed=seed),
        GreedySharder("Size-based"),
        GreedySharder("Dim-based"),
        GreedySharder("Lookup-based"),
        GreedySharder("Size-lookup-based"),
        AutoShardSharder(neuroshard.models, episodes=rl_episodes, seed=seed),
        DreamShardSharder(neuroshard.models, episodes=rl_episodes, seed=seed),
    ]

    rows: list[ProductionRow] = []
    random_throughput = math.nan

    def run(method: str, plan) -> tuple[float, float]:
        if plan is None:
            return math.nan, math.nan
        execution = execute_plan(plan, task, cluster)
        if execution is None:
            return math.nan, math.nan
        return execution.max_cost_ms, execution.throughput_samples_per_s

    for baseline in baselines:
        plan = baseline.shard(sharded_task)
        if plan is not None:
            # Re-anchor the assignment onto the original task by carrying
            # NeuroShard's column plan.
            plan = assignment_to_plan(
                plan.assignment, num_devices, column_plan=column_plan
            )
        cost, throughput = run(baseline.name, plan)
        if baseline.name == "Random":
            random_throughput = throughput
            rows.append(ProductionRow(baseline.name, cost, math.nan))
        else:
            improvement = (
                (throughput - random_throughput) / random_throughput * 100.0
                if not math.isnan(throughput) and not math.isnan(random_throughput)
                else math.nan
            )
            rows.append(ProductionRow(baseline.name, cost, improvement))

    # TorchRec plans its own column-wise sharding on the original task.
    torchrec = PlannerSharder(batch_size=cluster.batch_size)
    cost, throughput = run(torchrec.name, torchrec.shard(task))
    rows.append(
        ProductionRow(
            torchrec.name,
            cost,
            (throughput - random_throughput) / random_throughput * 100.0
            if not math.isnan(throughput) and not math.isnan(random_throughput)
            else math.nan,
        )
    )

    cost, throughput = run("NeuroShard", ns_result.plan)
    rows.append(
        ProductionRow(
            "NeuroShard",
            cost,
            (throughput - random_throughput) / random_throughput * 100.0
            if not math.isnan(throughput) and not math.isnan(random_throughput)
            else math.nan,
        )
    )
    return rows


@dataclass(frozen=True)
class LifecycleRow:
    """One day of the plan-lifecycle replay.

    Attributes:
        day: 0 is the initial plan+apply; later days are reshards.
        num_tables: logical workload size after the day's delta (column
            shards of one table count once).
        cost_ms: simulated embedding cost of the day's applied plan.
        moved_mb: megabytes of surviving shards the applied plan moved.
        migration_ms: priced migration wall-clock of the day's change.
        scratch_cost_ms / scratch_moved_mb: the re-shard-from-scratch
            candidate evaluated from the same applied state (nan/0 on
            day 0 and when the candidate was infeasible).
        cumulative_moved_mb / cumulative_scratch_moved_mb: running totals
            of both columns.
        chosen: which candidate the service applied.
        within_budget: the applied plan's migration respected the
            budget.  When *no* candidate could (the unavoidable ingress
            of the day's added tables alone can exceed a tight budget),
            the service applies the cheapest-migration candidate and
            this flag is ``False`` — the row is reported, not hidden.
    """

    day: int
    num_tables: int
    cost_ms: float
    moved_mb: float
    migration_ms: float
    scratch_cost_ms: float
    scratch_moved_mb: float
    cumulative_moved_mb: float
    cumulative_scratch_moved_mb: float
    chosen: str
    within_budget: bool = True


def run_lifecycle_experiment(
    pool: TablePool,
    num_devices: int = 8,
    num_tables: int = 40,
    days: int = 5,
    add_per_day: int = 3,
    remove_per_day: int = 2,
    memory_bytes: int = 2 * 1024**3,
    migration_budget_ms: float | None = None,
    migration_lambda: float = 1e-4,
    collection: CollectionConfig | None = None,
    train: TrainConfig | None = None,
    search: SearchConfig | None = None,
    seed: int = 0,
) -> list[LifecycleRow]:
    """Replay a day-over-day workload through the plan-lifecycle service.

    Day 0 creates a deployment, plans and applies.  Each following day
    samples ``add_per_day`` fresh tables (new table ids, production-style
    model iteration) and retires ``remove_per_day`` existing ones, then
    asks the service to ``reshard`` under ``migration_budget_ms``.  The
    from-scratch candidate is always evaluated alongside, so every row
    reports how many bytes the incremental plan avoided moving and what
    that costs in simulated milliseconds.

    The scratch column is the *one-step* counterfactual: each day's
    re-search is diffed against the actually-applied (incremental) plan,
    not against a parallel scratch-only history.

    Returns:
        One row per day, day 0 first.
    """
    # Deferred import: repro.api imports the evaluation runner.
    from repro.api import (
        ReshardConfig,
        ShardingEngine,
        ShardingService,
        WorkloadDelta,
    )

    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    rng = np.random.default_rng(seed)
    cluster = SimulatedCluster(
        ClusterConfig(num_devices=num_devices, memory_bytes=memory_bytes)
    )
    task = _make_production_task(
        pool, num_devices, num_tables, memory_bytes, seed
    )
    search = search or SearchConfig(top_n=4, beam_width=2, max_steps=6, grid_points=5)
    neuroshard, _ = NeuroShard.pretrain(
        cluster, pool, collection=collection, train=train, search=search,
        seed=seed,
    )
    engine = ShardingEngine(cluster, neuroshard.models, search=search)
    service = ShardingService()
    service.create_deployment("lifecycle", engine, tables=task.tables,
                              memory_bytes=memory_bytes)
    record = service.plan("lifecycle")
    if not record.feasible:
        raise RuntimeError(
            "day-0 plan infeasible; loosen the memory budget or reduce "
            "num_tables"
        )
    service.apply("lifecycle")

    config = ReshardConfig(
        migration_budget_ms=migration_budget_ms,
        migration_lambda=migration_lambda,
        allow_full_search=True,
    )
    next_table_id = max(t.table_id for t in pool.tables) + 1
    rows = [
        LifecycleRow(
            day=0,
            num_tables=len({t.table_id for t in task.tables}),
            cost_ms=record.simulated_cost_ms,
            moved_mb=0.0,
            migration_ms=0.0,
            scratch_cost_ms=math.nan,
            scratch_moved_mb=0.0,
            cumulative_moved_mb=0.0,
            cumulative_scratch_moved_mb=0.0,
            chosen="plan",
        )
    ]
    cumulative = 0.0
    cumulative_scratch = 0.0
    for day in range(1, days):
        current = service.applied_record("lifecycle")
        assert current is not None
        sampled = pool.sample_tables(add_per_day, rng)
        dims = rng.choice([64, 128], size=len(sampled), p=[0.3, 0.7])
        added = tuple(
            dataclasses.replace(t.with_dim(int(d)), table_id=next_table_id + i)
            for i, (t, d) in enumerate(zip(sampled, dims))
        )
        next_table_id += len(added)
        current_ids = sorted({t.table_id for t in current.base_tables})
        removed = tuple(
            int(i)
            for i in rng.choice(
                current_ids,
                size=min(remove_per_day, max(len(current_ids) - 1, 0)),
                replace=False,
            )
        )
        record = service.reshard(
            "lifecycle",
            WorkloadDelta(add_tables=added, remove_table_ids=removed),
            config=config,
        )
        if not record.feasible or record.diff is None:
            raise RuntimeError(f"day {day} reshard infeasible")
        moved_mb = record.diff.moved_bytes / 1e6
        full = record.metadata.get("full_search") or {}
        scratch_moved_mb = full.get("moved_bytes", 0) / 1e6
        cumulative += moved_mb
        cumulative_scratch += scratch_moved_mb
        rows.append(
            LifecycleRow(
                day=day,
                num_tables=len({t.table_id for t in record.base_tables}),
                cost_ms=record.simulated_cost_ms,
                moved_mb=moved_mb,
                migration_ms=record.diff.migration_cost_ms,
                scratch_cost_ms=full.get("simulated_cost_ms", math.nan),
                scratch_moved_mb=scratch_moved_mb,
                cumulative_moved_mb=cumulative,
                cumulative_scratch_moved_mb=cumulative_scratch,
                chosen=str(record.metadata.get("chosen", "?")),
                within_budget=bool(record.metadata.get("within_budget", True)),
            )
        )
    return rows
