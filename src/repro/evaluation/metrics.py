"""Comparison metrics for evaluation reports."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.evaluation.runner import MethodEvaluation

__all__ = ["improvement_percent", "strongest_baseline"]


def improvement_percent(baseline_cost: float, method_cost: float) -> float:
    """Relative improvement of ``method`` over ``baseline`` in percent.

    Positive means the method is cheaper (the paper's "+x%" rows).
    Returns ``nan`` when either side is unavailable.
    """
    if (
        math.isnan(baseline_cost)
        or math.isnan(method_cost)
        or baseline_cost <= 0
    ):
        return math.nan
    return (baseline_cost - method_cost) / baseline_cost * 100.0


def strongest_baseline(
    evaluations: Mapping[str, MethodEvaluation],
    exclude: Sequence[str] = ("NeuroShard",),
) -> tuple[str, float]:
    """The lowest-mean-cost scaling baseline (Table 1's bottom row
    compares NeuroShard against the strongest baseline per column).

    Returns ``("", nan)`` when no baseline scales.
    """
    best_name, best_cost = "", math.inf
    for name, evaluation in evaluations.items():
        if name in exclude:
            continue
        cost = evaluation.mean_cost_ms
        if not math.isnan(cost) and cost < best_cost:
            best_name, best_cost = name, cost
    if best_name == "":
        return "", math.nan
    return best_name, best_cost
