"""Run sharding algorithms over task batches and measure real costs.

Implements the paper's evaluation protocol (Section 4, "Evaluation
protocol"): every plan is executed on the hardware (here, the simulated
cluster), the *maximum* embedding cost across devices is the task's
score, and a method that fails any task of a setting — no plan, or an
out-of-memory plan — is marked unable to scale ("-").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.plan import ShardingPlan
from repro.core.sharder import ShardingResult
from repro.data.tasks import ShardingTask
from repro.hardware.cluster import PlanExecution, SimulatedCluster
from repro.hardware.memory import OutOfMemoryError

__all__ = [
    "TaskOutcome",
    "MethodEvaluation",
    "evaluate_sharder",
    "evaluate_strategy",
    "execute_plan",
]


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one (method, task) pair.

    Attributes:
        task_id: the task's id within its batch.
        success: a plan was produced and executed within memory.
        cost_ms: real max-device embedding cost (``nan`` on failure).
        sharding_time_s: wall-clock time the algorithm spent planning.
    """

    task_id: int
    success: bool
    cost_ms: float
    sharding_time_s: float


@dataclass(frozen=True)
class MethodEvaluation:
    """Aggregate of one method over a task batch (one Table 1 cell)."""

    method: str
    outcomes: tuple[TaskOutcome, ...]

    @property
    def num_tasks(self) -> int:
        return len(self.outcomes)

    @property
    def num_success(self) -> int:
        return sum(1 for o in self.outcomes if o.success)

    @property
    def success_rate(self) -> float:
        return self.num_success / self.num_tasks if self.outcomes else 0.0

    @property
    def scales(self) -> bool:
        """Paper semantics: a method scales only if *all* tasks succeed."""
        return self.num_success == self.num_tasks

    @property
    def mean_cost_ms(self) -> float:
        """Mean real cost across tasks; ``nan`` unless all succeeded
        (the paper reports "-" when any task fails)."""
        if not self.scales:
            return math.nan
        return float(np.mean([o.cost_ms for o in self.outcomes]))

    @property
    def mean_cost_of_successes_ms(self) -> float:
        """Mean over the successful tasks only (used by ablations that
        report cost alongside a <100% success rate)."""
        succeeded = [o.cost_ms for o in self.outcomes if o.success]
        return float(np.mean(succeeded)) if succeeded else math.nan

    @property
    def mean_sharding_time_s(self) -> float:
        return float(np.mean([o.sharding_time_s for o in self.outcomes]))


def _extract_plan(
    result: object, task: ShardingTask
) -> tuple[ShardingPlan | None, tuple]:
    """Accept raw plans, NeuroShard results and API return types.

    Returns the plan plus the table list it assigns — the task's own
    tables unless the strategy rewrote them (row-wise pre-processing).
    """
    # Imported here: repro.api sits above the evaluation layer.
    from repro.api.schema import PlanOverTables, ShardingResponse

    if result is None or isinstance(result, ShardingPlan):
        return result, task.tables
    if isinstance(result, PlanOverTables):
        return result.plan, result.tables
    if isinstance(result, ShardingResponse):
        plan = result.plan if result.feasible else None
        return plan, result.plan_tables(task)
    if isinstance(result, ShardingResult):
        return (result.plan if result.feasible else None), task.tables
    raise TypeError(
        f"sharder returned {type(result).__name__}; expected ShardingPlan, "
        "PlanOverTables, ShardingResult, ShardingResponse or None"
    )


def execute_plan(
    plan: ShardingPlan,
    task: ShardingTask,
    cluster: SimulatedCluster,
) -> PlanExecution | None:
    """Execute a plan on the cluster; ``None`` on out-of-memory."""
    return _execute_over_tables(plan, task.tables, cluster)


def _execute_over_tables(
    plan: ShardingPlan, tables, cluster: SimulatedCluster
) -> PlanExecution | None:
    per_device = plan.per_device_tables(tables)
    try:
        return cluster.evaluate_plan(per_device)
    except OutOfMemoryError:
        return None


def evaluate_sharder(
    sharder,
    tasks: Sequence[ShardingTask],
    cluster: SimulatedCluster,
    name: str | None = None,
) -> MethodEvaluation:
    """Run ``sharder`` over ``tasks``, executing every plan on ``cluster``.

    Args:
        sharder: anything with ``shard(task)`` returning a plan,
            a :class:`ShardingResult`, or ``None``.
        tasks: the task batch (all must match the cluster's device count).
        cluster: the ground-truth hardware.
        name: display name override (defaults to ``sharder.name``).
    """
    outcomes: list[TaskOutcome] = []
    for task in tasks:
        if task.num_devices != cluster.num_devices:
            raise ValueError(
                f"task {task.task_id} targets {task.num_devices} devices, "
                f"cluster has {cluster.num_devices}"
            )
        started = time.perf_counter()
        plan, plan_tables = _extract_plan(sharder.shard(task), task)
        elapsed = time.perf_counter() - started
        if plan is None:
            outcomes.append(
                TaskOutcome(task.task_id, False, math.nan, elapsed)
            )
            continue
        execution = _execute_over_tables(plan, plan_tables, cluster)
        if execution is None:
            outcomes.append(
                TaskOutcome(task.task_id, False, math.nan, elapsed)
            )
        else:
            outcomes.append(
                TaskOutcome(task.task_id, True, execution.max_cost_ms, elapsed)
            )
    return MethodEvaluation(
        method=name or getattr(sharder, "name", type(sharder).__name__),
        outcomes=tuple(outcomes),
    )


def evaluate_strategy(
    strategy: str,
    tasks: Sequence[ShardingTask],
    cluster: SimulatedCluster,
    bundle=None,
    name: str | None = None,
    **kwargs,
) -> MethodEvaluation:
    """Run a registry strategy over ``tasks`` (the new-API entry point).

    Equivalent to ``evaluate_sharder(make_sharder(strategy, ...), ...)``:
    the algorithm is resolved by name through :mod:`repro.api.registry`,
    and ``kwargs`` are forwarded to its factory.
    """
    from repro.api import make_sharder

    sharder = make_sharder(strategy, cluster=cluster, bundle=bundle, **kwargs)
    return evaluate_sharder(sharder, tasks, cluster, name=name)
