"""Plain-text and markdown table formatting for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep that output aligned and diff-friendly.  ``nan`` cells
render as "-", matching the paper's notation for methods that cannot
scale.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["format_text_table", "format_markdown_table"]


def _render_cell(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def format_text_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    rendered = [[_render_cell(c, precision) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rendered)) if rendered else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
) -> str:
    """GitHub-flavored markdown table."""
    rendered = [[_render_cell(c, precision) for c in row] for row in rows]
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rendered:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
