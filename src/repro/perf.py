"""Search-performance instrumentation: stage timers and counters.

The online search is the service's hot path, so its efficiency is a
first-class, measured quantity (the same serving-efficiency concern FLSys
raises for high-traffic ML services).  A :class:`SearchProfile` rides
along a single search invocation and records

- **stage timers** — cumulative wall-clock seconds per named stage
  (candidate generation, inner-loop evaluation, greedy assignment, plan
  scoring), and
- **counters** — how much work each optimization layer did or avoided
  (inner-loop evaluations requested vs. actually run, plan-memo hits,
  cost-cache traffic, stacked prediction batches), and
- **histograms** — power-of-two bucketed size distributions, used by the
  batched scoring kernel to record how many feature rows / device sets
  each merged forward pass carries (the whole point of batching is to
  move these distributions up by orders of magnitude).

Profiles are plain data: they serialize to nested dictionaries, surface
on :class:`~repro.core.sharder.ShardingResult` /
:class:`~repro.api.schema.ShardingResponse` as the ``profile`` field, and
print from the CLI via ``python -m repro shard --profile``.

Profiling is opt-in and near-free when off: the search passes ``None``
around and every instrumentation site is guarded by a single ``is not
None`` check, so the paper-mode hot path stays unencumbered.

Counter vocabulary (written by the search layers):

======================  ================================================
``evaluations``         inner-loop (grid search) requests, memo hits
                        included — comparable to the pre-optimization
                        search's evaluation count
``unique_evaluations``  grid searches actually executed
``plan_memo_hits``      column plans served from the multiset memo
``grid_passes``         greedy passes over the ``max_dim`` grid
``grid_pass_groups``    distinct lockstep trajectories those passes
                        collapsed into (batched scoring; identical
                        candidate-mask histories share one greedy state)
``greedy_steps``        table-placement steps; under batched scoring one
                        step advances a whole trajectory group
``scored_candidates``   candidate devices scored across all steps
``predict_batches``     stacked cost-model forward passes
``predicted_sets``      device table sets predicted (cache misses)
``batch_dedup_hits``    duplicate candidate sets served from an earlier
                        slot of the same merged batch
``single_cost_memo_hits``  single-table costs served by the uid memo
======================  ================================================

Histogram vocabulary (batched scoring kernel):

``predict_rows_per_batch``  feature rows per merged forward pass
``predict_sets_per_batch``  device sets per merged forward pass
``frontier_size``           grid instances driven per lockstep frontier
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Any, Iterator, Mapping

__all__ = ["SearchProfile", "maybe_stage"]


class SearchProfile:
    """Mutable counter/timer bag for one search invocation.

    Not thread-safe: one profile instruments one (single-threaded)
    search.  Concurrent requests each carry their own profile.
    """

    __slots__ = ("counters", "timers_s", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers_s: dict[str, float] = {}
        # name -> {"count", "total", "min", "max", "buckets"} with
        # power-of-two bucket labels ("1", "2", "3-4", "5-8", ...).
        self.histograms: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    @staticmethod
    def _bucket_label(value: int) -> str:
        """Power-of-two bucket of a non-negative size: 0, 1, 2, 3-4, 5-8…"""
        if value <= 2:
            return str(value)
        hi = 1 << (value - 1).bit_length()
        return f"{hi // 2 + 1}-{hi}"

    def observe(self, name: str, value: int) -> None:
        """Record one size observation into histogram ``name``."""
        value = int(value)
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = {
                "count": 0,
                "total": 0,
                "min": value,
                "max": value,
                "buckets": {},
            }
        hist["count"] += 1
        hist["total"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        label = self._bucket_label(value)
        hist["buckets"][label] = hist["buckets"].get(label, 0) + 1

    def add_time(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage timer ``name`` (created at 0.0)."""
        self.timers_s[name] = self.timers_s.get(name, 0.0) + seconds

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into stage ``name`` (cumulative)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # aggregation / serialization
    # ------------------------------------------------------------------

    def merge(self, other: "SearchProfile | Mapping[str, Any]") -> None:
        """Accumulate another profile (or its ``to_dict`` form) into this
        one — used by the CLI to aggregate per-task profiles."""
        if isinstance(other, SearchProfile):
            counters: Mapping[str, Any] = other.counters
            timers: Mapping[str, Any] = other.timers_s
            histograms: Mapping[str, Any] = other.histograms
        else:
            counters = other.get("counters", {})
            timers = other.get("timers_s", {})
            histograms = other.get("histograms", {})
        for name, n in counters.items():
            self.count(name, int(n))
        for name, seconds in timers.items():
            self.add_time(name, float(seconds))
        for name, hist in histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = {
                    "count": int(hist["count"]),
                    "total": int(hist["total"]),
                    "min": int(hist["min"]),
                    "max": int(hist["max"]),
                    "buckets": {k: int(v) for k, v in hist["buckets"].items()},
                }
                continue
            mine["count"] += int(hist["count"])
            mine["total"] += int(hist["total"])
            mine["min"] = min(mine["min"], int(hist["min"]))
            mine["max"] = max(mine["max"], int(hist["max"]))
            for label, n in hist["buckets"].items():
                mine["buckets"][label] = mine["buckets"].get(label, 0) + int(n)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible snapshot of counters, timers and histograms."""
        out: dict[str, Any] = {
            "counters": dict(self.counters),
            "timers_s": {k: float(v) for k, v in self.timers_s.items()},
        }
        if self.histograms:
            out["histograms"] = {
                name: {
                    "count": hist["count"],
                    "total": hist["total"],
                    "min": hist["min"],
                    "max": hist["max"],
                    "buckets": dict(hist["buckets"]),
                }
                for name, hist in self.histograms.items()
            }
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchProfile":
        """Inverse of :meth:`to_dict`."""
        profile = cls()
        profile.merge(data)
        return profile

    def format_lines(self) -> list[str]:
        """Human-readable summary lines (CLI ``--profile`` output)."""
        lines = []
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:24s} {self.counters[name]}")
        if self.timers_s:
            lines.append("stage seconds:")
            for name in sorted(self.timers_s):
                lines.append(f"  {name:24s} {self.timers_s[name]:.4f}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                hist = self.histograms[name]
                mean = hist["total"] / hist["count"] if hist["count"] else 0.0
                lines.append(
                    f"  {name:24s} n={hist['count']} mean={mean:.1f} "
                    f"min={hist['min']} max={hist['max']}"
                )
        return lines or ["(empty profile)"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SearchProfile(counters={self.counters}, timers_s={self.timers_s})"


def maybe_stage(profile: SearchProfile | None, name: str):
    """``profile.stage(name)`` or a free no-op when profiling is off."""
    return nullcontext() if profile is None else profile.stage(name)
