"""Search-performance instrumentation: stage timers and counters.

The online search is the service's hot path, so its efficiency is a
first-class, measured quantity (the same serving-efficiency concern FLSys
raises for high-traffic ML services).  A :class:`SearchProfile` rides
along a single search invocation and records

- **stage timers** — cumulative wall-clock seconds per named stage
  (candidate generation, inner-loop evaluation, greedy assignment, plan
  scoring), and
- **counters** — how much work each optimization layer did or avoided
  (inner-loop evaluations requested vs. actually run, plan-memo hits,
  cost-cache traffic, stacked prediction batches).

Profiles are plain data: they serialize to nested dictionaries, surface
on :class:`~repro.core.sharder.ShardingResult` /
:class:`~repro.api.schema.ShardingResponse` as the ``profile`` field, and
print from the CLI via ``python -m repro shard --profile``.

Profiling is opt-in and near-free when off: the search passes ``None``
around and every instrumentation site is guarded by a single ``is not
None`` check, so the paper-mode hot path stays unencumbered.

Counter vocabulary (written by the search layers):

======================  ================================================
``evaluations``         inner-loop (grid search) requests, memo hits
                        included — comparable to the pre-optimization
                        search's evaluation count
``unique_evaluations``  grid searches actually executed
``plan_memo_hits``      column plans served from the multiset memo
``grid_passes``         greedy passes over the ``max_dim`` grid
``greedy_steps``        table-placement steps across all greedy passes
``scored_candidates``   candidate devices scored across all steps
``predict_batches``     stacked cost-model forward passes
``predicted_sets``      device table sets predicted (cache misses)
``single_cost_memo_hits``  single-table costs served by the uid memo
======================  ================================================
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Any, Iterator, Mapping

__all__ = ["SearchProfile", "maybe_stage"]


class SearchProfile:
    """Mutable counter/timer bag for one search invocation.

    Not thread-safe: one profile instruments one (single-threaded)
    search.  Concurrent requests each carry their own profile.
    """

    __slots__ = ("counters", "timers_s")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers_s: dict[str, float] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage timer ``name`` (created at 0.0)."""
        self.timers_s[name] = self.timers_s.get(name, 0.0) + seconds

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into stage ``name`` (cumulative)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # aggregation / serialization
    # ------------------------------------------------------------------

    def merge(self, other: "SearchProfile | Mapping[str, Any]") -> None:
        """Accumulate another profile (or its ``to_dict`` form) into this
        one — used by the CLI to aggregate per-task profiles."""
        if isinstance(other, SearchProfile):
            counters: Mapping[str, Any] = other.counters
            timers: Mapping[str, Any] = other.timers_s
        else:
            counters = other.get("counters", {})
            timers = other.get("timers_s", {})
        for name, n in counters.items():
            self.count(name, int(n))
        for name, seconds in timers.items():
            self.add_time(name, float(seconds))

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible snapshot ``{"counters": ..., "timers_s": ...}``."""
        return {
            "counters": dict(self.counters),
            "timers_s": {k: float(v) for k, v in self.timers_s.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchProfile":
        """Inverse of :meth:`to_dict`."""
        profile = cls()
        profile.merge(data)
        return profile

    def format_lines(self) -> list[str]:
        """Human-readable summary lines (CLI ``--profile`` output)."""
        lines = []
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:24s} {self.counters[name]}")
        if self.timers_s:
            lines.append("stage seconds:")
            for name in sorted(self.timers_s):
                lines.append(f"  {name:24s} {self.timers_s[name]:.4f}")
        return lines or ["(empty profile)"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SearchProfile(counters={self.counters}, timers_s={self.timers_s})"


def maybe_stage(profile: SearchProfile | None, name: str):
    """``profile.stage(name)`` or a free no-op when profiling is off."""
    return nullcontext() if profile is None else profile.stage(name)
