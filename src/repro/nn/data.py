"""Dataset containers, splitting and mini-batching.

The cost models train on fixed arrays (features → latency), split
80/10/10 into train/valid/test with shuffling (Appendix F).  The compute
model's inputs are *sets* of table-feature rows, so the dataset here is
deliberately generic: it shuffles and batches by sample index and lets the
model assemble whatever array layout it needs per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.config import rng_from_seed

__all__ = ["ArrayDataset", "train_valid_test_split", "minibatches"]


@dataclass(frozen=True)
class ArrayDataset:
    """Aligned (inputs, targets) arrays.

    ``inputs`` may be any per-sample indexable object (2-D array for the
    comm model, list of per-sample feature matrices for the compute
    model); ``targets`` is a 1-D float array of measured latencies.
    """

    inputs: Sequence
    targets: np.ndarray

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.targets):
            raise ValueError(
                f"inputs ({len(self.inputs)}) and targets ({len(self.targets)}) "
                "must align"
            )
        if len(self.targets) == 0:
            raise ValueError("dataset must not be empty")

    def __len__(self) -> int:
        return len(self.targets)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """A new dataset restricted to ``indices`` (copying targets)."""
        if isinstance(self.inputs, np.ndarray):
            inputs = self.inputs[indices]
        else:
            inputs = [self.inputs[i] for i in indices]
        return ArrayDataset(inputs=inputs, targets=np.asarray(self.targets)[indices])


def train_valid_test_split(
    dataset: ArrayDataset,
    train_frac: float = 0.8,
    valid_frac: float = 0.1,
    seed: int | np.random.Generator = 0,
) -> tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
    """Shuffle and split into train/valid/test (paper: 80/10/10).

    Every split is guaranteed at least one sample; tiny datasets steal
    from the training split to achieve that.
    """
    if not 0 < train_frac < 1 or not 0 < valid_frac < 1:
        raise ValueError("fractions must be in (0, 1)")
    if train_frac + valid_frac >= 1:
        raise ValueError("train_frac + valid_frac must be < 1")
    n = len(dataset)
    if n < 3:
        raise ValueError(f"need at least 3 samples to split, got {n}")
    rng = rng_from_seed(seed)
    order = rng.permutation(n)
    n_valid = max(1, int(round(n * valid_frac)))
    n_test = max(1, int(round(n * (1 - train_frac - valid_frac))))
    n_train = n - n_valid - n_test
    if n_train < 1:
        raise ValueError(f"split leaves no training data for n={n}")
    return (
        dataset.subset(order[:n_train]),
        dataset.subset(order[n_train : n_train + n_valid]),
        dataset.subset(order[n_train + n_valid :]),
    )


def minibatches(
    n: int,
    batch_size: int,
    rng: int | np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    Shuffles when ``rng`` is given (training); sequential otherwise
    (evaluation).  The last batch may be smaller.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(n)
    if rng is not None:
        order = rng_from_seed(rng).permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]
