"""Mini-batch training loop with best-validation checkpointing.

The paper trains each cost model for 1000 epochs with batch size 512 and
"saves the model that can deliver the best results on the validation
data" (Appendix F).  The :class:`Trainer` here reproduces that protocol
for any model implementing the small :class:`TrainableRegressor`
interface (the two cost-model classes assemble their own batch layouts,
which is why the interface hands them raw per-sample inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.config import TrainConfig, rng_from_seed
from repro.nn.data import ArrayDataset, minibatches
from repro.nn.layers import Parameter
from repro.nn.loss import MSELoss
from repro.nn.optim import Adam

__all__ = ["TrainableRegressor", "TrainResult", "Trainer"]


class TrainableRegressor(Protocol):
    """What a model must expose to be trained by :class:`Trainer`."""

    def forward_batch(self, inputs: Sequence) -> np.ndarray:
        """Predict a 1-D latency vector for a batch of raw inputs."""
        ...

    def backward_batch(self, grad: np.ndarray) -> None:
        """Backpropagate the loss gradient of the last forward batch."""
        ...

    def parameters(self) -> "list[Parameter] | object":
        """Trainable parameters (iterable)."""
        ...

    def state_dict(self) -> dict[str, np.ndarray]:
        ...

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        ...


@dataclass
class TrainResult:
    """Training outcome and learning curves.

    Attributes:
        train_losses / valid_losses: per-epoch MSE.
        best_epoch: epoch whose validation MSE was lowest (its weights are
            the ones left loaded in the model).
        best_valid_mse: that epoch's validation MSE.
        test_mse: final test MSE of the best weights (``nan`` when no test
            set was supplied).
    """

    train_losses: list[float] = field(default_factory=list)
    valid_losses: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_valid_mse: float = float("inf")
    test_mse: float = float("nan")


class Trainer:
    """Adam + MSE mini-batch trainer with best-validation keeping."""

    def __init__(self, config: TrainConfig | None = None) -> None:
        self.config = config or TrainConfig()

    def evaluate(self, model: TrainableRegressor, dataset: ArrayDataset) -> float:
        """Mean-squared error of ``model`` on ``dataset`` (no updates)."""
        loss = MSELoss()
        total, count = 0.0, 0
        for idx in minibatches(len(dataset), self.config.batch_size):
            batch = dataset.subset(idx)
            pred = model.forward_batch(batch.inputs)
            total += loss(pred, batch.targets) * len(idx)
            count += len(idx)
        return total / count

    def fit(
        self,
        model: TrainableRegressor,
        train: ArrayDataset,
        valid: ArrayDataset,
        test: ArrayDataset | None = None,
        seed: int = 0,
    ) -> TrainResult:
        """Train ``model``; leave the best-validation weights loaded."""
        cfg = self.config
        rng = rng_from_seed(seed)
        optimizer = Adam(
            model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay
        )
        loss_fn = MSELoss()
        result = TrainResult()
        best_state: dict[str, np.ndarray] | None = None

        for epoch in range(cfg.epochs):
            if cfg.cosine_decay and cfg.epochs > 1:
                # Cosine-decay the learning rate to 1% of its base value;
                # the late-phase small steps are what push the cost
                # models to the paper's sub-ms accuracy.
                progress = epoch / (cfg.epochs - 1)
                optimizer.lr = cfg.learning_rate * (
                    0.01 + 0.99 * 0.5 * (1.0 + np.cos(np.pi * progress))
                )
            epoch_loss, seen = 0.0, 0
            for idx in minibatches(len(train), cfg.batch_size, rng):
                batch = train.subset(idx)
                pred = model.forward_batch(batch.inputs)
                batch_loss = loss_fn(pred, batch.targets)
                optimizer.zero_grad()
                model.backward_batch(loss_fn.backward())
                optimizer.step()
                epoch_loss += batch_loss * len(idx)
                seen += len(idx)
            train_mse = epoch_loss / seen
            valid_mse = self.evaluate(model, valid)
            result.train_losses.append(train_mse)
            result.valid_losses.append(valid_mse)
            if valid_mse < result.best_valid_mse:
                result.best_valid_mse = valid_mse
                result.best_epoch = epoch
                best_state = model.state_dict()
            if cfg.log_every and (epoch + 1) % cfg.log_every == 0:
                print(
                    f"epoch {epoch + 1}/{cfg.epochs}: "
                    f"train MSE {train_mse:.4f}, valid MSE {valid_mse:.4f}"
                )

        if best_state is not None:
            model.load_state_dict(best_state)
        if test is not None:
            result.test_mse = self.evaluate(model, test)
        return result
