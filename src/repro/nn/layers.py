"""Neural-network modules with hand-written backward passes.

The module contract:

- ``forward(x)`` computes the output and caches whatever the backward
  pass needs (inputs, masks).
- ``backward(grad_out)`` consumes the cache, accumulates parameter
  gradients into ``Parameter.grad`` and returns the gradient w.r.t. the
  module input.
- ``parameters()`` yields all trainable :class:`Parameter` objects.

Shapes follow the row-major convention: activations are ``[batch,
features]`` float64 arrays (float64 keeps the tiny cost models' training
numerically boring; they are far too small for speed to matter).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "SegmentSum",
]


class Parameter:
    """A trainable array with its gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter({self.name or 'unnamed'}, shape={self.shape})"


class Module:
    """Base class for all layers and models."""

    def parameters(self) -> Iterator[Parameter]:
        """Yield trainable parameters (depth-first over submodules)."""
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Parameter):
                        yield item

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> np.ndarray:
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameter values keyed by enumeration order."""
        return {f"p{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_dict`; shapes must match exactly."""
        params = list(self.parameters())
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)} parameters"
            )
        for i, p in enumerate(params):
            key = f"p{i}"
            if key not in state:
                raise KeyError(f"missing parameter {key} in state dict")
            if state[key].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: state {state[key].shape} vs "
                    f"model {p.data.shape}"
                )
            p.data[...] = state[key]


class Linear(Module):
    """Fully-connected layer: ``y = x @ W + b``.

    Weights use He-uniform initialization (suitable for the ReLU MLPs of
    the cost models); biases start at zero.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        name: str = "",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"features must be >= 1, got {in_features} -> {out_features}"
            )
        rng = rng or np.random.default_rng(0)
        bound = np.sqrt(6.0 / in_features)
        self.weight = Parameter(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self._x: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input [batch, {self.in_features}], got {x.shape}"
            )
        self._x = x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=np.float64)
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data.T


class ReLU(Module):
    """Element-wise ``max(x, 0)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)


class Tanh(Module):
    """Element-wise hyperbolic tangent."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(np.asarray(x, dtype=np.float64))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_out, dtype=np.float64) * (1.0 - self._y**2)


class Dropout(Module):
    """Inverted dropout: zero activations with probability ``p`` and
    rescale the survivors by ``1/(1-p)`` so expectations match eval mode.

    Training-time stochasticity flows through an explicit generator (set
    via :meth:`set_rng` or the constructor) — no global random state, per
    the repository's determinism contract.  Call :meth:`eval` /
    :meth:`train` to toggle; dropout is the identity in eval mode.
    """

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")
        self.p = p
        self.training = True
        self._rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def set_rng(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_out = np.asarray(grad_out, dtype=np.float64)
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class LayerNorm(Module):
    """Per-row layer normalization with learned affine parameters.

    Normalizes each activation row to zero mean / unit variance and
    applies ``gamma * x_hat + beta``.  Useful when feature magnitudes
    span orders (hash sizes vs pooling factors) and the input
    standardization alone is insufficient.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, name: str = "") -> None:
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{name}.beta")
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.gamma.shape[0]:
            raise ValueError(
                f"expected input [batch, {self.gamma.shape[0]}], got {x.shape}"
            )
        mean = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return x_hat * self.gamma.data + self.beta.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        grad_out = np.asarray(grad_out, dtype=np.float64)
        self.gamma.grad += (grad_out * x_hat).sum(axis=0)
        self.beta.grad += grad_out.sum(axis=0)
        g = grad_out * self.gamma.data
        n = x_hat.shape[1]
        # d/dx of (x - mean) * inv_std with mean/var both functions of x.
        return inv_std * (
            g
            - g.mean(axis=1, keepdims=True)
            - x_hat * (g * x_hat).mean(axis=1, keepdims=True)
        )


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        if not modules:
            raise ValueError("Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for m in self.modules:
            x = m.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for m in reversed(self.modules):
            grad_out = m.backward(grad_out)
        return grad_out

    @staticmethod
    def mlp(
        sizes: Sequence[int],
        rng: np.random.Generator | None = None,
        final_activation: bool = False,
        name: str = "mlp",
    ) -> "Sequential":
        """Build an MLP from layer sizes, ReLU between layers.

        ``sizes = [in, h1, ..., out]``; with ``final_activation`` a ReLU
        follows the last Linear too (used for the shared table MLP whose
        output feeds the sum pooling).
        """
        if len(sizes) < 2:
            raise ValueError(f"need at least [in, out] sizes, got {sizes}")
        rng = rng or np.random.default_rng(0)
        layers: list[Module] = []
        for i, (a, b) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(a, b, rng=rng, name=f"{name}.{i}"))
            if i < len(sizes) - 2 or final_activation:
                layers.append(ReLU())
        return Sequential(*layers)


class SegmentSum(Module):
    """Sum-pooling of row vectors into per-segment vectors.

    Turns per-table representations ``[num_rows, H]`` plus a segment-id
    vector into per-combination representations ``[num_segments, H]`` —
    the "element-wise sum of all the table representations" of the
    computation cost model (Section 3.2).  Forward takes the segment ids
    as a side input; backward scatters the segment gradient back to rows.
    """

    def __init__(self) -> None:
        self._segments: np.ndarray | None = None
        self._num_rows: int = 0

    def forward(  # type: ignore[override]
        self, x: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        segments = np.asarray(segments, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError(f"expected [rows, features], got {x.shape}")
        if segments.shape != (x.shape[0],):
            raise ValueError(
                f"segments shape {segments.shape} must be ({x.shape[0]},)"
            )
        if num_segments < 1:
            raise ValueError(f"num_segments must be >= 1, got {num_segments}")
        if segments.size and (segments.min() < 0 or segments.max() >= num_segments):
            raise ValueError("segment ids out of range")
        self._segments = segments
        self._num_rows = x.shape[0]
        out = np.zeros((num_segments, x.shape[1]), dtype=np.float64)
        np.add.at(out, segments, x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._segments is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_out, dtype=np.float64)[self._segments]
