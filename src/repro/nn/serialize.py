"""Model parameter serialization.

The production-deployment story of Section 3.2 requires strict version
control of cost-model checkpoints (a training job must resume with the
same sharding plan, hence the same cost model).  Parameters are stored as
plain ``.npz`` archives together with a version tag so stale checkpoints
fail loudly instead of silently mis-predicting.
"""

from __future__ import annotations

import os
from typing import Protocol

import numpy as np

__all__ = ["save_params", "load_params", "FORMAT_VERSION"]

#: Bump when the checkpoint layout changes incompatibly.
FORMAT_VERSION = 1


class _HasStateDict(Protocol):
    def state_dict(self) -> dict[str, np.ndarray]: ...
    def load_state_dict(self, state: dict[str, np.ndarray]) -> None: ...


def save_params(model: _HasStateDict, path: str | os.PathLike) -> None:
    """Save a model's parameters (and the format version) to ``path``."""
    state = model.state_dict()
    np.savez(
        path,
        __format_version__=np.array(FORMAT_VERSION),
        **state,
    )


def load_params(model: _HasStateDict, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_params` into ``model``.

    Raises:
        ValueError: on version mismatch or shape mismatch.
    """
    with np.load(path) as archive:
        if "__format_version__" not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        version = int(archive["__format_version__"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint version {version} != supported {FORMAT_VERSION}"
            )
        state = {k: archive[k] for k in archive.files if k != "__format_version__"}
    model.load_state_dict(state)
