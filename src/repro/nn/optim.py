"""Optimizers.

The paper trains both cost models with Adam at learning rate 1e-3 and
otherwise default hyperparameters (Appendix F); plain SGD is provided for
tests and ablations.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(
    parameters: Iterable[Parameter], max_norm: float
) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.  Call between ``backward()`` and
    ``step()`` — standard insurance against the occasional huge gradient
    from a latency outlier or an exploding advantage weight.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    params = list(parameters)
    if not params:
        raise ValueError("need at least one parameter")
    total = float(np.sqrt(sum(float(np.sum(p.grad**2)) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base class: holds parameters, applies updates, clears gradients."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.beta1, self.beta2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1**self._step
        bc2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
