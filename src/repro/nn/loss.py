"""Loss functions.

Both NeuroShard cost models train with mean-squared error (Appendix C,
Equation 2).  :class:`HuberLoss` is provided for robust variants: the
production deployment story of Section 3.2 re-trains on costs sampled
from live jobs, where stragglers and interference produce heavy-tailed
latency outliers that MSE over-weights.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MSELoss", "HuberLoss"]


class MSELoss:
    """Mean-squared error over all elements.

    ``forward`` returns the scalar loss; ``backward`` returns the gradient
    w.r.t. the prediction (averaged, so learning rates are batch-size
    independent).
    """

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None
        self._n: int = 0

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target {target.shape}"
            )
        self._diff = prediction - target
        self._n = prediction.size
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._n

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)


class HuberLoss:
    """Huber loss: quadratic within ``delta`` of the target, linear
    beyond — bounds the gradient contribution of latency outliers.

    ``forward`` returns the scalar loss (mean over elements); ``backward``
    returns the gradient w.r.t. the prediction.
    """

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.delta = delta
        self._diff: np.ndarray | None = None
        self._n: int = 0

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target {target.shape}"
            )
        diff = prediction - target
        self._diff = diff
        self._n = prediction.size
        abs_diff = np.abs(diff)
        quadratic = 0.5 * diff**2
        linear = self.delta * (abs_diff - 0.5 * self.delta)
        return float(np.mean(np.where(abs_diff <= self.delta, quadratic, linear)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        clipped = np.clip(self._diff, -self.delta, self.delta)
        return clipped / self._n

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)
