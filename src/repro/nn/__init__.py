"""A small from-scratch NumPy neural-network library.

Replaces the paper's PyTorch dependency for the cost models.  It provides
exactly what the NeuroShard architectures need (Figure 5 / Appendix C):

- fully-connected layers with ReLU (``Linear``, ``ReLU``, ``Sequential``),
- segment-sum pooling over variable-length table sets (the element-wise
  sum that turns per-table representations into a fixed-size combination
  representation),
- MSE loss, SGD and Adam optimizers,
- a mini-batch trainer with train/valid/test splitting and
  best-validation checkpoint keeping,
- ``.npz`` serialization of model parameters.

Gradients are computed with hand-written backward passes (no autograd);
each module caches what its backward needs during forward, so the usage
contract is the usual ``loss = forward(); backward(); step()`` cycle.
"""

from repro.nn.layers import (
    Dropout,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SegmentSum,
    Tanh,
)
from repro.nn.loss import HuberLoss, MSELoss
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.data import ArrayDataset, minibatches, train_valid_test_split
from repro.nn.train import TrainResult, Trainer
from repro.nn.serialize import load_params, save_params

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "Sequential",
    "SegmentSum",
    "Tanh",
    "Dropout",
    "LayerNorm",
    "MSELoss",
    "HuberLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "ArrayDataset",
    "minibatches",
    "train_valid_test_split",
    "Trainer",
    "TrainResult",
    "load_params",
    "save_params",
]
