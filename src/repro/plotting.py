"""Terminal plotting: ASCII scatter and line charts.

The benchmark harness regenerates the paper's *figures* as well as its
tables; without a display or matplotlib, figures render as fixed-width
ASCII charts that are stored alongside the numeric tables in
``benchmarks/results/``.  Deliberately tiny feature set: two-variable
scatter plots (Figure 3 right, Figure 8 left) and multi-series line
charts over a shared x-axis (Figure 3 left, Figure 8 middle, Figure 9).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_scatter", "ascii_lines"]

#: Glyphs assigned to successive series in a line chart.
_SERIES_GLYPHS = "ox+*#@%&"


def _bounds(values: Sequence[float]) -> tuple[float, float]:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        raise ValueError("no finite values to plot")
    lo, hi = min(finite), max(finite)
    if lo == hi:  # degenerate axis: widen symmetrically
        pad = abs(lo) * 0.05 + 1e-9
        return lo - pad, hi + pad
    return lo, hi


def _format_axis(value: float) -> str:
    if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
        return f"{value:.2e}"
    return f"{value:.2f}"


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    marker: str = "o",
) -> str:
    """Render paired samples as an ASCII scatter plot.

    Points outside the finite range are dropped; overlapping points
    render as a single marker.
    """
    if len(x) != len(y):
        raise ValueError(f"x ({len(x)}) and y ({len(y)}) must align")
    if len(x) == 0:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    x_lo, x_hi = _bounds(x)
    y_lo, y_hi = _bounds(y)
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        if not (math.isfinite(xi) and math.isfinite(yi)):
            continue
        col = int((xi - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((yi - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}  [{_format_axis(y_lo)} .. {_format_axis(y_hi)}]")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"{x_label}  [{_format_axis(x_lo)} .. {_format_axis(x_hi)}]"
    )
    return "\n".join(lines)


def ascii_lines(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render one or more y-series over a shared x-axis.

    Each series gets its own glyph; a legend follows the chart.  Values
    between samples are linearly interpolated so sparse sweeps still read
    as lines.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_SERIES_GLYPHS):
        raise ValueError(f"at most {len(_SERIES_GLYPHS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x has {len(x)}"
            )
    if len(x) < 2:
        raise ValueError("need at least two x samples")

    x_lo, x_hi = _bounds(x)
    all_y = [v for ys in series.values() for v in ys]
    y_lo, y_hi = _bounds(all_y)
    grid = [[" "] * width for _ in range(height)]

    def plot_point(xv: float, yv: float, glyph: str) -> None:
        if not (math.isfinite(xv) and math.isfinite(yv)):
            return
        col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = glyph

    for glyph, (name, ys) in zip(_SERIES_GLYPHS, series.items()):
        # Interpolate along columns between consecutive samples.
        for (x0, y0), (x1, y1) in zip(zip(x, ys), zip(x[1:], ys[1:])):
            if not all(map(math.isfinite, (x0, y0, x1, y1))):
                continue
            steps = max(
                2, int(abs(x1 - x0) / (x_hi - x_lo) * (width - 1)) + 1
            )
            for i in range(steps + 1):
                t = i / steps
                plot_point(x0 + t * (x1 - x0), y0 + t * (y1 - y0), glyph)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}  [{_format_axis(y_lo)} .. {_format_axis(y_hi)}]")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label}  [{_format_axis(x_lo)} .. {_format_axis(x_hi)}]")
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_SERIES_GLYPHS, series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
