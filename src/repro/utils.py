"""Small shared utilities: stable hashing, deterministic noise, fingerprints.

The real testbed's latency measurements carry run-to-run variance which the
paper suppresses with a warm-up + median-of-100 protocol (Appendix A).  Our
simulator reproduces the *residual* post-median variance as deterministic
pseudo-noise: the noise for a measurement is a pure function of the
workload key and a seed, so identical workloads measure identical costs in
any process — which is what makes benchmarks and tests reproducible.

:func:`source_fingerprint` hashes the repo's own source files.  Two
consumers share it: cached pre-trained bundles (``benchmarks/conftest.py``
retrains a bundle whose fingerprint no longer matches the code that
determines it) and provenance stamps (:mod:`repro.provenance` stamps every
validation report with the fingerprint of the code that validated it).

:func:`parse_key_value_args` is the one typed parser behind every
repeatable ``KEY=VALUE`` CLI flag (``repro simulate --policy-arg``,
``repro tune --tune-arg``), so all of them share one coercion table.
"""

from __future__ import annotations

import functools
import hashlib
import json
import struct
from pathlib import Path

import numpy as np

__all__ = [
    "stable_hash64",
    "deterministic_normal",
    "deterministic_uniform",
    "source_fingerprint",
    "coerce_option_value",
    "parse_key_value_args",
]


def stable_hash64(*parts: object) -> int:
    """A 64-bit hash of ``parts`` that is stable across processes.

    ``hash()`` is salted per-process for strings, so it cannot be used for
    reproducible noise; this uses blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


def deterministic_normal(*key_parts: object) -> float:
    """A standard-normal draw that is a pure function of the key."""
    rng = np.random.default_rng(stable_hash64(*key_parts))
    return float(rng.standard_normal())


def deterministic_uniform(*key_parts: object) -> float:
    """A U[0, 1) draw that is a pure function of the key."""
    rng = np.random.default_rng(stable_hash64(*key_parts))
    return float(rng.random())


#: Words accepted as booleans / null, case-insensitively.  Python-style
#: spellings ("True", "None") are included on purpose: the previous
#: ad-hoc parser fell back to ``json.loads``, which accepts only the
#: JSON spellings — ``--policy-arg flag=True`` silently arrived as the
#: (truthy) *string* ``"True"``.
_TRUE_WORDS = frozenset({"true", "yes", "on"})
_FALSE_WORDS = frozenset({"false", "no", "off"})
_NULL_WORDS = frozenset({"none", "null"})


def coerce_option_value(raw: str) -> object:
    """Coerce one ``KEY=VALUE`` value string to a typed Python value.

    The coercion table, first match wins (matching is on the stripped,
    case-folded text):

    ==================================  ================================
    value text                          result
    ==================================  ================================
    ``true`` / ``yes`` / ``on``         ``True``
    ``false`` / ``no`` / ``off``        ``False``
    ``none`` / ``null``                 ``None``
    integer literal (``42``, ``-3``)    ``int``
    float literal (``0.5``, ``1e-4``)   ``float``
    valid JSON (``[1,2]``, ``"x"``)     the parsed value
    anything else                       the raw string, unchanged
    ==================================  ================================
    """
    text = raw.strip()
    lowered = text.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    if lowered in _NULL_WORDS:
        return None
    try:
        return int(text, 10)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return raw


def parse_key_value_args(
    pairs: "list[str] | tuple[str, ...]", flag: str = "--arg"
) -> dict[str, object]:
    """Parse repeatable ``KEY=VALUE`` CLI arguments into typed kwargs.

    Values go through :func:`coerce_option_value`; ``flag`` names the
    originating option in error messages.

    Raises:
        ValueError: on an argument without ``=`` or with an empty key.
    """
    kwargs: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(f"{flag} wants KEY=VALUE, got {pair!r}")
        kwargs[key] = coerce_option_value(raw)
    return kwargs


def source_fingerprint(*entries: str) -> str:
    """sha256 over the named source entries of the ``repro`` package.

    Each entry is a path relative to ``src/repro``: a single ``.py`` file
    (``"config.py"``) or a subpackage directory hashed recursively in
    sorted order (``"costmodel"``).  The digest covers relative posix
    paths and raw file bytes, so a comment-only edit also changes it —
    deliberately erring on the side of a spurious mismatch, which is
    cheap for both consumers (a deterministic bundle retrain; an
    advisory, not an error, in the provenance audit).

    Cached per entry tuple: callers on hot paths (one stamp per plan
    record) pay the file walk once per process.
    """
    return _source_fingerprint(tuple(entries))


@functools.lru_cache(maxsize=None)
def _source_fingerprint(entries: tuple[str, ...]) -> str:
    root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    paths: list[Path] = []
    for entry in entries:
        target = root / entry
        if target.is_dir():
            paths.extend(sorted(target.rglob("*.py")))
        else:
            paths.append(target)
    for path in paths:
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()
