"""Small shared utilities: stable hashing and deterministic noise.

The real testbed's latency measurements carry run-to-run variance which the
paper suppresses with a warm-up + median-of-100 protocol (Appendix A).  Our
simulator reproduces the *residual* post-median variance as deterministic
pseudo-noise: the noise for a measurement is a pure function of the
workload key and a seed, so identical workloads measure identical costs in
any process — which is what makes benchmarks and tests reproducible.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

__all__ = ["stable_hash64", "deterministic_normal", "deterministic_uniform"]


def stable_hash64(*parts: object) -> int:
    """A 64-bit hash of ``parts`` that is stable across processes.

    ``hash()`` is salted per-process for strings, so it cannot be used for
    reproducible noise; this uses blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


def deterministic_normal(*key_parts: object) -> float:
    """A standard-normal draw that is a pure function of the key."""
    rng = np.random.default_rng(stable_hash64(*key_parts))
    return float(rng.standard_normal())


def deterministic_uniform(*key_parts: object) -> float:
    """A U[0, 1) draw that is a pure function of the key."""
    rng = np.random.default_rng(stable_hash64(*key_parts))
    return float(rng.random())
