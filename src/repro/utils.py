"""Small shared utilities: stable hashing, deterministic noise, fingerprints.

The real testbed's latency measurements carry run-to-run variance which the
paper suppresses with a warm-up + median-of-100 protocol (Appendix A).  Our
simulator reproduces the *residual* post-median variance as deterministic
pseudo-noise: the noise for a measurement is a pure function of the
workload key and a seed, so identical workloads measure identical costs in
any process — which is what makes benchmarks and tests reproducible.

:func:`source_fingerprint` hashes the repo's own source files.  Two
consumers share it: cached pre-trained bundles (``benchmarks/conftest.py``
retrains a bundle whose fingerprint no longer matches the code that
determines it) and provenance stamps (:mod:`repro.provenance` stamps every
validation report with the fingerprint of the code that validated it).
"""

from __future__ import annotations

import functools
import hashlib
import struct
from pathlib import Path

import numpy as np

__all__ = [
    "stable_hash64",
    "deterministic_normal",
    "deterministic_uniform",
    "source_fingerprint",
]


def stable_hash64(*parts: object) -> int:
    """A 64-bit hash of ``parts`` that is stable across processes.

    ``hash()`` is salted per-process for strings, so it cannot be used for
    reproducible noise; this uses blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


def deterministic_normal(*key_parts: object) -> float:
    """A standard-normal draw that is a pure function of the key."""
    rng = np.random.default_rng(stable_hash64(*key_parts))
    return float(rng.standard_normal())


def deterministic_uniform(*key_parts: object) -> float:
    """A U[0, 1) draw that is a pure function of the key."""
    rng = np.random.default_rng(stable_hash64(*key_parts))
    return float(rng.random())


def source_fingerprint(*entries: str) -> str:
    """sha256 over the named source entries of the ``repro`` package.

    Each entry is a path relative to ``src/repro``: a single ``.py`` file
    (``"config.py"``) or a subpackage directory hashed recursively in
    sorted order (``"costmodel"``).  The digest covers relative posix
    paths and raw file bytes, so a comment-only edit also changes it —
    deliberately erring on the side of a spurious mismatch, which is
    cheap for both consumers (a deterministic bundle retrain; an
    advisory, not an error, in the provenance audit).

    Cached per entry tuple: callers on hot paths (one stamp per plan
    record) pay the file walk once per process.
    """
    return _source_fingerprint(tuple(entries))


@functools.lru_cache(maxsize=None)
def _source_fingerprint(entries: tuple[str, ...]) -> str:
    root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    paths: list[Path] = []
    for entry in entries:
        target = root / entry
        if target.is_dir():
            paths.extend(sorted(target.rglob("*.py")))
        else:
            paths.append(target)
    for path in paths:
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()
