"""Embedding-table configuration and index-distribution math.

An embedding table maps a categorical index to a ``dim``-dimensional float
vector; a lookup gathers and sum-pools ``pooling_factor`` rows on average
(Section 2.1).  The cost-relevant attributes identified by the paper are:

- **dimension** — number of columns; drives memory bandwidth,
- **hash size** — number of rows; affects caching/prefetching,
- **pooling factor** — indices per lookup; drives lookup workload,
- **indices distribution** — access skew; affects cache effectiveness and
  the number of *unique* rows touched per batch.

Rather than carrying around gigabytes of raw index tensors (the
``dlrm_datasets`` file), we model each table's index distribution as a
Zipf law over row ranks with per-table exponent ``zipf_alpha``.  All
distribution-dependent quantities used by the hardware simulator and the
cost-model features (expected unique rows per batch, access concentration)
are computed analytically with logarithmic rank binning, which is accurate
to a fraction of a percent and vectorizes well.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "MIN_DIM",
    "TableConfig",
    "table_set_key",
    "extend_table_set_key",
    "insort_uid",
    "total_size_bytes",
]

#: FBGEMM requires embedding dimensions divisible by 4 (Section 3.3); a
#: dimension-4 table therefore cannot be column-sharded further.
MIN_DIM = 4

#: Number of logarithmic rank bins used for distribution integrals.
_NUM_RANK_BINS = 96


@lru_cache(maxsize=4096)
def _rank_bins(hash_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Log-spaced rank bins over ``1..hash_size``.

    Returns ``(mid_ranks, counts)`` where ``counts[i]`` is the number of
    integer ranks covered by bin ``i`` and ``mid_ranks[i]`` is its
    geometric midpoint.  Cached because the pool reuses few distinct hash
    sizes after augmentation.
    """
    if hash_size <= _NUM_RANK_BINS:
        ranks = np.arange(1, hash_size + 1, dtype=np.float64)
        return ranks, np.ones_like(ranks)
    edges = np.unique(
        np.concatenate(
            [
                np.arange(1, min(33, hash_size + 1), dtype=np.float64),
                np.geomspace(min(33, hash_size), hash_size + 1, _NUM_RANK_BINS),
            ]
        )
    )
    lo = edges[:-1]
    hi = edges[1:]
    counts = np.floor(hi) - np.floor(lo)
    keep = counts > 0
    lo, hi, counts = lo[keep], hi[keep], counts[keep]
    mids = np.sqrt(lo * np.maximum(hi - 1.0, lo))
    return mids, counts


@lru_cache(maxsize=65536)
def _zipf_bin_probs(hash_size: int, alpha: float) -> Tuple[np.ndarray, np.ndarray]:
    """Per-bin access probability mass for a Zipf(alpha) table.

    Returns ``(bin_mass, counts)``: ``bin_mass[i]`` is the total probability
    of the ranks in bin ``i`` and ``counts[i]`` how many ranks that is.
    """
    mids, counts = _rank_bins(hash_size)
    weights = counts * mids ** (-alpha)
    total = weights.sum()
    return weights / total, counts


@dataclass(frozen=True)
class TableConfig:
    """Configuration of a single embedding table.

    Instances are immutable value objects; column-wise sharding produces
    new instances via :meth:`with_dim` / :meth:`halved`.

    Attributes:
        table_id: index of the source table in the pool.  Column shards of
            one table share the ``table_id``.
        hash_size: number of rows.
        dim: number of columns (embedding dimension).
        pooling_factor: mean number of indices per lookup in a batch.
        zipf_alpha: exponent of the Zipf access distribution over row
            ranks.  Larger means more skew, fewer unique rows per batch
            and better cache behaviour.
        bytes_per_element: storage width; 4 for fp32 (the paper's setup).
    """

    table_id: int
    hash_size: int
    dim: int
    pooling_factor: float
    zipf_alpha: float
    bytes_per_element: int = 4

    def __post_init__(self) -> None:
        if self.hash_size < 1:
            raise ValueError(f"hash_size must be >= 1, got {self.hash_size}")
        if self.dim < MIN_DIM or self.dim % MIN_DIM != 0:
            raise ValueError(
                f"dim must be a positive multiple of {MIN_DIM}, got {self.dim}"
            )
        if self.pooling_factor <= 0:
            raise ValueError(
                f"pooling_factor must be > 0, got {self.pooling_factor}"
            )
        if self.zipf_alpha < 0:
            raise ValueError(f"zipf_alpha must be >= 0, got {self.zipf_alpha}")
        if self.bytes_per_element not in (1, 2, 4, 8):
            raise ValueError(
                f"bytes_per_element must be 1, 2, 4 or 8, got {self.bytes_per_element}"
            )

    # ------------------------------------------------------------------
    # identity / size
    # ------------------------------------------------------------------

    @property
    def uid(self) -> str:
        """Cost-identity of the table: two tables with equal ``uid`` have
        identical cost behaviour, so cache keys are built from ``uid``s.

        Includes every cost-relevant field (row-wise shards share the
        ``table_id`` and ``dim`` but differ in rows/pooling/skew).
        """
        return (
            f"t{self.table_id}:d{self.dim}:h{self.hash_size}"
            f":p{round(self.pooling_factor, 4)}:z{round(self.zipf_alpha, 4)}"
        )

    @property
    def size_bytes(self) -> int:
        """Storage footprint of the table's weights."""
        return self.hash_size * self.dim * self.bytes_per_element

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------

    def with_dim(self, dim: int) -> "TableConfig":
        """Copy of this table with a different dimension (Algorithm 3)."""
        return replace(self, dim=dim)

    @property
    def can_halve(self) -> bool:
        """Whether a column-wise split into two dim/2 shards is legal."""
        half = self.dim // 2
        return half >= MIN_DIM and half % MIN_DIM == 0

    def halved(self) -> Tuple["TableConfig", "TableConfig"]:
        """Split column-wise into two shards of half the dimension.

        Both shards see the *same* lookup indices (column sharding splits
        vectors, not rows), hence the same hash size, pooling factor and
        distribution — which is exactly why Observation 1 holds: the
        index-processing portion of the kernel does not halve.
        """
        if not self.can_halve:
            raise ValueError(
                f"cannot column-shard table {self.uid}: half dimension "
                f"{self.dim // 2} would violate the multiple-of-{MIN_DIM} "
                "constraint"
            )
        half = self.with_dim(self.dim // 2)
        return half, half

    def row_halved(self) -> Tuple["TableConfig", "TableConfig"]:
        """Split row-wise into a hot shard and a cold shard (extension).

        Row-wise sharding is the paper's stated future work ("we will
        extend NeuroShard to row-wise sharding for partitioning large
        tables").  Splitting the rank-ordered rows at the midpoint:

        - the **hot shard** keeps ranks ``1..H/2``; it receives the
          fraction of lookups given by :meth:`access_concentration` at
          0.5 and keeps (approximately) the original Zipf exponent;
        - the **cold shard** keeps ranks ``H/2+1..H``; a power law is
          locally much flatter in its tail, so the shard's effective
          exponent over its own support shrinks to
          ``alpha * ln 2 / ln(H/2)`` (the exponent that preserves the
          head/tail probability ratio of the window).

        Unlike column sharding, row sharding divides *both* memory and
        lookups between the shards.
        """
        if self.hash_size < 2:
            raise ValueError(
                f"cannot row-shard table {self.uid}: only {self.hash_size} row"
            )
        hot_rows = self.hash_size // 2
        cold_rows = self.hash_size - hot_rows
        hot_mass = self.access_concentration(0.5)
        hot_pooling = max(self.pooling_factor * hot_mass, 0.01)
        cold_pooling = max(self.pooling_factor * (1.0 - hot_mass), 0.01)
        cold_alpha = (
            self.zipf_alpha * math.log(2.0) / math.log(max(hot_rows, 2))
        )
        hot = replace(self, hash_size=hot_rows, pooling_factor=hot_pooling)
        cold = replace(
            self,
            hash_size=cold_rows,
            pooling_factor=cold_pooling,
            zipf_alpha=round(cold_alpha, 6),
        )
        return hot, cold

    # ------------------------------------------------------------------
    # index-distribution math
    # ------------------------------------------------------------------

    def indices_per_batch(self, batch_size: int) -> float:
        """Total number of lookup indices in a batch."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return self.pooling_factor * batch_size

    def expected_unique_rows(self, batch_size: int) -> float:
        """Expected number of distinct rows touched by one batch.

        For ``n`` i.i.d. Zipf draws, the chance rank ``i`` appears is
        ``1 - (1 - p_i)^n``; summing over the log-binned ranks gives the
        expectation.  This drives the simulator's cache model and is a
        cost-model feature.
        """
        n = self.indices_per_batch(batch_size)
        bin_mass, counts = _zipf_bin_probs(self.hash_size, round(self.zipf_alpha, 6))
        p = bin_mass / counts  # per-rank probability within each bin
        # 1 - (1-p)^n computed stably:  -expm1(n * log1p(-p))
        hit = -np.expm1(n * np.log1p(-np.minimum(p, 1.0 - 1e-12)))
        return float(np.sum(counts * hit))

    def unique_fraction(self, batch_size: int) -> float:
        """Unique rows per batch divided by total indices (in (0, 1])."""
        n = self.indices_per_batch(batch_size)
        return min(1.0, self.expected_unique_rows(batch_size) / n)

    def access_concentration(self, top_fraction: float = 0.01) -> float:
        """Probability mass hitting the hottest ``top_fraction`` of rows.

        A skew summary in [0, 1]; a cost-model feature (hot rows cache
        well).
        """
        if not 0 < top_fraction <= 1:
            raise ValueError(
                f"top_fraction must be in (0, 1], got {top_fraction}"
            )
        bin_mass, counts = _zipf_bin_probs(self.hash_size, round(self.zipf_alpha, 6))
        cum_rows = np.cumsum(counts)
        cutoff = max(1.0, top_fraction * self.hash_size)
        mass = float(bin_mass[cum_rows <= cutoff].sum())
        # Include the partial bin straddling the cutoff.
        idx = int(np.searchsorted(cum_rows, cutoff))
        if idx < len(counts) and (idx == 0 or cum_rows[idx - 1] < cutoff):
            prev = cum_rows[idx - 1] if idx > 0 else 0.0
            frac = (cutoff - prev) / counts[idx]
            mass += float(bin_mass[idx]) * float(np.clip(frac, 0.0, 1.0))
        return min(1.0, mass)


def table_set_key(tables: Iterable[TableConfig]) -> Tuple[str, ...]:
    """Canonical hashable key for an (unordered) multiset of tables.

    Used by the computation-cost cache (Section 3.3, "Implementation with
    caching"): two devices holding cost-identical table multisets map to
    the same key.

    Building the key from scratch costs ``O(n log n)`` comparisons plus
    one ``uid`` materialization per table.  The search's hot loop instead
    maintains sorted uid lists incrementally and extends them in one
    insertion via :func:`extend_table_set_key` / :func:`insort_uid`,
    which produce byte-identical keys.
    """
    return tuple(sorted(t.uid for t in tables))


def extend_table_set_key(
    sorted_uids: Sequence[str], uid: str
) -> Tuple[str, ...]:
    """The :func:`table_set_key` of ``sorted_uids + {uid}``.

    ``sorted_uids`` must already be in sorted order (an existing key, or
    a running list maintained with :func:`insort_uid`); the new uid is
    spliced in at its sorted position with a single binary search —
    ``O(n)`` copying instead of an ``O(n log n)`` re-sort, and no
    re-materialization of the existing uids.
    """
    i = bisect_left(sorted_uids, uid)
    return (*sorted_uids[:i], uid, *sorted_uids[i:])


def insort_uid(sorted_uids: list[str], uid: str) -> None:
    """Insert ``uid`` into a running sorted uid list in place.

    The in-place counterpart of :func:`extend_table_set_key`, used for
    the per-device canonical-key state of the incremental greedy
    allocator.
    """
    insort(sorted_uids, uid)


def total_size_bytes(tables: Iterable[TableConfig]) -> int:
    """Total storage of a collection of tables."""
    return sum(t.size_bytes for t in tables)
