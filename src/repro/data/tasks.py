"""Benchmark sharding tasks (paper Section 4, "Datasets" and Table 5).

A *sharding task* is the unit of evaluation: a list of tables (with
dimensions already assigned) that must be placed onto ``num_devices`` GPUs
under a per-device memory budget.  The paper constructs 100 random tasks
for each of 12 settings — {4, 8} GPUs × max dimension {4, 8, 16, 32, 64,
128} — by sampling 10-60 (4 GPUs) or 20-120 (8 GPUs) tables from the
856-table pool and drawing each table's dimension uniformly from
{4, 8, ..., max_dim}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.config import TaskConfig, rng_from_seed
from repro.data.pool import TablePool
from repro.data.table import TableConfig

__all__ = ["ShardingTask", "generate_tasks", "generate_task_grid"]


@dataclass(frozen=True)
class ShardingTask:
    """One sharding problem instance.

    Attributes:
        tables: the tables to shard, dimensions already assigned.
        num_devices: number of GPUs.
        memory_bytes: per-device embedding memory budget.
        task_id: index within its generation batch (for reporting).
    """

    tables: tuple[TableConfig, ...]
    num_devices: int
    memory_bytes: int
    task_id: int = 0

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("a sharding task needs at least one table")
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be > 0, got {self.memory_bytes}")

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def total_size_bytes(self) -> int:
        return sum(t.size_bytes for t in self.tables)

    @property
    def total_dim(self) -> int:
        return sum(t.dim for t in self.tables)

    @property
    def max_dim(self) -> int:
        return max(t.dim for t in self.tables)

    def is_trivially_infeasible(self, headroom: float = 1.0) -> bool:
        """True when total table bytes exceed ``headroom`` times the
        aggregate cluster memory.

        Column-wise sharding preserves total bytes, so tasks above 100%
        aggregate memory are unsolvable by any algorithm.  Task
        generation additionally rejects tasks above a sub-1.0 headroom:
        bin-packing near 100% utilization is infeasible for *every*
        placement algorithm, which would say nothing about sharding
        quality (optimizer state alone adds up to ~25% on dim-4 tables).
        """
        return self.total_size_bytes > headroom * self.memory_bytes * self.num_devices


def generate_tasks(
    pool: TablePool,
    config: TaskConfig,
    count: int = 100,
    seed: int | np.random.Generator = 0,
    max_resample: int = 200,
    headroom: float = 0.75,
) -> list[ShardingTask]:
    """Generate ``count`` random sharding tasks for one Table 5 setting.

    Tasks whose total size exceeds ``headroom`` of the aggregate cluster
    memory are resampled (above 100% they would be unsolvable by *any*
    algorithm; between ~75% and 100% the bin-packing itself, not the
    balancing, dominates feasibility — see
    :meth:`ShardingTask.is_trivially_infeasible`).

    Args:
        pool: the table pool to draw from.
        config: the setting (devices, max dim, table-count range, memory).
        count: number of tasks (paper: 100 per setting).
        seed: RNG seed or generator.
        max_resample: per-task bound on feasibility resampling.

    Raises:
        RuntimeError: when a feasible task cannot be sampled, which
            indicates a mis-configured memory budget.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = rng_from_seed(seed)
    dims = config.dim_choices
    tasks: list[ShardingTask] = []
    for task_id in range(count):
        for attempt in range(max_resample):
            num_tables = int(
                rng.integers(config.min_tables, config.max_tables + 1)
            )
            tables = pool.sample_tables(num_tables, rng, dims=dims)
            task = ShardingTask(
                tables=tuple(tables),
                num_devices=config.num_devices,
                memory_bytes=config.memory_bytes,
                task_id=task_id,
            )
            if not task.is_trivially_infeasible(headroom):
                tasks.append(task)
                break
        else:
            raise RuntimeError(
                f"could not sample a feasible task after {max_resample} "
                f"attempts for setting {config}; increase memory_bytes or "
                "reduce the table-count range"
            )
    return tasks


def generate_task_grid(
    pool: TablePool,
    count_per_setting: int = 100,
    seed: int = 0,
) -> Iterator[tuple[TaskConfig, list[ShardingTask]]]:
    """Yield (setting, tasks) for all 12 paper Table 5 settings.

    Settings are seeded independently (derived from ``seed``), so
    evaluating a subset of the grid yields the same tasks as evaluating
    all of it.
    """
    settings = TaskConfig.paper_grid()
    seeds = np.random.SeedSequence(seed).spawn(len(settings))
    for setting, task_seed in zip(settings, seeds):
        yield setting, generate_tasks(
            pool,
            setting,
            count=count_per_setting,
            seed=np.random.default_rng(task_seed),
        )
